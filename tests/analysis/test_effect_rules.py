"""The effect-flow rules REP201–REP204.

Each scenario builds a small in-memory project and runs all three
passes through :meth:`Analyzer.check_project_sources`, exactly as a
real lint run would: per-file summaries carry the effect facts, the
project model resolves reachability and class hierarchies, and the
REP20x rules judge the result.
"""

import textwrap

from repro.analysis import AnalysisConfig, Analyzer, default_rules


def _lint(files, config=None):
    analyzer = Analyzer(config or AnalysisConfig(), default_rules())
    return analyzer.check_project_sources(
        {path: textwrap.dedent(code) for path, code in files.items()}
    )


def _ids(findings, rule_id):
    return [f for f in findings if f.rule_id == rule_id]


# -- REP201: atomic-write discipline ------------------------------------


def test_rep201_flags_raw_open_write():
    findings = _lint({
        "src/repro/core/saver.py": (
            '"""Doc."""\n'
            "import json\n\n\n"
            "def save(path, payload):\n"
            '    """Doc."""\n'
            '    with open(path, "w") as handle:\n'
            "        handle.write(json.dumps(payload))\n"
        ),
    })
    hits = _ids(findings, "REP201")
    assert len(hits) == 1
    assert hits[0].path == "src/repro/core/saver.py"
    assert "save()" in hits[0].message
    assert "atomic" in hits[0].message


def test_rep201_flags_write_text_and_computed_receiver():
    findings = _lint({
        "src/repro/core/saver.py": (
            '"""Doc."""\n'
            "from pathlib import Path\n\n\n"
            "def save(root, text):\n"
            '    """Doc."""\n'
            '    (root / "out.json").write_text(text)\n'
        ),
    })
    hits = _ids(findings, "REP201")
    assert len(hits) == 1
    assert "write_text" in hits[0].message


def test_rep201_exempts_in_function_atomic_dance():
    findings = _lint({
        "src/repro/core/saver.py": (
            '"""Doc."""\n'
            "import os\n\n\n"
            "def save(path, data):\n"
            '    """Doc."""\n'
            '    tmp = str(path) + ".tmp"\n'
            '    with open(tmp, "wb") as handle:\n'
            "        handle.write(data)\n"
            "        os.fsync(handle.fileno())\n"
            "    os.replace(tmp, path)\n"
        ),
    })
    assert _ids(findings, "REP201") == []


def test_rep201_exempts_sanctioned_modules():
    findings = _lint({
        "src/repro/passivedns/spill.py": (
            '"""Doc."""\n\n\n'
            "def atomic_write_bytes(path, data):\n"
            '    """Doc."""\n'
            '    with open(path, "wb") as handle:\n'
            "        handle.write(data)\n"
        ),
    })
    assert _ids(findings, "REP201") == []


def test_rep201_ignores_memory_buffers_and_reads():
    findings = _lint({
        "src/repro/core/saver.py": (
            '"""Doc."""\n'
            "import io\n\n\n"
            "def render(path):\n"
            '    """Doc."""\n'
            "    buf = io.BytesIO()\n"
            '    buf.write(b"x")\n'
            '    with open(path, "r") as handle:\n'
            "        return handle.read(), buf.getvalue()\n"
        ),
    })
    assert _ids(findings, "REP201") == []


def test_rep201_respects_custom_sanction_config():
    config = AnalysisConfig()
    config.atomic_io_modules = ["repro.core.saver"]
    findings = _lint(
        {
            "src/repro/core/saver.py": (
                '"""Doc."""\n\n\n'
                "def save(path, text):\n"
                '    """Doc."""\n'
                '    with open(path, "w") as handle:\n'
                "        handle.write(text)\n"
            ),
        },
        config=config,
    )
    assert _ids(findings, "REP201") == []


# -- REP202: crash-signal swallowing ------------------------------------

_ERRORS_MODULE = (
    '"""Doc."""\n\n\n'
    "class ReproError(Exception):\n"
    '    """Doc."""\n\n\n'
    "class InjectedCrashError(ReproError):\n"
    '    """Doc."""\n\n\n'
    "class TransientError(ReproError):\n"
    '    """Doc."""\n'
)


def test_rep202_flags_broad_except_on_resilient_path():
    findings = _lint({
        "src/repro/errors.py": _ERRORS_MODULE,
        "src/repro/resilience/retry.py": (
            '"""Doc."""\n'
            "from repro.core.ingest import store_batch\n\n\n"
            "def retry(batch):\n"
            '    """Doc."""\n'
            "    return store_batch(batch)\n"
        ),
        "src/repro/core/ingest.py": (
            '"""Doc."""\n\n\n'
            "def store_batch(batch):\n"
            '    """Doc."""\n'
            "    try:\n"
            "        return len(batch)\n"
            "    except Exception:\n"
            "        return 0\n"
        ),
    })
    hits = _ids(findings, "REP202")
    assert len(hits) == 1
    assert hits[0].path == "src/repro/core/ingest.py"
    assert "can swallow crash signal" in hits[0].message
    # the witness chain names the resilient root
    assert "retry" in hits[0].message


def test_rep202_skips_reraising_and_narrow_handlers():
    findings = _lint({
        "src/repro/errors.py": _ERRORS_MODULE,
        "src/repro/resilience/retry.py": (
            '"""Doc."""\n'
            "from repro.errors import TransientError\n\n\n"
            "def retry(batch):\n"
            '    """Doc."""\n'
            "    try:\n"
            "        return len(batch)\n"
            "    except TransientError:\n"
            "        return 0\n"
            "    except Exception:\n"
            "        raise\n"
        ),
    })
    assert _ids(findings, "REP202") == []


def test_rep202_ignores_unreachable_handlers():
    findings = _lint({
        "src/repro/errors.py": _ERRORS_MODULE,
        "src/repro/core/report.py": (
            '"""Doc."""\n\n\n'
            "def render(rows):\n"
            '    """Doc."""\n'
            "    try:\n"
            "        return list(rows)\n"
            "    except Exception:\n"
            "        return []\n"
        ),
    })
    assert _ids(findings, "REP202") == []


# -- REP203: worker shared-state mutation -------------------------------


def test_rep203_flags_global_dict_mutation_in_pool_worker():
    findings = _lint({
        "src/repro/core/shard.py": (
            '"""Doc."""\n'
            "from concurrent.futures import ProcessPoolExecutor\n\n"
            "_RESULTS = {}\n\n\n"
            "def _shard(item):\n"
            '    """Doc."""\n'
            "    _RESULTS[item] = item * 2\n"
            "    return item\n\n\n"
            "def run(items):\n"
            '    """Doc."""\n'
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_shard, items))\n"
        ),
    })
    hits = _ids(findings, "REP203")
    assert len(hits) == 1
    assert "_RESULTS" in hits[0].message
    assert "_shard" in hits[0].message


def test_rep203_flags_thread_target_closure():
    findings = _lint({
        "src/repro/core/shard.py": (
            '"""Doc."""\n'
            "import threading\n\n"
            "_SEEN = set()\n\n\n"
            "def _collect(item):\n"
            '    """Doc."""\n'
            "    _SEEN.add(item)\n\n\n"
            "def run(item):\n"
            '    """Doc."""\n'
            "    worker = threading.Thread(target=_collect, args=(item,))\n"
            "    worker.start()\n"
        ),
    })
    hits = _ids(findings, "REP203")
    assert len(hits) == 1
    assert "_SEEN" in hits[0].message


def test_rep203_allows_local_accumulators_and_unspawned_mutators():
    findings = _lint({
        "src/repro/core/shard.py": (
            '"""Doc."""\n'
            "from concurrent.futures import ProcessPoolExecutor\n\n"
            "_REGISTRY = {}\n\n\n"
            "def _shard(item):\n"
            '    """Doc."""\n'
            "    out = {}\n"
            "    out[item] = item * 2\n"
            "    return out\n\n\n"
            "def register(name, value):\n"
            '    """Doc."""\n'
            "    _REGISTRY[name] = value\n\n\n"
            "def run(items):\n"
            '    """Doc."""\n'
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_shard, items))\n"
        ),
    })
    assert _ids(findings, "REP203") == []


# -- REP204: cache-generation hygiene -----------------------------------

_GENERATION_CLASS_HEADER = (
    '"""Doc."""\n\n\n'
    "class Store:\n"
    '    """Doc."""\n\n'
    "    def __init__(self):\n"
    '        """Doc."""\n'
    "        self._rows = []\n"
    "        self._generation = 0\n"
    "        self._agg_cache = {}\n\n"
    "    def _touch(self):\n"
    '        """Doc."""\n'
    "        self._generation += 1\n\n"
)


def test_rep204_flags_generationless_mutation():
    findings = _lint({
        "src/repro/core/store.py": (
            _GENERATION_CLASS_HEADER
            + "    def ingest(self, row):\n"
            + '        """Doc."""\n'
            + "        self._rows.append(row)\n"
        ),
    })
    hits = _ids(findings, "REP204")
    assert len(hits) == 1
    assert "ingest()" in hits[0].message
    assert "_rows" in hits[0].message


def test_rep204_accepts_bump_in_same_method_or_callee():
    findings = _lint({
        "src/repro/core/store.py": (
            _GENERATION_CLASS_HEADER
            + "    def ingest(self, row):\n"
            + '        """Doc."""\n'
            + "        self._rows.append(row)\n"
            + "        self._touch()\n\n"
            + "    def ingest_direct(self, row):\n"
            + '        """Doc."""\n'
            + "        self._rows.append(row)\n"
            + "        self._generation += 1\n"
        ),
    })
    assert _ids(findings, "REP204") == []


def test_rep204_exempts_constructors_and_cache_fields():
    findings = _lint({
        "src/repro/core/store.py": (
            _GENERATION_CLASS_HEADER
            + "    def warm(self, key, value):\n"
            + '        """Doc."""\n'
            + "        self._agg_cache[key] = value\n"
        ),
    })
    assert _ids(findings, "REP204") == []


def test_rep204_ignores_untracked_classes():
    findings = _lint({
        "src/repro/core/bag.py": (
            '"""Doc."""\n\n\n'
            "class Bag:\n"
            '    """Doc."""\n\n'
            "    def __init__(self):\n"
            '        """Doc."""\n'
            "        self._items = []\n\n"
            "    def add(self, item):\n"
            '        """Doc."""\n'
            "        self._items.append(item)\n"
        ),
    })
    assert _ids(findings, "REP204") == []


def test_rep204_noqa_suppresses_with_justification():
    findings = _lint({
        "src/repro/core/store.py": (
            _GENERATION_CLASS_HEADER
            + "    def reseat(self, rows):\n"
            + '        """Doc."""\n'
            + "        self._rows = rows  # repro: noqa[REP204] content-preserving\n"
        ),
    })
    assert _ids(findings, "REP204") == []
