"""The SARIF 2.1.0 export: structure, rule descriptors, baselining."""

import json

from repro.analysis import sarif as sarif_mod
from repro.analysis.findings import ANALYZER_VERSION, Finding, Severity


def _finding(rule="REP002", path="src/repro/x.py", line=3, baselined=False):
    finding = Finding(
        rule_id=rule,
        severity=Severity.ERROR,
        path=path,
        line=line,
        col=5,
        message=f"{rule} message",
    )
    return finding.with_baselined() if baselined else finding


def test_sarif_document_structure():
    document = json.loads(
        sarif_mod.render_sarif([_finding()], rules=["REP002"])
    )
    assert document["version"] == "2.1.0"
    assert document["$schema"].endswith("sarif-schema-2.1.0.json")
    assert len(document["runs"]) == 1
    driver = document["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro.analysis"
    assert driver["version"] == ANALYZER_VERSION
    assert [rule["id"] for rule in driver["rules"]] == ["REP002"]
    assert driver["rules"][0]["shortDescription"]["text"]
    assert driver["rules"][0]["defaultConfiguration"]["level"] == "error"


def test_sarif_full_description_from_explain_sections():
    # fullDescription carries the rule's Invariant and Why docstring
    # sections so code-scanning UIs show the rationale inline.
    document = json.loads(
        sarif_mod.render_sarif([], rules=["REP002", "REP301"])
    )
    for descriptor in document["runs"][0]["tool"]["driver"]["rules"]:
        text = descriptor["fullDescription"]["text"]
        assert text.startswith("Invariant:")
        assert "\n\nWhy:" in text


def test_sarif_result_locations_and_levels():
    document = json.loads(
        sarif_mod.render_sarif([_finding()], rules=["REP002"])
    )
    result = document["runs"][0]["results"][0]
    assert result["ruleId"] == "REP002"
    assert result["level"] == "error"
    assert result["message"]["text"] == "REP002 message"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/x.py"
    assert location["region"] == {"startLine": 3, "startColumn": 5}


def test_sarif_baseline_state_marks_known_debt():
    document = json.loads(
        sarif_mod.render_sarif(
            [_finding(line=1), _finding(line=2, baselined=True)],
            rules=["REP002"],
        )
    )
    states = [
        result["baselineState"]
        for result in document["runs"][0]["results"]
    ]
    assert states == ["new", "unchanged"]


def test_sarif_results_sorted_and_deterministic():
    findings = [
        _finding(path="src/repro/b.py"),
        _finding(path="src/repro/a.py"),
    ]
    first = sarif_mod.render_sarif(findings, rules=["REP002"])
    second = sarif_mod.render_sarif(list(reversed(findings)), rules=["REP002"])
    assert first == second
    document = json.loads(first)
    uris = [
        result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        for result in document["runs"][0]["results"]
    ]
    assert uris == sorted(uris)
