"""Effect summaries: JSON round-trip and cache-version invalidation.

The incremental cache replays :class:`ModuleSummary` objects from
disk, so the effect facts REP201–REP204 consume must survive
``to_json``/``from_json`` bit-for-bit — and a cache written by an
older analyzer (whose summaries lack effect facts) must be discarded,
never replayed.
"""

import textwrap

import pytest

from repro.analysis import cache as cache_mod
from repro.analysis import AnalysisConfig, Analyzer, default_rules
from repro.analysis.project import ModuleSummary

_EFFECTFUL_SOURCE = '''
"""Doc."""

import os
import threading

_SHARED = {}


def save(path, data):
    """Doc."""
    tmp = str(path) + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def ingest(batch):
    """Doc."""
    try:
        _SHARED.update(batch)
    except Exception:
        raise


def spawn(item):
    """Doc."""
    worker = threading.Thread(target=ingest, args=(item,))
    worker.start()


class Store:
    """Doc."""

    def __init__(self):
        """Doc."""
        self._rows = []
        self._generation = 0

    def append(self, row):
        """Doc."""
        self._rows.append(row)
        self._generation += 1
'''


def _summarize(source, relpath="src/repro/core/fx.py"):
    analyzer = Analyzer(AnalysisConfig(), default_rules())
    _, payload = analyzer.check_source_and_summary(
        textwrap.dedent(source), relpath, want_summary=True
    )
    return ModuleSummary.from_json(payload)


def test_effect_summary_survives_json_round_trip():
    summary = _summarize(_EFFECTFUL_SOURCE)
    restored = ModuleSummary.from_json(summary.to_json())
    assert restored.to_json() == summary.to_json()
    # the facts the REP20x rules consume are all present
    save = restored.effects["repro.core.fx.save"]
    assert save.fsyncs and save.replaces
    assert any(site.mode == "wb" for site in save.writes)
    ingest = restored.effects["repro.core.fx.ingest"]
    assert any(site.reraises for site in ingest.excepts)
    assert any(
        site.target == "_SHARED" for site in ingest.name_mutations
    )
    spawn = restored.effects["repro.core.fx.spawn"]
    assert any(site.kind == "thread" for site in spawn.spawns)
    append = restored.effects["repro.core.fx.Store.append"]
    assert any(
        site.target == "_generation" and site.kind == "assign"
        for site in append.attr_mutations
    )
    assert restored.classes["repro.core.fx.Store"] == []
    assert "_SHARED" in restored.mutable_globals


def test_empty_effects_are_omitted_from_json():
    summary = _summarize(
        '"""Doc."""\n\n\ndef add(a, b):\n    """Doc."""\n    return a + b\n'
    )
    payload = summary.to_json()
    assert payload.get("effects", {}) == {}


def _write(root, relpath, text):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


@pytest.fixture
def project(tmp_path):
    _write(
        tmp_path,
        "src/repro/saver.py",
        '"""Doc."""\n\n\n'
        "def save(path, text):\n"
        '    """Doc."""\n'
        '    with open(path, "w") as handle:\n'
        "        handle.write(text)\n",
    )
    return tmp_path


def _run(root, cache):
    analyzer = Analyzer(AnalysisConfig(), default_rules())
    return analyzer.run(root, [root / "src/repro"], cache=cache)


def test_stale_analyzer_version_cache_is_discarded(project, monkeypatch):
    """A cache written under an older ANALYZER_VERSION must cold-start.

    Pre-3.0.0 caches carry summaries without effect facts; replaying
    one would silently disable the whole REP20x pass for warm runs.
    """
    rule_ids = [r.rule_id for r in default_rules()]
    cache_file = project / ".repro-analysis-cache.json"

    monkeypatch.setattr(cache_mod, "ANALYZER_VERSION", "2.0.1")
    old_signature = cache_mod.ruleset_signature(AnalysisConfig(), rule_ids)
    monkeypatch.undo()

    new_signature = cache_mod.ruleset_signature(AnalysisConfig(), rule_ids)
    assert old_signature != new_signature

    # Populate and persist a cache under the old version's signature.
    old_cache = cache_mod.AnalysisCache(signature=old_signature)
    findings = _run(project, old_cache)
    assert any(f.rule_id == "REP201" for f in findings)
    cache_mod.save_cache(cache_file, old_cache)

    # A current-version load rejects it wholesale: every file misses.
    reloaded = cache_mod.load_cache(cache_file, new_signature)
    assert reloaded.files == {} and not reloaded.program_valid
    warm = _run(project, reloaded)
    assert reloaded.misses == 1 and reloaded.hits == 0
    assert [f.to_json() for f in warm] == [f.to_json() for f in findings]

    # Sanity: the same bytes under the matching signature do replay.
    replay = cache_mod.load_cache(cache_file, old_signature)
    assert set(replay.files) == {"src/repro/saver.py"}
