"""``--explain REP###``: rule docstrings are the single source of
truth, and every registered rule must carry complete sections."""

import pytest

from repro.analysis.rules import (
    EXPLAIN_SECTIONS,
    explain,
    explain_sections,
    iter_rules,
)
from repro.errors import ConfigError


def test_every_registered_rule_has_complete_sections():
    for rule_cls in iter_rules():
        sections = explain_sections(rule_cls)
        for name in EXPLAIN_SECTIONS:
            assert sections[name].strip(), (
                f"{rule_cls.rule_id} has an empty {name} section"
            )


def test_explain_renders_all_sections():
    text = explain("REP001")
    assert text.startswith("REP001 (error, per-file)")
    for header in ("Invariant:", "Why:", "Good:", "Bad:"):
        assert header in text


def test_explain_marks_whole_program_rules():
    assert "(error, whole-program)" in explain("REP101")
    assert "(warning, whole-program)" in explain("REP104")


def test_explain_is_case_insensitive():
    assert explain("rep005") == explain("REP005")


def test_explain_unknown_rule_is_config_error():
    with pytest.raises(ConfigError, match="unknown rule id"):
        explain("REP999")


def test_explain_good_bad_examples_look_like_code():
    # examples should carry indented code, not prose placeholders
    for rule_cls in iter_rules():
        sections = explain_sections(rule_cls)
        assert sections["Good"] != sections["Bad"], rule_cls.rule_id
