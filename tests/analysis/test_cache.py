"""The incremental results cache and the parallel per-file pass.

Correctness bar: a warm, incremental, or parallel run must produce
byte-identical findings to a cold serial run, for any edit sequence.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import cache as cache_mod
from repro.analysis import AnalysisConfig, Analyzer, default_rules


def _write(root, relpath, text):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


@pytest.fixture
def project(tmp_path):
    """A small on-disk project with one laundered clock violation."""
    _write(
        tmp_path,
        "src/repro/util.py",
        "import time\n\n\n"
        "def _stamp():\n"
        '    """Doc."""\n'
        "    return time.time()  # repro: noqa[REP001] fixture\n",
    )
    _write(
        tmp_path,
        "src/repro/core/flow.py",
        '"""Doc."""\n'
        "from repro.util import _stamp\n\n\n"
        "def run(records):\n"
        '    """Doc."""\n'
        "    return _stamp(), records\n",
    )
    _write(
        tmp_path,
        "src/repro/clean.py",
        '"""Doc."""\n\n\n'
        "def add(a, b):\n"
        '    """Doc."""\n'
        "    return a + b\n",
    )
    return tmp_path


def _run(root, cache=None, jobs=1):
    config = AnalysisConfig()
    analyzer = Analyzer(config, default_rules())
    return analyzer.run(root, [root / "src/repro"], jobs=jobs, cache=cache)


def _signature():
    return cache_mod.ruleset_signature(
        AnalysisConfig(), [r.rule_id for r in default_rules()]
    )


def test_warm_run_hits_cache_and_matches_cold(project):
    cache = cache_mod.AnalysisCache(signature=_signature())
    cold = _run(project, cache=cache)
    assert cache.misses == 3 and cache.hits == 0
    assert any(f.rule_id == "REP101" for f in cold)

    warm = _run(project, cache=cache)
    assert cache.hits == cache.misses == 3
    assert [f.to_json() for f in warm] == [f.to_json() for f in cold]


def test_content_change_invalidates_only_that_file(project):
    cache = cache_mod.AnalysisCache(signature=_signature())
    _run(project, cache=cache)
    cache.hits = cache.misses = 0

    _write(
        project,
        "src/repro/clean.py",
        '"""Doc."""\n\n\n'
        "def add(a, b):\n"
        '    """Doc."""\n'
        "    return a + b + 0\n",
    )
    findings = _run(project, cache=cache)
    assert cache.misses == 1 and cache.hits == 2
    # the unrelated REP101 finding survives the incremental pass
    assert any(f.rule_id == "REP101" for f in findings)


def test_edit_propagates_through_dependency_cone(project):
    cache = cache_mod.AnalysisCache(signature=_signature())
    before = _run(project, cache=cache)
    assert any(f.rule_id == "REP101" for f in before)

    # remove the sink: the flagged caller lives in a *different* file,
    # which stays byte-identical — only cone invalidation can clear it
    _write(
        project,
        "src/repro/util.py",
        '"""Doc."""\n\n\n'
        "def _stamp():\n"
        '    """Doc."""\n'
        "    return 0\n",
    )
    after = _run(project, cache=cache)
    assert not any(f.rule_id == "REP101" for f in after)


def test_new_violation_in_touched_file_is_found_warm(project):
    cache = cache_mod.AnalysisCache(signature=_signature())
    _run(project, cache=cache)
    _write(
        project,
        "src/repro/clean.py",
        '"""Doc."""\n\n\n'
        "def add(a, b=[]):\n"
        '    """Doc."""\n'
        "    return a + b\n",
    )
    findings = _run(project, cache=cache)
    assert any(
        f.rule_id == "REP006" and f.path == "src/repro/clean.py"
        for f in findings
    )


def test_cache_round_trips_through_disk(project, tmp_path):
    cache = cache_mod.AnalysisCache(signature=_signature())
    cold = _run(project, cache=cache)
    cache_file = tmp_path / "cache.json"
    cache_mod.save_cache(cache_file, cache)

    reloaded = cache_mod.load_cache(cache_file, _signature())
    assert reloaded.program_valid
    warm = _run(project, cache=reloaded)
    assert reloaded.misses == 0
    assert [f.to_json() for f in warm] == [f.to_json() for f in cold]


def test_signature_mismatch_discards_cache(project, tmp_path):
    cache = cache_mod.AnalysisCache(signature=_signature())
    _run(project, cache=cache)
    cache_file = tmp_path / "cache.json"
    cache_mod.save_cache(cache_file, cache)

    other = cache_mod.load_cache(cache_file, "different-signature")
    assert other.files == {} and not other.program_valid


def test_corrupt_cache_degrades_to_cold_run(project, tmp_path):
    cache_file = tmp_path / "cache.json"
    cache_file.write_text("{not json", encoding="utf-8")
    cache = cache_mod.load_cache(cache_file, _signature())
    assert cache.files == {}
    # and a truncated-but-valid-json payload is equally non-fatal
    cache_file.write_text(
        json.dumps({"signature": _signature(), "files": {"x.py": {}}}),
        encoding="utf-8",
    )
    cache = cache_mod.load_cache(cache_file, _signature())
    assert cache.files == {}


def test_analyzer_version_bump_invalidates_cache(project, tmp_path, monkeypatch):
    # A cache written by analyzer vN must be discarded wholesale by
    # vN+1 — new fact schemas (e.g. the v4 concurrency facts) must
    # never be replayed from summaries that lack them.
    cache = cache_mod.AnalysisCache(signature=_signature())
    _run(project, cache=cache)
    cache_file = tmp_path / "cache.json"
    cache_mod.save_cache(cache_file, cache)

    monkeypatch.setattr(cache_mod, "ANALYZER_VERSION", "3.0.0")
    old_signature = _signature()
    assert old_signature != cache.signature
    stale = cache_mod.load_cache(cache_file, old_signature)
    assert stale.files == {} and not stale.program_valid


def test_ruleset_signature_covers_concurrency_config():
    base = cache_mod.ruleset_signature(AnalysisConfig(), ["REP301"])

    with_locks = AnalysisConfig()
    with_locks.lock_attributes = ["_lock", "_cache_lock"]
    assert base != cache_mod.ruleset_signature(with_locks, ["REP301"])

    with_roots = AnalysisConfig()
    with_roots.concurrency_roots = ["repro.core"]
    assert base != cache_mod.ruleset_signature(with_roots, ["REP301"])


def test_ruleset_signature_covers_rules_and_severity():
    config = AnalysisConfig()
    base = cache_mod.ruleset_signature(config, ["REP001", "REP002"])
    assert base == cache_mod.ruleset_signature(config, ["REP002", "REP001"])
    assert base != cache_mod.ruleset_signature(config, ["REP001"])

    from repro.analysis.findings import Severity

    overridden = AnalysisConfig()
    overridden.severity_overrides["REP001"] = Severity.WARNING
    assert base != cache_mod.ruleset_signature(overridden, ["REP001", "REP002"])


def test_reference_entries_do_not_satisfy_lint_lookups():
    cache = cache_mod.AnalysisCache(signature="s")
    cache.store("a.py", "hash1", [], None, lint=False)
    assert cache.lookup("a.py", "hash1", lint=True) is None
    assert cache.lookup("a.py", "hash1", lint=False) is not None
    # upgrading to a lint entry satisfies both
    cache.store("a.py", "hash1", [], None, lint=True)
    assert cache.lookup("a.py", "hash1", lint=True) is not None
    assert cache.lookup("a.py", "hash1", lint=False) is not None


def test_deleting_sink_module_clears_importer_findings_warm(project):
    cache = cache_mod.AnalysisCache(signature=_signature())
    before = _run(project, cache=cache)
    assert any(f.rule_id == "REP101" for f in before)

    # delete the module *defining* the clock sink: every surviving
    # file is byte-identical, so nothing is (re)analyzed and only
    # deletion-dirtying can stop the cached REP101 from replaying
    (project / "src/repro/util.py").unlink()
    warm = _run(project, cache=cache)
    cold = _run(project)
    assert [f.to_json() for f in warm] == [f.to_json() for f in cold]
    assert not any(f.rule_id == "REP101" for f in warm)


def test_deleting_only_referencer_surfaces_dead_export_warm(tmp_path):
    _write(
        tmp_path,
        "src/repro/api.py",
        '"""Doc."""\n\n'
        '__all__ = ["parse"]\n\n\n'
        "def parse(text):\n"
        '    """Doc."""\n'
        "    return text\n",
    )
    _write(
        tmp_path,
        "src/repro/use.py",
        '"""Doc."""\n'
        "from repro.api import parse\n\n\n"
        "def run(text):\n"
        '    """Doc."""\n'
        "    return parse(text)\n",
    )
    cache = cache_mod.AnalysisCache(signature=_signature())
    before = _run(tmp_path, cache=cache)
    assert not any(f.rule_id == "REP104" for f in before)

    # the deletion introduces a *new* finding in an unchanged file:
    # the export's sole referencer is gone, so REP104 must fire on the
    # warm run exactly as it does on a cold one
    (tmp_path / "src/repro/use.py").unlink()
    warm = _run(tmp_path, cache=cache)
    cold = _run(tmp_path)
    assert [f.to_json() for f in warm] == [f.to_json() for f in cold]
    assert any(f.rule_id == "REP104" for f in warm)


def test_rename_moves_findings_warm(project):
    cache = cache_mod.AnalysisCache(signature=_signature())
    before = _run(project, cache=cache)
    assert any(f.rule_id == "REP101" for f in before)

    # rename = delete + add under a new module name; the stale cone
    # (old name) and the fresh cone (new name) must both invalidate
    flow = project / "src/repro/core/flow.py"
    moved = project / "src/repro/core/pipeline.py"
    moved.write_text(flow.read_text(encoding="utf-8"), encoding="utf-8")
    flow.unlink()
    warm = _run(project, cache=cache)
    cold = _run(project)
    assert [f.to_json() for f in warm] == [f.to_json() for f in cold]
    hits = [f for f in warm if f.rule_id == "REP101"]
    assert hits and all(
        f.path == "src/repro/core/pipeline.py" for f in hits
    )


def test_prune_drops_deleted_files(project):
    cache = cache_mod.AnalysisCache(signature=_signature())
    _run(project, cache=cache)
    assert "src/repro/clean.py" in cache.files
    (project / "src/repro/clean.py").unlink()
    _run(project, cache=cache)
    assert "src/repro/clean.py" not in cache.files


def test_parallel_run_matches_serial(project):
    serial = _run(project)
    parallel = _run(project, jobs=2)
    assert [f.to_json() for f in parallel] == [f.to_json() for f in serial]


def test_parallel_warm_cache_matches(project):
    cache = cache_mod.AnalysisCache(signature=_signature())
    cold = _run(project, cache=cache, jobs=2)
    warm = _run(project, cache=cache, jobs=2)
    assert [f.to_json() for f in warm] == [f.to_json() for f in cold]


def test_concurrent_lint_runs_never_tear_the_cache(project):
    """Two `--jobs 4` lint runs sharing one cache file, in parallel.

    The save is rename-atomic, so a reader polling the file while both
    runs execute must only ever observe a complete, valid JSON payload
    carrying the expected signature — never a half-written document.
    """
    import os
    import subprocess
    import sys
    import time

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable,
        "-m",
        "repro.analysis",
        "--root",
        str(project),
        "--jobs",
        "4",
        "--no-baseline",
    ]
    cache_file = project / ".repro-analysis-cache.json"
    runs = [
        subprocess.Popen(
            command,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        for _ in range(2)
    ]
    observed = 0
    try:
        while any(proc.poll() is None for proc in runs):
            try:
                data = json.loads(cache_file.read_text(encoding="utf-8"))
            except OSError:
                pass  # not written yet — fine
            else:
                # any readable state must be a complete document
                assert data.get("signature") == _signature()
                assert data.get("tool") == "repro.analysis"
                observed += 1
            time.sleep(0.01)
    finally:
        for proc in runs:
            proc.wait(timeout=120)
    # the project carries one deliberate REP101 violation: both runs
    # must report it (exit 1), proving neither saw a torn cache
    for proc in runs:
        assert proc.returncode == 1, proc.stderr.read().decode()
    final = cache_mod.load_cache(cache_file, _signature())
    assert final.files and final.program_valid
    # a warm in-process run over the survivor matches a cold one
    warm = _run(project, cache=final)
    cold = _run(project)
    assert [f.to_json() for f in warm] == [f.to_json() for f in cold]
    assert final.misses == 0


def test_program_valid_distinguishes_empty_from_unran(tmp_path):
    # a clean project caches "zero program findings" as a valid result
    _write(
        tmp_path,
        "src/repro/clean.py",
        '"""Doc."""\n\n\n'
        "def add(a, b):\n"
        '    """Doc."""\n'
        "    return a + b\n",
    )
    cache = cache_mod.AnalysisCache(signature=_signature())
    assert not cache.program_valid
    _run(tmp_path, cache=cache)
    assert cache.program_valid
    assert cache.program_findings == {}
