"""The ``repro-nxd lint`` subcommand and ``python -m repro.analysis``
driver: exit codes, JSON output, baseline update, rule selection."""

import json
from pathlib import Path

from repro.analysis.main import main as analysis_main
from repro.cli import main as cli_main

REPO_ROOT = str(Path(__file__).resolve().parents[2])


def test_lint_exits_zero_on_clean_repo(capsys):
    assert cli_main(["lint", "--root", REPO_ROOT]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_lint_exits_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n", encoding="utf-8")
    code = cli_main(
        ["lint", "--root", REPO_ROOT, "--no-baseline", str(bad)]
    )
    assert code == 1
    assert "REP002" in capsys.readouterr().out


def test_lint_select_restricts_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    # REP006 violation only; a REP001/REP002-restricted run passes it
    bad.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
    code = cli_main(
        [
            "lint", "--root", REPO_ROOT, "--no-baseline",
            "--select", "REP001,REP002", str(bad),
        ]
    )
    capsys.readouterr()
    assert code == 0


def test_lint_json_output_parses(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n", encoding="utf-8")
    code = cli_main(
        [
            "lint", "--root", REPO_ROOT, "--no-baseline",
            "--format", "json", str(bad),
        ]
    )
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 4
    assert document["analyzer_version"]
    # the resolved rule set that actually ran is recorded in the header
    assert "REP002" in document["rules"]
    assert document["summary"]["errors"] >= 1
    assert any(e["rule"] == "REP002" for e in document["findings"])


def test_update_baseline_then_clean(tmp_path, capsys):
    root = tmp_path
    src = root / "pkg"
    src.mkdir()
    bad = src / "mod.py"
    bad.write_text("import random\n", encoding="utf-8")
    baseline = root / "debt.json"
    base_args = [
        "lint", "--root", str(root), "--baseline", "debt.json", "pkg",
    ]
    assert cli_main(base_args + ["--update-baseline"]) == 0
    assert baseline.is_file()
    capsys.readouterr()
    # accepted: same violation no longer fails, but is still reported
    assert cli_main(base_args) == 0
    out = capsys.readouterr().out
    assert "[baselined]" in out
    # a second, new violation fails again
    (src / "worse.py").write_text(
        "from time import time\n", encoding="utf-8"
    )
    assert cli_main(base_args) == 1


def test_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for n in range(1, 9):
        assert f"REP00{n}" in out


def test_module_entry_point_matches_cli(capsys):
    assert analysis_main(["--root", REPO_ROOT]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_missing_path_is_usage_error(capsys):
    assert cli_main(["lint", "--root", REPO_ROOT, "no/such/dir"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_unknown_select_id_is_usage_error(capsys):
    # a typo'd --select must not silently lint with zero rules
    assert cli_main(["lint", "--root", REPO_ROOT, "--select", "REP01"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_explain_prints_rule_documentation(capsys):
    assert cli_main(["lint", "--explain", "REP101"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("REP101")
    for header in ("Invariant:", "Why:", "Good:", "Bad:"):
        assert header in out


def test_explain_is_case_insensitive(capsys):
    assert cli_main(["lint", "--explain", "rep001"]) == 0
    assert capsys.readouterr().out.startswith("REP001")


def test_explain_unknown_rule_is_usage_error(capsys):
    assert cli_main(["lint", "--explain", "REP999"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_jobs_zero_is_usage_error(capsys):
    assert cli_main(["lint", "--root", REPO_ROOT, "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_default_run_writes_and_reuses_cache(tmp_path, capsys):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "mod.py").write_text(
        '"""Doc."""\n\n\ndef f(a):\n    """Doc."""\n    return a\n',
        encoding="utf-8",
    )
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro.analysis]\npaths = ["src/repro"]\n', encoding="utf-8"
    )
    assert cli_main(["lint", "--root", str(tmp_path)]) == 0
    cache_file = tmp_path / ".repro-analysis-cache.json"
    assert cache_file.is_file()
    capsys.readouterr()
    # a second run reuses the cache and still exits clean
    assert cli_main(["lint", "--root", str(tmp_path)]) == 0
    # --no-cache neither requires nor rewrites the cache file
    cache_file.unlink()
    capsys.readouterr()
    assert cli_main(["lint", "--root", str(tmp_path), "--no-cache"]) == 0
    assert not cache_file.exists()


def test_explicit_paths_do_not_touch_cache(tmp_path, capsys):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "mod.py").write_text(
        '"""Doc."""\n\n\ndef f(a):\n    """Doc."""\n    return a\n',
        encoding="utf-8",
    )
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro.analysis]\npaths = ["src/repro"]\n', encoding="utf-8"
    )
    code = cli_main(
        ["lint", "--root", str(tmp_path), "--no-baseline", "src/repro"]
    )
    capsys.readouterr()
    assert code == 0
    assert not (tmp_path / ".repro-analysis-cache.json").exists()


def _statistics_root(tmp_path):
    """A one-file project root with a single REP002 violation."""
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "mod.py").write_text("import random\n", encoding="utf-8")
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro.analysis]\npaths = ["src/repro"]\n'
        "reference-paths = []\n",
        encoding="utf-8",
    )
    return tmp_path


def test_statistics_flag_prints_run_profile(tmp_path, capsys):
    root = _statistics_root(tmp_path)
    args = [
        "lint", "--root", str(root), "--no-baseline", "--no-cache",
        "--statistics",
    ]
    assert cli_main(args) == 1
    out = capsys.readouterr().out
    assert "-- statistics --" in out
    assert "files analyzed: 1 (cache hits 0, misses 0)" in out
    assert "pass per-file:" in out
    assert "pass whole-program:" in out
    assert "findings by rule: REP002=1" in out


def test_statistics_flag_lands_in_json_header(tmp_path, capsys):
    root = _statistics_root(tmp_path)
    args = [
        "lint", "--root", str(root), "--no-baseline", "--no-cache",
        "--statistics", "--format", "json",
    ]
    assert cli_main(args) == 1
    document = json.loads(capsys.readouterr().out)
    stats = document["statistics"]
    assert stats["files"] == 1
    assert stats["rule_counts"] == {"REP002": 1}
    assert "per-file" in stats["pass_seconds"]
    assert "whole-program" in stats["pass_seconds"]
    # without the flag the header key is absent entirely
    assert cli_main(
        [
            "lint", "--root", str(root), "--no-baseline", "--no-cache",
            "--format", "json",
        ]
    ) == 1
    bare = json.loads(capsys.readouterr().out)
    assert "statistics" not in bare


def test_statistics_reports_warm_cache_hits(tmp_path, capsys):
    root = _statistics_root(tmp_path)
    args = [
        "lint", "--root", str(root), "--no-baseline", "--statistics",
    ]
    assert cli_main(args) == 1
    capsys.readouterr()
    assert cli_main(args) == 1
    out = capsys.readouterr().out
    assert "files analyzed: 1 (cache hits 1, misses 0)" in out


def test_jobs_run_matches_serial_output(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nfrom time import time\n", encoding="utf-8")
    args = ["lint", "--root", REPO_ROOT, "--no-baseline", str(bad)]
    assert cli_main(args) == 1
    serial = capsys.readouterr().out
    assert cli_main(args + ["--jobs", "2"]) == 1
    assert capsys.readouterr().out == serial
