"""The ``repro-nxd lint`` subcommand and ``python -m repro.analysis``
driver: exit codes, JSON output, baseline update, rule selection."""

import json
from pathlib import Path

from repro.analysis.main import main as analysis_main
from repro.cli import main as cli_main

REPO_ROOT = str(Path(__file__).resolve().parents[2])


def test_lint_exits_zero_on_clean_repo(capsys):
    assert cli_main(["lint", "--root", REPO_ROOT]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_lint_exits_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n", encoding="utf-8")
    code = cli_main(
        ["lint", "--root", REPO_ROOT, "--no-baseline", str(bad)]
    )
    assert code == 1
    assert "REP002" in capsys.readouterr().out


def test_lint_select_restricts_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    # REP006 violation only; a REP001/REP002-restricted run passes it
    bad.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
    code = cli_main(
        [
            "lint", "--root", REPO_ROOT, "--no-baseline",
            "--select", "REP001,REP002", str(bad),
        ]
    )
    capsys.readouterr()
    assert code == 0


def test_lint_json_output_parses(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n", encoding="utf-8")
    code = cli_main(
        [
            "lint", "--root", REPO_ROOT, "--no-baseline",
            "--format", "json", str(bad),
        ]
    )
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
    assert document["summary"]["errors"] >= 1
    assert any(e["rule"] == "REP002" for e in document["findings"])


def test_update_baseline_then_clean(tmp_path, capsys):
    root = tmp_path
    src = root / "pkg"
    src.mkdir()
    bad = src / "mod.py"
    bad.write_text("import random\n", encoding="utf-8")
    baseline = root / "debt.json"
    base_args = [
        "lint", "--root", str(root), "--baseline", "debt.json", "pkg",
    ]
    assert cli_main(base_args + ["--update-baseline"]) == 0
    assert baseline.is_file()
    capsys.readouterr()
    # accepted: same violation no longer fails, but is still reported
    assert cli_main(base_args) == 0
    out = capsys.readouterr().out
    assert "[baselined]" in out
    # a second, new violation fails again
    (src / "worse.py").write_text(
        "from time import time\n", encoding="utf-8"
    )
    assert cli_main(base_args) == 1


def test_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for n in range(1, 9):
        assert f"REP00{n}" in out


def test_module_entry_point_matches_cli(capsys):
    assert analysis_main(["--root", REPO_ROOT]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_missing_path_is_usage_error(capsys):
    assert cli_main(["lint", "--root", REPO_ROOT, "no/such/dir"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_unknown_select_id_is_usage_error(capsys):
    # a typo'd --select must not silently lint with zero rules
    assert cli_main(["lint", "--root", REPO_ROOT, "--select", "REP01"]) == 2
    assert "unknown rule id" in capsys.readouterr().err
