"""Shared helpers for the analyzer test suite."""

import textwrap

import pytest

from repro.analysis import AnalysisConfig, Analyzer, default_rules, instantiate


@pytest.fixture
def run_source():
    """Analyze a dedented snippet as though it lived at ``relpath``."""

    def _run(code, relpath="src/repro/demo.py", select=None, config=None):
        cfg = config if config is not None else AnalysisConfig()
        rules = instantiate(select) if select is not None else default_rules()
        analyzer = Analyzer(cfg, rules)
        return analyzer.check_source(textwrap.dedent(code), relpath)

    return _run


def rule_ids(findings):
    """The sorted multiset of rule ids in a finding list."""
    return sorted(finding.rule_id for finding in findings)
