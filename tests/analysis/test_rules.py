"""Each built-in rule: one snippet that triggers it, one that is
legitimately suppressed with ``# repro: noqa[RULE]``, and the main
negative (clean) shapes the rule must not flag."""

import pytest

from tests.analysis.conftest import rule_ids


class TestRep001WallClock:
    def test_datetime_now_flagged(self, run_source):
        findings = run_source(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        )
        assert "REP001" in rule_ids(findings)

    def test_time_time_flagged(self, run_source):
        findings = run_source(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert "REP001" in rule_ids(findings)

    def test_from_time_import_time_flagged(self, run_source):
        findings = run_source("from time import time\n")
        assert "REP001" in rule_ids(findings)

    def test_clock_module_exempt(self, run_source):
        findings = run_source(
            """
            import datetime

            def now():
                return datetime.datetime.now()
            """,
            relpath="src/repro/clock.py",
        )
        assert "REP001" not in rule_ids(findings)

    def test_noqa_suppresses(self, run_source):
        findings = run_source(
            """
            import time

            def stamp():
                return time.time()  # repro: noqa[REP001] perf probe only
            """
        )
        assert "REP001" not in rule_ids(findings)

    def test_simclock_usage_clean(self, run_source):
        findings = run_source(
            """
            def advance(clock):
                '''Move the simulated clock forward one day.'''
                return clock.advance_days(1)
            """
        )
        assert findings == []


class TestRep002Randomness:
    def test_import_random_flagged(self, run_source):
        assert "REP002" in rule_ids(run_source("import random\n"))

    def test_from_random_import_flagged(self, run_source):
        assert "REP002" in rule_ids(run_source("from random import choice\n"))

    def test_np_random_seed_flagged(self, run_source):
        findings = run_source(
            """
            import numpy as np

            def reset():
                np.random.seed(0)
            """
        )
        assert "REP002" in rule_ids(findings)

    def test_unseeded_default_rng_flagged(self, run_source):
        findings = run_source(
            """
            import numpy as np

            def fresh():
                return np.random.default_rng()
            """
        )
        assert "REP002" in rule_ids(findings)

    def test_seeded_default_rng_not_flagged_as_unseeded(self, run_source):
        findings = run_source(
            """
            import numpy as np

            def fresh(seed):
                '''Seeded, so REP002's unseeded check stays quiet.'''
                return np.random.default_rng(seed)
            """
        )
        assert "REP002" not in rule_ids(findings)

    def test_rand_module_exempt(self, run_source):
        findings = run_source(
            """
            import numpy as np

            def make_rng(seed):
                '''The one sanctioned generator factory.'''
                return np.random.Generator(np.random.PCG64(seed))
            """,
            relpath="src/repro/rand.py",
        )
        assert "REP002" not in rule_ids(findings)

    def test_noqa_suppresses(self, run_source):
        findings = run_source(
            "import random  # repro: noqa[REP002] docs snippet\n"
        )
        assert "REP002" not in rule_ids(findings)


class TestRep003Raises:
    def test_builtin_raise_flagged(self, run_source):
        findings = run_source(
            """
            def check(x):
                '''doc'''
                if x < 0:
                    raise ValueError("negative")
            """
        )
        assert "REP003" in rule_ids(findings)

    def test_repro_error_clean(self, run_source):
        findings = run_source(
            """
            from repro.errors import ConfigError

            def check(x):
                '''doc'''
                if x < 0:
                    raise ConfigError("negative")
            """
        )
        assert "REP003" not in rule_ids(findings)

    def test_bare_reraise_clean(self, run_source):
        findings = run_source(
            """
            def forward():
                '''doc'''
                try:
                    work()
                except ValueError:
                    raise
            """
        )
        assert "REP003" not in rule_ids(findings)

    def test_not_implemented_allowed(self, run_source):
        findings = run_source(
            """
            def abstract():
                '''doc'''
                raise NotImplementedError
            """
        )
        assert "REP003" not in rule_ids(findings)

    def test_noqa_suppresses(self, run_source):
        findings = run_source(
            """
            def getattr_hook(name):
                '''doc'''
                raise AttributeError(name)  # repro: noqa[REP003] protocol
            """
        )
        assert "REP003" not in rule_ids(findings)


class TestRep004BroadExcept:
    def test_bare_except_flagged(self, run_source):
        findings = run_source(
            """
            def swallow():
                '''doc'''
                try:
                    work()
                except:
                    pass
            """
        )
        assert "REP004" in rule_ids(findings)

    def test_broad_except_flagged(self, run_source):
        findings = run_source(
            """
            def swallow():
                '''doc'''
                try:
                    work()
                except Exception:
                    return None
            """
        )
        assert "REP004" in rule_ids(findings)

    def test_broad_except_with_reraise_clean(self, run_source):
        findings = run_source(
            """
            def annotate():
                '''doc'''
                try:
                    work()
                except Exception as exc:
                    raise RuntimeError(str(exc))  # repro: noqa[REP003] wrap
            """
        )
        assert "REP004" not in rule_ids(findings)

    def test_specific_except_clean(self, run_source):
        findings = run_source(
            """
            def tolerate():
                '''doc'''
                try:
                    work()
                except ValueError:
                    return None
            """
        )
        assert "REP004" not in rule_ids(findings)

    def test_noqa_suppresses(self, run_source):
        findings = run_source(
            """
            def boundary():
                '''doc'''
                try:
                    work()
                except Exception:  # repro: noqa[REP004] top-level report guard
                    return None
            """
        )
        assert "REP004" not in rule_ids(findings)


class TestRep005Layering:
    def test_substrate_importing_core_flagged(self, run_source):
        findings = run_source(
            "from repro.core import study\n",
            relpath="src/repro/dns/cache.py",
        )
        assert "REP005" in rule_ids(findings)

    def test_anything_importing_cli_flagged(self, run_source):
        findings = run_source(
            "import repro.cli\n",
            relpath="src/repro/core/study.py",
        )
        assert "REP005" in rule_ids(findings)

    def test_main_module_may_import_cli(self, run_source):
        findings = run_source(
            "from repro.cli import main\n",
            relpath="src/repro/__main__.py",
        )
        assert "REP005" not in rule_ids(findings)

    def test_core_importing_substrate_clean(self, run_source):
        findings = run_source(
            "from repro.dns.name import DomainName\n",
            relpath="src/repro/core/study.py",
        )
        assert "REP005" not in rule_ids(findings)

    def test_substrate_sibling_import_clean(self, run_source):
        findings = run_source(
            "from repro.dns.name import DomainName\n",
            relpath="src/repro/squatting/typo.py",
        )
        assert "REP005" not in rule_ids(findings)

    def test_relative_import_resolved(self, run_source):
        findings = run_source(
            "from . import zone\n",
            relpath="src/repro/dns/cache.py",
        )
        assert "REP005" not in rule_ids(findings)

    def test_foundation_importing_substrate_flagged(self, run_source):
        findings = run_source(
            "from repro.dns.name import DomainName\n",
            relpath="src/repro/rand.py",
        )
        assert "REP005" in rule_ids(findings)

    def test_noqa_suppresses(self, run_source):
        findings = run_source(
            "from repro.core import study  # repro: noqa[REP005] doc example\n",
            relpath="src/repro/dns/cache.py",
        )
        assert "REP005" not in rule_ids(findings)

    def test_type_checking_guarded_import_exempt(self, run_source):
        # regression: an upward import under `if TYPE_CHECKING:` never
        # executes, so it is a type-only edge, not a layering edge
        findings = run_source(
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.core import study
            """,
            relpath="src/repro/dns/cache.py",
        )
        assert "REP005" not in rule_ids(findings)

    def test_type_checking_via_typing_attribute_exempt(self, run_source):
        findings = run_source(
            """
            import typing

            if typing.TYPE_CHECKING:
                import repro.cli
            """,
            relpath="src/repro/core/study.py",
        )
        assert "REP005" not in rule_ids(findings)

    def test_runtime_import_next_to_guard_still_flagged(self, run_source):
        # only the guarded block is exempt; the module body is not
        findings = run_source(
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.core import study

            from repro.core import pipeline
            """,
            relpath="src/repro/dns/cache.py",
        )
        assert "REP005" in rule_ids(findings)


class TestRep006MutableDefaults:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "dict()", "list()"]
    )
    def test_mutable_default_flagged(self, run_source, default):
        findings = run_source(
            f"""
            def f(x={default}):
                '''doc'''
                return x
            """
        )
        assert "REP006" in rule_ids(findings)

    def test_kwonly_mutable_default_flagged(self, run_source):
        findings = run_source(
            """
            def f(*, x=[]):
                '''doc'''
                return x
            """
        )
        assert "REP006" in rule_ids(findings)

    def test_immutable_defaults_clean(self, run_source):
        findings = run_source(
            """
            def f(x=(), y=None, z=0):
                '''doc'''
                return x, y, z
            """
        )
        assert "REP006" not in rule_ids(findings)

    def test_noqa_suppresses(self, run_source):
        findings = run_source(
            """
            def f(x=[]):  # repro: noqa[REP006] sentinel never mutated
                '''doc'''
                return x
            """
        )
        assert "REP006" not in rule_ids(findings)


class TestRep007OrderedReportIteration:
    REPORT = "src/repro/core/reports.py"

    def test_items_iteration_flagged_in_report_code(self, run_source):
        findings = run_source(
            """
            def render(histogram):
                '''doc'''
                return [f"{k}={v}" for k, v in histogram.items()]
            """,
            relpath=self.REPORT,
        )
        assert "REP007" in rule_ids(findings)

    def test_sorted_items_clean(self, run_source):
        findings = run_source(
            """
            def render(histogram):
                '''doc'''
                return [f"{k}={v}" for k, v in sorted(histogram.items())]
            """,
            relpath=self.REPORT,
        )
        assert "REP007" not in rule_ids(findings)

    def test_set_construction_flagged(self, run_source):
        findings = run_source(
            """
            def render(rows):
                '''doc'''
                return list({row.tld for row in rows})
            """,
            relpath=self.REPORT,
        )
        assert "REP007" in rule_ids(findings)

    def test_sorted_set_clean(self, run_source):
        findings = run_source(
            """
            def render(rows):
                '''doc'''
                return sorted({row.tld for row in rows})
            """,
            relpath=self.REPORT,
        )
        assert "REP007" not in rule_ids(findings)

    def test_non_report_code_not_audited(self, run_source):
        findings = run_source(
            """
            def tally(histogram):
                '''doc'''
                return [f"{k}={v}" for k, v in histogram.items()]
            """,
            relpath="src/repro/dns/cache.py",
        )
        assert "REP007" not in rule_ids(findings)

    def test_noqa_suppresses(self, run_source):
        findings = run_source(
            """
            def render(checks):
                '''doc'''
                return [
                    name
                    for name in checks.keys()  # repro: noqa[REP007] declared order
                ]
            """,
            relpath=self.REPORT,
        )
        assert "REP007" not in rule_ids(findings)


class TestRep008PublicApiDocumented:
    def test_undocumented_public_function_flagged(self, run_source):
        findings = run_source(
            """
            def compute(x):
                return x + 1
            """
        )
        assert "REP008" in rule_ids(findings)

    def test_docstring_clean(self, run_source):
        findings = run_source(
            """
            def compute(x):
                '''Add one.'''
                return x + 1
            """
        )
        assert "REP008" not in rule_ids(findings)

    def test_return_annotation_clean(self, run_source):
        findings = run_source(
            """
            def compute(x) -> int:
                return x + 1
            """
        )
        assert "REP008" not in rule_ids(findings)

    def test_private_and_nested_skipped(self, run_source):
        findings = run_source(
            """
            def _helper(x):
                return x

            def outer() -> int:
                def inner(y):
                    return y
                return inner(1)
            """
        )
        assert "REP008" not in rule_ids(findings)

    def test_public_method_flagged(self, run_source):
        findings = run_source(
            """
            class Box:
                '''doc'''

                def open(self):
                    return self
            """
        )
        assert "REP008" in rule_ids(findings)

    def test_noqa_suppresses(self, run_source):
        findings = run_source(
            """
            def compute(x):  # repro: noqa[REP008] trivial shim
                return x + 1
            """
        )
        assert "REP008" not in rule_ids(findings)

    def test_severity_is_warning_by_default(self, run_source):
        findings = run_source(
            """
            def compute(x):
                return x + 1
            """
        )
        rep008 = [f for f in findings if f.rule_id == "REP008"]
        assert rep008 and all(f.severity.value == "warning" for f in rep008)
