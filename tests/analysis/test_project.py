"""The whole-program project model: name resolution, call graph,
taint propagation, import graph, and the incremental dependency cone.

The edge cases here (cyclic imports, ``from x import *``, re-exports
through ``__init__``, decorated and nested functions) are exactly the
shapes that made per-file analysis blind; each gets a regression test
against the model builder.
"""

import textwrap

from repro.analysis.project import (
    MODULE_SCOPE,
    ModuleSummary,
    ProjectModel,
    model_from_sources,
)


def _model(files):
    """Build a model from ``{relpath: code}`` sources."""
    return model_from_sources(
        {path: textwrap.dedent(code) for path, code in files.items()}
    )


def test_function_params_keep_declaration_order():
    model = _model({
        "src/repro/a.py": (
            "def load(name, /, pkg, *args, flag=False, **extra):\n"
            "    pass\n"
        ),
    })
    info = model.modules["repro.a"].functions["repro.a.load"]
    # positional-only first, then regular — true call-site order
    assert info.params == ["name", "pkg"]
    # keyword-only params can never receive a positional argument
    assert info.kwonly == ["flag"]


def test_resolve_plain_import_alias():
    model = _model({
        "src/repro/a.py": "import repro.b as bee\n\ndef f():\n    bee.g()\n",
        "src/repro/b.py": "def g():\n    pass\n",
    })
    assert model.resolve("repro.a", "bee.g") == "repro.b.g"


def test_resolve_from_import():
    model = _model({
        "src/repro/a.py": "from repro.b import g\n\ndef f():\n    g()\n",
        "src/repro/b.py": "def g():\n    pass\n",
    })
    assert model.resolve("repro.a", "g") == "repro.b.g"


def test_resolve_relative_import():
    model = _model({
        "src/repro/pkg/__init__.py": "",
        "src/repro/pkg/a.py": "from . import b\n\ndef f():\n    b.g()\n",
        "src/repro/pkg/b.py": "def g():\n    pass\n",
    })
    assert model.resolve("repro.pkg.a", "b.g") == "repro.pkg.b.g"


def test_resolve_star_import():
    model = _model({
        "src/repro/a.py": "from repro.b import *\n\ndef f():\n    g()\n",
        "src/repro/b.py": "def g():\n    pass\n\ndef _hidden():\n    pass\n",
    })
    assert model.resolve("repro.a", "g") == "repro.b.g"
    # underscore names are not star-visible
    assert model.resolve("repro.a", "_hidden") is None


def test_resolve_star_import_respects_all():
    model = _model({
        "src/repro/a.py": "from repro.b import *\n\nexported()\nunlisted()\n",
        "src/repro/b.py": (
            '__all__ = ["exported"]\n\n'
            "def exported():\n    pass\n\n"
            "def unlisted():\n    pass\n"
        ),
    })
    assert model.resolve("repro.a", "exported") == "repro.b.exported"
    assert model.resolve("repro.a", "unlisted") is None


def test_resolve_reexport_through_init():
    # consumer imports from the package; the definition lives deeper
    model = _model({
        "src/repro/pkg/__init__.py": "from repro.pkg.impl import thing\n",
        "src/repro/pkg/impl.py": "def thing():\n    pass\n",
        "src/repro/use.py": "from repro.pkg import thing\n\nthing()\n",
    })
    assert model.resolve("repro.use", "thing") == "repro.pkg.impl.thing"


def test_cyclic_imports_terminate_and_resolve():
    # a <-> b cycle: resolution must not recurse forever, and both
    # directions must still resolve what they can.
    model = _model({
        "src/repro/a.py": "from repro.b import g\n\ndef f():\n    g()\n",
        "src/repro/b.py": "from repro.a import f\n\ndef g():\n    f()\n",
    })
    assert model.resolve("repro.a", "g") == "repro.b.g"
    assert model.resolve("repro.b", "f") == "repro.a.f"
    graph = model.call_graph()
    assert "repro.b.g" in graph["repro.a.f"]
    assert "repro.a.f" in graph["repro.b.g"]


def test_self_referential_reexport_cycle_terminates():
    # the chain never bottoms out in a definition: resolution must
    # terminate (cycle guard) and be deterministic, not hang
    model = _model({
        "src/repro/a.py": "from repro.b import name\n",
        "src/repro/b.py": "from repro.a import name\n",
    })
    first = model.resolve("repro.a", "name")
    assert first == model.resolve("repro.a", "name")
    assert first is None or first.startswith("repro.")


def test_call_graph_includes_module_level_calls():
    model = _model({
        "src/repro/a.py": "import time\n\nSTAMP = time.time()\n",
    })
    assert "time.time" in model.call_graph()["repro.a"]


def test_call_graph_resolves_self_method_calls():
    model = _model({
        "src/repro/a.py": (
            "class C:\n"
            "    def run(self):\n"
            "        return self.helper()\n\n"
            "    def helper(self):\n"
            "        return 1\n"
        ),
    })
    assert "repro.a.C.helper" in model.call_graph()["repro.a.C.run"]


def test_decorated_and_nested_functions_are_modeled():
    model = _model({
        "src/repro/a.py": (
            "import functools\n\n\n"
            "@functools.lru_cache\n"
            "def outer():\n"
            "    def inner():\n"
            "        return 1\n"
            "    return inner()\n"
        ),
    })
    summary = model.modules["repro.a"]
    outer = summary.functions["repro.a.outer"]
    inner = summary.functions["repro.a.outer.inner"]
    assert outer.decorated and not outer.nested
    assert inner.nested
    # outer's call to inner resolves through the enclosing scope chain
    assert "repro.a.outer.inner" in model.call_graph()["repro.a.outer"]


def test_taint_chain_is_deterministic_witness():
    model = _model({
        "src/repro/sinkmod.py": (
            "import time\n\n"
            "def read():\n"
            "    return time.time()\n"
        ),
        "src/repro/mid.py": (
            "from repro.sinkmod import read\n\n"
            "def relay():\n"
            "    return read()\n"
        ),
        "src/repro/top.py": (
            "from repro.mid import relay\n\n"
            "def entry():\n"
            "    return relay()\n"
        ),
    })
    chains = model.tainted_from(["time.time"])
    assert chains["repro.top.entry"] == [
        "repro.top.entry",
        "repro.mid.relay",
        "repro.sinkmod.read",
        "time.time",
    ]


def test_import_graph_and_dependency_cone():
    model = _model({
        "src/repro/base.py": "def g():\n    pass\n",
        "src/repro/mid.py": "from repro.base import g\n",
        "src/repro/top.py": "from repro.mid import g\n",
        "src/repro/other.py": "def h():\n    pass\n",
    })
    graph = model.import_graph()
    assert graph["repro.mid"] == {"repro.base"}
    assert graph["repro.top"] == {"repro.mid"}
    # editing base invalidates base + mid + top, never other
    cone = model.dependency_cone({"repro.base"})
    assert cone == {"repro.base", "repro.mid", "repro.top"}
    assert model.dependency_cone({"repro.other"}) == {"repro.other"}


def test_type_checking_imports_still_propagate_dirtiness():
    # type-only edges are exempt from REP005 but must still appear in
    # the import graph: over-invalidation is safe, under is not.
    model = _model({
        "src/repro/a.py": (
            "from typing import TYPE_CHECKING\n\n"
            "if TYPE_CHECKING:\n"
            "    from repro.b import Thing\n"
        ),
        "src/repro/b.py": "class Thing:\n    pass\n",
    })
    assert "repro.b" in model.import_graph()["repro.a"]
    assert "repro.a" in model.dependency_cone({"repro.b"})


def test_reference_index_spans_modules():
    model = _model({
        "src/repro/a.py": "def widget():\n    pass\n",
        "src/repro/b.py": "from repro.a import widget\n\nwidget()\n",
    })
    index = model.reference_index()
    assert index["widget"] == {"repro.a", "repro.b"}


def test_summary_round_trips_through_json():
    model = _model({
        "src/repro/a.py": (
            "from repro.b import g\n\n"
            "SEED = 7\n\n"
            '__all__ = ["f"]\n\n\n'
            "def f(x):\n"
            "    return g(x)\n"
        ),
    })
    summary = model.modules["repro.a"]
    rebuilt = ModuleSummary.from_json(summary.to_json())
    assert rebuilt.to_json() == summary.to_json()
    assert rebuilt.exports == ["f"]
    assert "SEED" in rebuilt.const_globals
    # a model built from round-tripped summaries behaves identically
    again = ProjectModel([rebuilt])
    assert again.resolve("repro.a", "g") == "repro.b.g"


def test_module_scope_marker_for_top_level_calls():
    model = _model({"src/repro/a.py": "print('x')\n"})
    calls = model.modules["repro.a"].calls
    assert calls and calls[0].caller == MODULE_SCOPE
