"""Output formats: the JSON schema is stable, the text format is
line-per-finding with a trailing summary."""

import json

from repro.analysis import report as report_mod


def _sample_findings(run_source):
    return run_source(
        """
        import random

        def f(x=[]):
            return x
        """
    )


def test_json_schema_top_level_keys(run_source):
    document = json.loads(report_mod.render_json(_sample_findings(run_source)))
    assert list(document) == [
        "version", "tool", "analyzer_version", "rules", "rule_info",
        "findings", "summary",
    ]
    assert document["version"] == report_mod.JSON_SCHEMA_VERSION
    assert document["version"] == 4
    assert document["tool"] == "repro.analysis"
    assert document["analyzer_version"] == report_mod.ANALYZER_VERSION
    assert list(document["summary"]) == [
        "total", "new", "baselined", "errors", "warnings",
    ]


def test_json_statistics_header_is_opt_in(run_source):
    findings = _sample_findings(run_source)
    bare = json.loads(report_mod.render_json(findings))
    assert "statistics" not in bare

    stats = {
        "files": 1,
        "cache_hits": 0,
        "cache_misses": 1,
        "pass_seconds": {"per-file": 0.01},
        "rule_seconds": {},
        "rule_counts": {"REP002": 1},
    }
    document = json.loads(report_mod.render_json(findings, statistics=stats))
    assert document["statistics"] == stats
    # the header lands before the findings so the document stays
    # streaming-parseable in schema order
    keys = list(document)
    assert keys.index("statistics") < keys.index("findings")


def test_json_rule_info_describes_resolved_rules(run_source):
    document = json.loads(
        report_mod.render_json(
            _sample_findings(run_source), rules=["REP001", "REP201"]
        )
    )
    info = document["rule_info"]
    assert [entry["id"] for entry in info] == ["REP001", "REP201"]
    for entry in info:
        assert list(entry) == ["id", "severity", "kind", "description"]
        assert entry["severity"] in ("error", "warning")
        assert entry["description"]
    kinds = {entry["id"]: entry["kind"] for entry in info}
    assert kinds["REP001"] == "per-file"
    assert kinds["REP201"] == "whole-program"


def test_json_header_carries_resolved_rule_set(run_source):
    rendered = report_mod.render_json(
        _sample_findings(run_source), rules=["REP002", "REP001"]
    )
    document = json.loads(rendered)
    assert document["rules"] == ["REP001", "REP002"]
    # without an explicit rule set the header stays present but empty
    bare = json.loads(report_mod.render_json(_sample_findings(run_source)))
    assert bare["rules"] == []


def test_json_finding_keys_and_types(run_source):
    document = json.loads(report_mod.render_json(_sample_findings(run_source)))
    assert document["findings"], "sample should produce findings"
    for entry in document["findings"]:
        assert list(entry) == [
            "rule", "severity", "path", "line", "col", "message", "baselined",
        ]
        assert isinstance(entry["line"], int)
        assert isinstance(entry["col"], int)
        assert entry["severity"] in ("error", "warning")
        assert isinstance(entry["baselined"], bool)


def test_json_findings_sorted_by_location(run_source):
    document = json.loads(report_mod.render_json(_sample_findings(run_source)))
    keys = [
        (e["path"], e["line"], e["col"], e["rule"])
        for e in document["findings"]
    ]
    assert keys == sorted(keys)


def test_json_output_is_deterministic(run_source):
    first = report_mod.render_json(_sample_findings(run_source))
    second = report_mod.render_json(_sample_findings(run_source))
    assert first == second


def test_text_format_has_location_prefix_and_summary(run_source):
    text = report_mod.render_text(_sample_findings(run_source))
    lines = text.splitlines()
    assert any(line.startswith("src/repro/demo.py:") for line in lines)
    assert lines[-1].endswith("baselined")
    assert "error(s)" in lines[-1]


def test_summary_counts_split_new_and_baselined(run_source):
    findings = _sample_findings(run_source)
    marked = [f.with_baselined() for f in findings[:1]] + list(findings[1:])
    summary = report_mod.summarize(marked)
    assert summary["total"] == len(findings)
    assert summary["baselined"] == 1
    assert summary["new"] == len(findings) - 1
