"""The flow-sensitive whole-program rules REP101–REP104.

Each scenario builds a small in-memory project and runs both passes
through :meth:`Analyzer.check_project_sources`, so the tests exercise
the same summary -> model -> rule path as a real lint run.
"""

import textwrap

from repro.analysis import AnalysisConfig, Analyzer, default_rules


def _lint(files):
    analyzer = Analyzer(AnalysisConfig(), default_rules())
    return analyzer.check_project_sources(
        {path: textwrap.dedent(code) for path, code in files.items()}
    )


def _ids(findings, rule_id):
    return [f for f in findings if f.rule_id == rule_id]


# -- REP101: clock-purity propagation -----------------------------------


def test_rep101_flags_laundered_wall_clock():
    findings = _lint({
        "src/repro/util.py": (
            "import time\n\n\n"
            "def _stamp():\n"
            '    """Doc."""\n'
            "    return time.time()  # repro: noqa[REP001] test fixture\n"
        ),
        "src/repro/core/flow.py": (
            '"""Doc."""\n'
            "from repro.util import _stamp\n\n\n"
            "def run(records):\n"
            '    """Doc."""\n'
            "    return _stamp(), records\n"
        ),
    })
    hits = _ids(findings, "REP101")
    assert len(hits) == 1
    hit = hits[0]
    assert hit.path == "src/repro/core/flow.py"
    assert "run()" in hit.message
    # the witness chain names every hop to the sink
    assert "_stamp" in hit.message and "time.time" in hit.message


def test_rep101_skips_direct_readers_and_clock_module():
    findings = _lint({
        # a direct reader is REP001's finding, not REP101's
        "src/repro/direct.py": (
            "import time\n\n\n"
            "def now():\n"
            '    """Doc."""\n'
            "    return time.time()  # repro: noqa[REP001] test fixture\n"
        ),
        # flows through repro.clock are the sanctioned path
        "src/repro/core/timed.py": (
            '"""Doc."""\n'
            "from repro.clock import SimClock\n\n\n"
            "def run(clock):\n"
            '    """Doc."""\n'
            "    return clock.now()\n"
        ),
    })
    assert _ids(findings, "REP101") == []


def test_rep101_private_entry_points_not_flagged():
    findings = _lint({
        "src/repro/util.py": (
            "import time\n\n\n"
            "def _stamp():\n"
            '    """Doc."""\n'
            "    return time.time()  # repro: noqa[REP001] test fixture\n"
        ),
        "src/repro/core/flow.py": (
            '"""Doc."""\n'
            "from repro.util import _stamp\n\n\n"
            "def _run(records):\n"
            '    """Doc."""\n'
            "    return _stamp(), records\n"
        ),
    })
    assert _ids(findings, "REP101") == []


# -- REP102: seed provenance --------------------------------------------


def test_rep102_flags_module_global_rng_stash():
    findings = _lint({
        "src/repro/core/streams.py": (
            '"""Doc."""\n'
            "from repro import rand\n\n"
            "RNG = rand.make_rng(7)\n"
        ),
    })
    hits = _ids(findings, "REP102")
    assert any("module-global RNG stash" in f.message for f in hits)


def test_rep102_flags_literal_and_constant_derived_seeds():
    findings = _lint({
        "src/repro/core/streams.py": (
            '"""Doc."""\n'
            "from repro import rand\n\n"
            "SEED = 13\n\n\n"
            "def draw():\n"
            '    """Doc."""\n'
            "    a = rand.make_rng(42)\n"
            "    b = rand.make_rng(SEED)\n"
            "    return a, b\n"
        ),
    })
    messages = [f.message for f in _ids(findings, "REP102")]
    assert any("literal constant" in m for m in messages)
    assert any("module constant 'SEED'" in m for m in messages)


def test_rep102_parameter_threaded_seed_is_clean():
    findings = _lint({
        "src/repro/core/streams.py": (
            '"""Doc."""\n'
            "from repro import rand\n\n\n"
            "def draw(seed):\n"
            '    """Doc."""\n'
            "    return rand.make_rng(seed)\n"
        ),
    })
    assert _ids(findings, "REP102") == []


def test_rep102_factory_children_are_clean():
    findings = _lint({
        "src/repro/core/streams.py": (
            '"""Doc."""\n'
            "from repro.rand import SeedSequenceFactory\n\n\n"
            "def draw(factory):\n"
            '    """Doc."""\n'
            "    return factory.rng('queries')\n"
        ),
    })
    assert _ids(findings, "REP102") == []


# -- REP103: dynamic-import layering ------------------------------------


def test_rep103_flags_dynamic_upward_import():
    findings = _lint({
        "src/repro/dns/loader.py": (
            '"""Doc."""\n'
            "import importlib\n\n\n"
            "def load():\n"
            '    """Doc."""\n'
            "    return importlib.import_module('repro.core.pipeline')\n"
        ),
    })
    hits = _ids(findings, "REP103")
    assert len(hits) == 1
    assert "repro.core.pipeline" in hits[0].message


def test_rep103_flags_forwarded_dynamic_import():
    # the evasion: a helper takes the module name as a parameter
    findings = _lint({
        "src/repro/dns/loader.py": (
            '"""Doc."""\n'
            "import importlib\n\n\n"
            "def _load(name):\n"
            '    """Doc."""\n'
            "    return importlib.import_module(name)\n\n\n"
            "def boot():\n"
            '    """Doc."""\n'
            "    return _load('repro.cli')\n"
        ),
    })
    hits = _ids(findings, "REP103")
    assert any("repro.cli" in f.message for f in hits)


def test_rep103_flags_positional_only_forwarder():
    # regression: posonly params were appended *after* regular ones,
    # so 'name' was not seen as the first positional and the forwarded
    # upward import slipped through
    findings = _lint({
        "src/repro/dns/loader.py": (
            '"""Doc."""\n'
            "import importlib\n\n\n"
            "def _load(name, /, pkg=None):\n"
            '    """Doc."""\n'
            "    return importlib.import_module(name)\n\n\n"
            "def boot():\n"
            '    """Doc."""\n'
            "    return _load('repro.cli')\n"
        ),
    })
    hits = _ids(findings, "REP103")
    assert any("repro.cli" in f.message for f in hits)


def test_rep103_second_positional_flow_is_not_a_forwarder():
    # regression: with posonly misordered, 'name' (truly the *second*
    # positional) looked first, so boot's literal — which binds to
    # 'pkg', not 'name' — was misread as the import target
    findings = _lint({
        "src/repro/dns/loader.py": (
            '"""Doc."""\n'
            "import importlib\n\n\n"
            "def _load(pkg, /, name):\n"
            '    """Doc."""\n'
            "    return importlib.import_module(name)  # repro: noqa[REP103] fixture\n\n\n"
            "def boot():\n"
            '    """Doc."""\n'
            "    return _load('repro.core.study', 'x')\n"
        ),
    })
    assert _ids(findings, "REP103") == []


def test_rep103_flags_unverifiable_target():
    findings = _lint({
        "src/repro/dns/loader.py": (
            '"""Doc."""\n'
            "import importlib\n\n\n"
            "def load(name):\n"
            '    """Doc."""\n'
            "    return importlib.import_module(name)\n"
        ),
    })
    hits = _ids(findings, "REP103")
    assert any("cannot be verified statically" in f.message for f in hits)


def test_rep103_downward_dynamic_import_is_clean():
    findings = _lint({
        "src/repro/core/loader.py": (
            '"""Doc."""\n'
            "import importlib\n\n\n"
            "def load():\n"
            '    """Doc."""\n'
            "    return importlib.import_module('repro.dns.cache')\n"
        ),
    })
    assert _ids(findings, "REP103") == []


# -- REP104: dead public API --------------------------------------------


def test_rep104_flags_unreferenced_export():
    findings = _lint({
        "src/repro/pkg/__init__.py": (
            '"""Doc."""\n'
            '__all__ = ["used", "dead"]\n\n\n'
            "def used() -> int:\n"
            "    return 1\n\n\n"
            "def dead() -> int:\n"
            "    return 2\n"
        ),
        "tests/test_pkg.py": (
            "from repro.pkg import used\n\n"
            "used()\n"
        ),
    })
    hits = _ids(findings, "REP104")
    assert len(hits) == 1
    assert "'dead'" in hits[0].message
    assert hits[0].severity.value == "warning"


def test_rep104_reexport_alone_does_not_count_as_use():
    # pkg/__init__ re-exporting a name is plumbing, not a consumer
    findings = _lint({
        "src/repro/pkg/__init__.py": (
            '"""Doc."""\n'
            "from repro.pkg.impl import thing\n\n"
            '__all__ = ["thing"]\n'
        ),
        "src/repro/pkg/impl.py": (
            '"""Doc."""\n\n\n'
            "def thing() -> int:\n"
            "    return 1\n"
        ),
    })
    hits = _ids(findings, "REP104")
    assert len(hits) == 1
    assert "'thing'" in hits[0].message


def test_rep104_noqa_on_all_line_suppresses():
    findings = _lint({
        "src/repro/pkg/__init__.py": (
            '"""Doc."""\n'
            '__all__ = ["dead"]  # repro: noqa[REP104] annotation type\n\n\n'
            "def dead() -> int:\n"
            "    return 1\n"
        ),
    })
    assert _ids(findings, "REP104") == []


def test_program_findings_report_once_per_location():
    # running the same project twice yields identical findings
    files = {
        "src/repro/pkg/__init__.py": (
            '"""Doc."""\n'
            '__all__ = ["dead"]\n\n\n'
            "def dead() -> int:\n"
            "    return 1\n"
        ),
    }
    first = [f.to_json() for f in _lint(files)]
    second = [f.to_json() for f in _lint(files)]
    assert first == second
