"""The linter is self-hosting: the shipped tree must be clean against
the committed baseline, and an injected determinism violation must be
caught.  This is the tier-1 gate for every REP invariant."""

from pathlib import Path

from repro.analysis import Analyzer, default_rules, load_config
from repro.analysis import baseline as baseline_mod
from repro.analysis.findings import Severity

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_repo_lint():
    config = load_config(REPO_ROOT)
    analyzer = Analyzer(config, default_rules())
    findings = analyzer.run(
        REPO_ROOT, [REPO_ROOT / p for p in config.paths]
    )
    baseline = baseline_mod.load_baseline(REPO_ROOT / config.baseline_path)
    return baseline_mod.apply_baseline(findings, baseline)


def test_source_tree_is_clean_against_baseline():
    new, _ = _run_repo_lint()
    failing = [f for f in new if f.severity is Severity.ERROR]
    assert failing == [], "new lint errors:\n" + "\n".join(
        f.render() for f in failing
    )


def test_baseline_is_empty():
    # Satellite goal: ship with no accepted debt.  If a future change
    # legitimately needs baseline entries, relax this to a small cap.
    baseline = baseline_mod.load_baseline(
        REPO_ROOT / load_config(REPO_ROOT).baseline_path
    )
    assert sum(baseline.values()) == 0


def test_injected_wall_clock_violation_is_caught():
    config = load_config(REPO_ROOT)
    analyzer = Analyzer(config, default_rules())
    reports = REPO_ROOT / "src/repro/core/reports.py"
    poisoned = reports.read_text(encoding="utf-8") + (
        "\n\nimport datetime\n\n"
        "def _stamp():\n"
        "    return datetime.datetime.now()\n"
    )
    findings = analyzer.check_source(poisoned, "src/repro/core/reports.py")
    assert any(f.rule_id == "REP001" for f in findings)


def test_injected_unseeded_randomness_is_caught():
    config = load_config(REPO_ROOT)
    analyzer = Analyzer(config, default_rules())
    poisoned = (
        "import numpy as np\n\n"
        "def jitter():\n"
        "    '''doc'''\n"
        "    return np.random.default_rng().random()\n"
    )
    findings = analyzer.check_source(poisoned, "src/repro/workloads/x.py")
    assert any(f.rule_id == "REP002" for f in findings)


def test_every_builtin_rule_is_registered():
    ids = {rule.rule_id for rule in default_rules()}
    assert {f"REP00{n}" for n in range(1, 9)} <= ids
    assert {f"REP10{n}" for n in range(1, 5)} <= ids
    assert {f"REP20{n}" for n in range(1, 5)} <= ids


def test_whole_program_pass_runs_in_default_lint():
    # the self-hosting run must include the REP10x pass: the analyzer
    # instance carries project rules and they execute without findings
    config = load_config(REPO_ROOT)
    analyzer = Analyzer(config, default_rules())
    assert analyzer.project_rules, "REP10x rules missing from default set"
    new, _ = _run_repo_lint()
    program = [f for f in new if f.rule_id.startswith("REP10")]
    assert program == [], "whole-program findings:\n" + "\n".join(
        f.render() for f in program
    )


def test_injected_laundered_clock_read_is_caught_whole_program():
    # REP101: the wall-clock read hides behind a helper in another
    # module, invisible to any per-file rule
    config = load_config(REPO_ROOT)
    analyzer = Analyzer(config, default_rules())
    findings = analyzer.check_project_sources({
        "src/repro/core/hidden.py": (
            '"""Doc."""\n'
            "import time\n\n\n"
            "def _stamp():\n"
            '    """Doc."""\n'
            "    return time.time()  # repro: noqa[REP001] injected\n"
        ),
        "src/repro/core/entry.py": (
            '"""Doc."""\n'
            "from repro.core.hidden import _stamp\n\n\n"
            "def summarize(records):\n"
            '    """Doc."""\n'
            "    return _stamp(), records\n"
        ),
    })
    assert any(f.rule_id == "REP101" for f in findings)
