"""Suppression-comment semantics."""

from repro.analysis import META_RULE_ID
from tests.analysis.conftest import rule_ids


def test_bare_noqa_suppresses_every_rule(run_source):
    findings = run_source(
        "import random  # repro: noqa\n"
    )
    assert findings == []


def test_noqa_only_covers_its_own_line(run_source):
    findings = run_source(
        """
        import random  # repro: noqa[REP002]
        import random
        """
    )
    assert rule_ids(findings) == ["REP002"]


def test_noqa_with_multiple_ids(run_source):
    findings = run_source(
        """
        def f(x=[]):  # repro: noqa[REP006, REP008]
            return x
        """
    )
    assert findings == []


def test_unknown_rule_id_is_itself_reported(run_source):
    findings = run_source(
        "import random  # repro: noqa[REP002, REP999]\n"
    )
    ids = rule_ids(findings)
    assert META_RULE_ID in ids
    meta = [f for f in findings if f.rule_id == META_RULE_ID]
    assert "REP999" in meta[0].message
    # the valid id in the same comment still suppresses its rule
    assert "REP002" not in ids


def test_unknown_rule_id_finding_is_an_error(run_source):
    findings = run_source("x = 1  # repro: noqa[NOPE]\n")
    meta = [f for f in findings if f.rule_id == META_RULE_ID]
    assert meta and meta[0].severity.value == "error"


def test_noqa_inside_string_literal_is_not_a_suppression(run_source):
    findings = run_source(
        """
        TEXT = "import random  # repro: noqa[REP002]"
        import random
        """
    )
    assert "REP002" in rule_ids(findings)


def test_rule_ids_are_case_insensitive(run_source):
    findings = run_source(
        "import random  # repro: noqa[rep002]\n"
    )
    assert "REP002" not in rule_ids(findings)


def test_trailing_prose_after_bracket_keeps_ids_targeted(run_source):
    # A justification comment after the closing bracket must neither
    # break the suppression nor widen it to other rules firing on the
    # same line (REP006 and REP008 both anchor on the def line).
    findings = run_source(
        """
        def f(x=[]):  # repro: noqa[REP006]  # shared sentinel default
            return x
        """
    )
    ids = rule_ids(findings)
    assert "REP006" not in ids
    assert "REP008" in ids


def test_whitespace_before_bracket_still_parses_ids(run_source):
    # `noqa [REP006]` must behave exactly like `noqa[REP006]` — before
    # the fix the bracket went unparsed and the comment silently
    # suppressed *every* rule on the line.
    findings = run_source(
        """
        def f(x=[]):  # repro: noqa [REP006]
            return x
        """
    )
    ids = rule_ids(findings)
    assert "REP006" not in ids
    assert "REP008" in ids


def test_empty_brackets_suppress_nothing(run_source):
    findings = run_source(
        "import random  # repro: noqa[]\n"
    )
    assert "REP002" in rule_ids(findings)


def test_noqa_keyword_is_case_insensitive(run_source):
    findings = run_source(
        "import random  # REPRO: NOQA[REP002]\n"
    )
    assert "REP002" not in rule_ids(findings)


def test_syntax_error_reported_as_meta_finding(run_source):
    findings = run_source("def broken(:\n")
    assert rule_ids(findings) == [META_RULE_ID]
    assert "syntax error" in findings[0].message
