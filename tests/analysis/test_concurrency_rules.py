"""The concurrency-safety rules REP301–REP305.

Each scenario builds a small in-memory project and runs all four
passes through :meth:`Analyzer.check_project_sources`, exactly as a
real lint run would: per-file summaries carry the lock/resource
facts, the project model resolves spawn reachability, and the REP30x
rules judge the result.
"""

import textwrap

from repro.analysis import AnalysisConfig, Analyzer, default_rules


def _lint(files, roots=(), lock_attributes=None):
    config = AnalysisConfig()
    config.concurrency_roots = list(roots)
    if lock_attributes is not None:
        config.lock_attributes = list(lock_attributes)
    analyzer = Analyzer(config, default_rules())
    return analyzer.check_project_sources(
        {path: textwrap.dedent(code) for path, code in files.items()}
    )


def _ids(findings, rule_id):
    return [f for f in findings if f.rule_id == rule_id]


# -- REP301: inconsistent lockset ---------------------------------------

_STORE_HEADER = (
    '"""Doc."""\n'
    "import threading\n\n\n"
    "class Store:\n"
    '    """Doc."""\n\n'
    "    def __init__(self):\n"
    '        """Doc."""\n'
    "        self._lock = threading.Lock()\n"
    "        self._cache = {}\n\n"
)


def test_rep301_flags_unguarded_write_to_guarded_field():
    findings = _lint(
        {
            "src/repro/core/store.py": (
                _STORE_HEADER
                + "    def fill(self, key, value):\n"
                + '        """Doc."""\n'
                + "        with self._lock:\n"
                + "            self._cache[key] = value\n\n"
                + "    def evict(self):\n"
                + '        """Doc."""\n'
                + "        self._cache = {}\n"
            ),
        },
        roots=["repro.core.store"],
    )
    hits = _ids(findings, "REP301")
    assert len(hits) == 1
    assert "evict()" in hits[0].message
    assert "_cache" in hits[0].message
    assert "spawn-reachable" in hits[0].message


def test_rep301_quiet_when_every_write_is_guarded():
    findings = _lint(
        {
            "src/repro/core/store.py": (
                _STORE_HEADER
                + "    def fill(self, key, value):\n"
                + '        """Doc."""\n'
                + "        with self._lock:\n"
                + "            self._cache[key] = value\n\n"
                + "    def evict(self):\n"
                + '        """Doc."""\n'
                + "        with self._lock:\n"
                + "            self._cache = {}\n"
            ),
        },
        roots=["repro.core.store"],
    )
    assert _ids(findings, "REP301") == []


def test_rep301_quiet_without_spawn_reachability():
    # Same inconsistent lockset, but nothing ever runs concurrently:
    # no spawn sites and no concurrency-roots entry.
    findings = _lint({
        "src/repro/core/store.py": (
            _STORE_HEADER
            + "    def fill(self, key, value):\n"
            + '        """Doc."""\n'
            + "        with self._lock:\n"
            + "            self._cache[key] = value\n\n"
            + "    def evict(self):\n"
            + '        """Doc."""\n'
            + "        self._cache = {}\n"
        ),
    })
    assert _ids(findings, "REP301") == []


def test_rep301_exempts_constructors_and_never_guarded_fields():
    findings = _lint(
        {
            "src/repro/core/store.py": (
                _STORE_HEADER
                # _rows is never written under the lock anywhere, so no
                # lockset inconsistency exists; __init__ writes are
                # always pre-publication.
                + "    def add(self, row):\n"
                + '        """Doc."""\n'
                + "        self._rows = [row]\n"
            ),
        },
        roots=["repro.core.store"],
    )
    assert _ids(findings, "REP301") == []


def test_rep301_flags_thread_spawned_global_write():
    findings = _lint({
        "src/repro/core/shard.py": (
            '"""Doc."""\n'
            "import threading\n\n"
            "_LOCK = threading.Lock()\n"
            "_CACHE = {}\n\n\n"
            "def _fill(key, value):\n"
            '    """Doc."""\n'
            "    global _CACHE\n"
            "    with _LOCK:\n"
            "        _CACHE = {key: value}\n\n\n"
            "def _evict():\n"
            '    """Doc."""\n'
            "    global _CACHE\n"
            "    _CACHE = {}\n\n\n"
            "def run():\n"
            '    """Doc."""\n'
            "    worker = threading.Thread(target=_evict)\n"
            "    worker.start()\n"
        ),
    })
    hits = _ids(findings, "REP301")
    assert len(hits) == 1
    assert "_evict()" in hits[0].message
    assert "_CACHE" in hits[0].message


# -- REP302: lock-ordering cycles ---------------------------------------

_TWO_LOCKS = (
    '"""Doc."""\n'
    "import threading\n\n"
    "_A = threading.Lock()\n"
    "_B = threading.Lock()\n\n\n"
)


def test_rep302_flags_opposite_nested_order():
    findings = _lint({
        "src/repro/core/locks.py": (
            _TWO_LOCKS
            + "def push():\n"
            + '    """Doc."""\n'
            + "    with _A:\n"
            + "        with _B:\n"
            + "            pass\n\n\n"
            + "def drain():\n"
            + '    """Doc."""\n'
            + "    with _B:\n"
            + "        with _A:\n"
            + "            pass\n"
        ),
    })
    hits = _ids(findings, "REP302")
    assert len(hits) == 1
    assert "lock ordering cycle" in hits[0].message
    assert "_A -> _B -> _A" in hits[0].message
    # witnesses name both acquisition sites
    assert hits[0].message.count("src/repro/core/locks.py") == 2


def test_rep302_flags_cycle_through_a_call_under_lock():
    findings = _lint({
        "src/repro/core/locks.py": (
            _TWO_LOCKS
            + "def inner():\n"
            + '    """Doc."""\n'
            + "    with _B:\n"
            + "        pass\n\n\n"
            + "def push():\n"
            + '    """Doc."""\n'
            + "    with _A:\n"
            + "        inner()\n\n\n"
            + "def drain():\n"
            + '    """Doc."""\n'
            + "    with _B:\n"
            + "        with _A:\n"
            + "            pass\n"
        ),
    })
    hits = _ids(findings, "REP302")
    assert len(hits) == 1
    assert "_A -> _B -> _A" in hits[0].message


def test_rep302_quiet_for_consistent_order():
    findings = _lint({
        "src/repro/core/locks.py": (
            _TWO_LOCKS
            + "def push():\n"
            + '    """Doc."""\n'
            + "    with _A:\n"
            + "        with _B:\n"
            + "            pass\n\n\n"
            + "def drain():\n"
            + '    """Doc."""\n'
            + "    with _A:\n"
            + "        with _B:\n"
            + "            pass\n"
        ),
    })
    assert _ids(findings, "REP302") == []


# -- REP303: resource lifecycle -----------------------------------------


def test_rep303_flags_happy_path_close():
    findings = _lint({
        "src/repro/core/files.py": (
            '"""Doc."""\n'
            "import zlib\n\n\n"
            "def checksum(path):\n"
            '    """Doc."""\n'
            '    handle = open(path, "rb")\n'
            "    value = zlib.crc32(handle.read())\n"
            "    handle.close()\n"
            "    return value\n"
        ),
    })
    hits = _ids(findings, "REP303")
    assert len(hits) == 1
    assert "closed only on the happy path" in hits[0].message


def test_rep303_flags_never_closed_handle():
    findings = _lint({
        "src/repro/core/files.py": (
            '"""Doc."""\n'
            "import zlib\n\n\n"
            "def leak(path):\n"
            '    """Doc."""\n'
            '    handle = open(path, "rb")\n'
            "    return zlib.crc32(handle.read())\n"
        ),
    })
    hits = _ids(findings, "REP303")
    assert len(hits) == 1
    assert "never closed on any path" in hits[0].message


def test_rep303_accepts_with_finally_and_ownership_transfer():
    findings = _lint({
        "src/repro/core/files.py": (
            '"""Doc."""\n'
            "import zlib\n\n\n"
            "def good_with(path):\n"
            '    """Doc."""\n'
            '    with open(path, "rb") as handle:\n'
            "        return zlib.crc32(handle.read())\n\n\n"
            "def good_finally(path):\n"
            '    """Doc."""\n'
            '    handle = open(path, "rb")\n'
            "    try:\n"
            "        return zlib.crc32(handle.read())\n"
            "    finally:\n"
            "        handle.close()\n\n\n"
            "def good_transfer(path):\n"
            '    """Doc."""\n'
            '    return open(path, "rb")\n'
        ),
    })
    assert _ids(findings, "REP303") == []


def test_rep303_flags_mmap_mode_np_load():
    findings = _lint({
        "src/repro/core/segments.py": (
            '"""Doc."""\n'
            "import numpy as np\n\n\n"
            "def shape_of(path):\n"
            '    """Doc."""\n'
            '    stacked = np.load(path, mmap_mode="r")\n'
            "    return stacked.shape\n"
        ),
    })
    hits = _ids(findings, "REP303")
    assert len(hits) == 1
    assert "np.load" in hits[0].message


def test_rep303_ignores_plain_np_load():
    # Without mmap_mode there is no OS handle to leak after return.
    findings = _lint({
        "src/repro/core/segments.py": (
            '"""Doc."""\n'
            "import numpy as np\n\n\n"
            "def rows(path):\n"
            '    """Doc."""\n'
            "    return np.load(path)\n"
        ),
    })
    assert _ids(findings, "REP303") == []


# -- REP304: blocking call under lock -----------------------------------

_JOURNAL_HEADER = (
    '"""Doc."""\n'
    "import os\n"
    "import threading\n\n\n"
    "class Journal:\n"
    '    """Doc."""\n\n'
    "    def __init__(self, path):\n"
    '        """Doc."""\n'
    "        self._lock = threading.Lock()\n"
    "        self._path = path\n"
    "        self._generation = 0\n\n"
)


def test_rep304_flags_replace_under_lock():
    findings = _lint({
        "src/repro/core/journal.py": (
            _JOURNAL_HEADER
            + "    def commit(self, tmp):\n"
            + '        """Doc."""\n'
            + "        with self._lock:\n"
            + "            os.replace(tmp, self._path)\n"
            + "            self._generation += 1\n"
        ),
    })
    hits = _ids(findings, "REP304")
    assert len(hits) == 1
    assert "os.replace" in hits[0].message
    assert "self._lock" in hits[0].message


def test_rep304_flags_open_under_lock():
    findings = _lint({
        "src/repro/core/journal.py": (
            _JOURNAL_HEADER
            + "    def snapshot(self):\n"
            + '        """Doc."""\n'
            + "        with self._lock:\n"
            + '            with open(self._path, "rb") as handle:\n'
            + "                return handle.read()\n"
        ),
    })
    hits = _ids(findings, "REP304")
    assert len(hits) == 1
    assert "opens a file" in hits[0].message


def test_rep304_flags_blocking_reached_through_project_call():
    findings = _lint({
        "src/repro/core/journal.py": (
            _JOURNAL_HEADER
            + "    def commit(self, tmp):\n"
            + '        """Doc."""\n'
            + "        with self._lock:\n"
            + "            swap(tmp, self._path)\n\n\n"
            + "def swap(tmp, path):\n"
            + '    """Doc."""\n'
            + "    os.replace(tmp, path)\n"
        ),
    })
    hits = _ids(findings, "REP304")
    assert len(hits) == 1
    assert "swap" in hits[0].message


def test_rep304_accepts_io_outside_the_critical_section():
    findings = _lint({
        "src/repro/core/journal.py": (
            _JOURNAL_HEADER
            + "    def commit(self, tmp):\n"
            + '        """Doc."""\n'
            + "        os.replace(tmp, self._path)\n"
            + "        with self._lock:\n"
            + "            self._generation += 1\n"
        ),
    })
    assert _ids(findings, "REP304") == []


def test_rep304_ignores_unrecognized_guards():
    # A with-context that is not a known lock (a file, a suppressor)
    # imposes no blocking-IO discipline on its body.
    findings = _lint({
        "src/repro/core/journal.py": (
            '"""Doc."""\n'
            "import os\n\n\n"
            "def rotate(tmp, path):\n"
            '    """Doc."""\n'
            '    with open(tmp, "rb") as handle:\n'
            "        os.replace(tmp, path)\n"
            "        return handle\n"
        ),
    })
    assert _ids(findings, "REP304") == []


# -- REP305: unsynchronized lazy init -----------------------------------

_LAZY_HEADER = (
    '"""Doc."""\n'
    "import threading\n\n\n"
    "class Store:\n"
    '    """Doc."""\n\n'
    "    def __init__(self):\n"
    '        """Doc."""\n'
    "        self._lock = threading.Lock()\n"
    "        self._index = None\n\n"
)


def test_rep305_flags_unguarded_check_then_fill():
    findings = _lint(
        {
            "src/repro/core/store.py": (
                _LAZY_HEADER
                + "    def index(self):\n"
                + '        """Doc."""\n'
                + "        if self._index is None:\n"
                + "            self._index = object()\n"
                + "        return self._index\n"
            ),
        },
        roots=["repro.core.store"],
    )
    hits = _ids(findings, "REP305")
    assert len(hits) == 1
    assert "index()" in hits[0].message
    assert "_index" in hits[0].message


def test_rep305_accepts_fill_under_lock():
    findings = _lint(
        {
            "src/repro/core/store.py": (
                _LAZY_HEADER
                + "    def index(self):\n"
                + '        """Doc."""\n'
                + "        with self._lock:\n"
                + "            if self._index is None:\n"
                + "                self._index = object()\n"
                + "            return self._index\n"
            ),
        },
        roots=["repro.core.store"],
    )
    assert _ids(findings, "REP305") == []


def test_rep305_quiet_without_spawn_reachability():
    findings = _lint({
        "src/repro/core/store.py": (
            _LAZY_HEADER
            + "    def index(self):\n"
            + '        """Doc."""\n'
            + "        if self._index is None:\n"
            + "            self._index = object()\n"
            + "        return self._index\n"
        ),
    })
    assert _ids(findings, "REP305") == []


def test_rep305_noqa_suppresses_with_justification():
    findings = _lint(
        {
            "src/repro/core/store.py": (
                _LAZY_HEADER
                + "    def index(self):\n"
                + '        """Doc."""\n'
                + "        if self._index is None:  # repro: noqa[REP305]  # built before threads start\n"
                + "            self._index = object()  # repro: noqa[REP301]\n"
                + "        return self._index\n"
            ),
        },
        roots=["repro.core.store"],
    )
    assert _ids(findings, "REP305") == []
    assert _ids(findings, "REP301") == []
