"""Baseline workflow: accepted findings warn, new findings fail, and
line-number churn does not invalidate the baseline."""

from repro.analysis import baseline as baseline_mod
from repro.analysis.findings import Finding, Severity


def _finding(rule="REP003", path="src/repro/x.py", line=10, message="m"):
    return Finding(
        rule_id=rule,
        severity=Severity.ERROR,
        path=path,
        line=line,
        col=1,
        message=message,
    )


def test_save_and_load_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    baseline_mod.save_baseline(path, [_finding(), _finding(line=99)])
    counts = baseline_mod.load_baseline(path)
    assert counts[_finding().fingerprint()] == 2


def test_missing_baseline_is_empty(tmp_path):
    assert baseline_mod.load_baseline(tmp_path / "absent.json") == {}


def test_apply_baseline_splits_new_from_known(tmp_path):
    path = tmp_path / "baseline.json"
    known = _finding(message="accepted debt")
    baseline_mod.save_baseline(path, [known])
    fresh = _finding(message="regression")
    new, baselined = baseline_mod.apply_baseline(
        [known, fresh], baseline_mod.load_baseline(path)
    )
    assert [f.message for f in new] == ["regression"]
    assert [f.message for f in baselined] == ["accepted debt"]
    assert all(f.baselined for f in baselined)


def test_baseline_match_ignores_line_numbers(tmp_path):
    path = tmp_path / "baseline.json"
    baseline_mod.save_baseline(path, [_finding(line=10)])
    moved = _finding(line=400)
    new, baselined = baseline_mod.apply_baseline(
        [moved], baseline_mod.load_baseline(path)
    )
    assert new == [] and len(baselined) == 1


def test_baseline_counts_are_a_budget(tmp_path):
    path = tmp_path / "baseline.json"
    baseline_mod.save_baseline(path, [_finding()])
    duplicated = [_finding(line=10), _finding(line=20)]
    new, baselined = baseline_mod.apply_baseline(
        duplicated, baseline_mod.load_baseline(path)
    )
    assert len(baselined) == 1 and len(new) == 1


def test_update_baseline_prunes_retired_rules(tmp_path):
    path = tmp_path / "baseline.json"
    baseline_mod.save_baseline(
        path,
        [
            _finding(rule="REP003", message="live debt"),
            _finding(rule="REP099", message="from a retired rule"),
            _finding(rule="REP099", line=20, message="from a retired rule"),
        ],
    )
    current = [_finding(rule="REP003", message="live debt")]
    pruned = baseline_mod.update_baseline(path, current, ["REP003"])
    # both REP099 entries counted (with multiplicity), REP003 kept
    assert pruned == 2
    reloaded = baseline_mod.load_baseline(path)
    assert list(reloaded) == ["REP003::src/repro/x.py::live debt"]


def test_update_baseline_does_not_count_fixed_findings_as_pruned(tmp_path):
    path = tmp_path / "baseline.json"
    baseline_mod.save_baseline(
        path,
        [
            _finding(message="fixed since"),
            _finding(message="still here"),
        ],
    )
    pruned = baseline_mod.update_baseline(
        path, [_finding(message="still here")], ["REP003"]
    )
    assert pruned == 0
    assert list(baseline_mod.load_baseline(path)) == [
        "REP003::src/repro/x.py::still here"
    ]


def test_update_baseline_bootstraps_missing_file(tmp_path):
    path = tmp_path / "baseline.json"
    pruned = baseline_mod.update_baseline(path, [_finding()], ["REP003"])
    assert pruned == 0 and path.is_file()


def test_save_baseline_leaves_no_tmp_file(tmp_path):
    path = tmp_path / "baseline.json"
    baseline_mod.save_baseline(path, [_finding()])
    assert [p.name for p in tmp_path.iterdir()] == ["baseline.json"]
