"""Hypothesis property tests for the seeded randomness substrate.

The linter (REP002) forces every stream through :mod:`repro.rand`;
these properties are what that funnel buys: stable, label-addressed,
order-independent, bounded, decorrelated child seeds.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.rand import SeedSequenceFactory, derive_seed, make_rng

seeds = st.integers(min_value=-(2**63), max_value=2**63 - 1)
labels = st.text(max_size=64)


@settings(deadline=None)
@given(seed=seeds, label=labels)
def test_derive_seed_is_stable_across_calls(seed, label):
    assert derive_seed(seed, label) == derive_seed(seed, label)


@settings(deadline=None)
@given(seed=seeds, label=labels)
def test_derive_seed_is_63_bit_bounded(seed, label):
    child = derive_seed(seed, label)
    assert 0 <= child < 2**63


@settings(deadline=None)
@given(seed=seeds, a=labels, b=labels)
def test_child_seeds_are_label_order_independent(seed, a, b):
    forward = SeedSequenceFactory(seed)
    first = (forward.child_seed(a), forward.child_seed(b))
    backward = SeedSequenceFactory(seed)
    second_b = backward.child_seed(b)
    second_a = backward.child_seed(a)
    assert first == (second_a, second_b)


@settings(deadline=None)
@given(seed=seeds, a=labels, b=labels)
def test_distinct_labels_are_decorrelated(seed, a, b):
    hypothesis.assume(a != b)
    factory = SeedSequenceFactory(seed)
    # distinct labels get distinct seeds (a 63-bit collision would be
    # a real derivation bug at hypothesis scale, not bad luck) ...
    assert factory.child_seed(a) != factory.child_seed(b)
    # ... and the streams themselves diverge
    draws_a = make_rng(factory.child_seed(a)).integers(0, 2**32, size=8)
    draws_b = make_rng(factory.child_seed(b)).integers(0, 2**32, size=8)
    assert list(draws_a) != list(draws_b)


@settings(deadline=None)
@given(seed=seeds, label=labels)
def test_rng_streams_reproduce_bit_for_bit(seed, label):
    first = SeedSequenceFactory(seed).rng(label).integers(0, 2**32, size=16)
    second = SeedSequenceFactory(seed).rng(label).integers(0, 2**32, size=16)
    assert list(first) == list(second)


@settings(deadline=None)
@given(seed=seeds, outer=labels, inner=labels)
def test_subfactory_nesting_is_stable(seed, outer, inner):
    direct = SeedSequenceFactory(seed).subfactory(outer).child_seed(inner)
    again = SeedSequenceFactory(seed).subfactory(outer).child_seed(inner)
    assert direct == again
    assert direct == derive_seed(derive_seed(seed, outer), inner)


@settings(deadline=None)
@given(seed=seeds, label=labels)
def test_adding_components_does_not_perturb_existing_streams(seed, label):
    """Requesting extra children must not shift an existing stream."""
    lone = SeedSequenceFactory(seed)
    baseline = list(lone.rng(label).integers(0, 2**32, size=8))
    crowded = SeedSequenceFactory(seed)
    for extra in ("trace", "honeypot", "botnet"):
        crowded.rng(extra)
    assert list(crowded.rng(label).integers(0, 2**32, size=8)) == baseline
