"""Tests for the unified squatting detector."""

import pytest

from repro.dns.name import DomainName
from repro.squatting.detector import (
    SquattingDetector,
    SquattingType,
    census_table,
)
from repro.squatting.targets import PopularDomains


@pytest.fixture(scope="module")
def detector():
    return SquattingDetector(PopularDomains.default())


class TestTargets:
    def test_default_targets(self):
        targets = PopularDomains.default()
        assert DomainName("google.com") in targets
        assert DomainName("www.google.com") in targets  # registered-domain match
        assert DomainName("not-a-brand.com") not in targets
        assert len(targets) >= 30

    def test_label_lookup(self):
        targets = PopularDomains.default()
        assert targets.by_label("paypal") == DomainName("paypal.com")
        assert targets.has_label("google")
        assert not targets.has_label("zzzz")
        with pytest.raises(KeyError):
            targets.by_label("zzzz")


class TestClassification:
    def test_typo(self, detector):
        match = detector.classify(DomainName("gogle.com"))
        assert match.squat_type == SquattingType.TYPO
        assert match.target == DomainName("google.com")

    def test_combo(self, detector):
        match = detector.classify(DomainName("paypal-login.com"))
        assert match.squat_type == SquattingType.COMBO

    def test_dot(self, detector):
        match = detector.classify(DomainName("wwwgoogle.com"))
        assert match.squat_type == SquattingType.DOT

    def test_homo_takes_precedence(self, detector):
        # goog1e: '1' for 'l' is both a confusable and near-key; homo wins.
        match = detector.classify(DomainName("goog1e.com"))
        assert match.squat_type == SquattingType.HOMO

    def test_bit(self, detector):
        match = detector.classify(DomainName("eoogle.com"))
        assert match.squat_type == SquattingType.BIT

    def test_brand_itself_is_clean(self, detector):
        assert detector.classify(DomainName("google.com")) is None
        assert not detector.is_squatting(DomainName("google.com"))

    def test_unrelated_is_clean(self, detector):
        assert detector.classify(DomainName("weatherreport.org")) is None

    def test_twitter_suport_from_paper(self, detector):
        """The paper's registered domain twitter-sup0rt.com is a combosquat."""
        match = detector.classify(DomainName("twitter-sup0rt.com"))
        assert match is not None
        assert match.squat_type == SquattingType.COMBO
        assert match.target == DomainName("twitter.com")


class TestCensus:
    def test_census_counts(self, detector):
        candidates = [
            DomainName("gogle.com"),
            DomainName("googel.com"),
            DomainName("paypal-login.com"),
            DomainName("wwwgoogle.com"),
            DomainName("clean-site.org"),
        ]
        counts = detector.census(candidates)
        assert counts[SquattingType.TYPO] == 2
        assert counts[SquattingType.COMBO] == 1
        assert counts[SquattingType.DOT] == 1
        assert sum(counts.values()) == 4

    def test_classify_many_skips_clean(self, detector):
        matches = detector.classify_many(
            [DomainName("clean-site.org"), DomainName("gogle.com")]
        )
        assert len(matches) == 1

    def test_census_table_sorted(self):
        counts = {
            SquattingType.TYPO: 5,
            SquattingType.COMBO: 9,
            SquattingType.DOT: 1,
            SquattingType.BIT: 0,
            SquattingType.HOMO: 0,
        }
        table = census_table(counts)
        assert table[0] == ("combosquatting", 9)
        assert table[1] == ("typosquatting", 5)
