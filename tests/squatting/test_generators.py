"""Tests for the five squatting generators and their predicates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.name import DomainName
from repro.squatting.bit import bitsquat_variants, is_bitsquat
from repro.squatting.combo import COMBO_KEYWORDS, combosquat_variants, is_combosquat
from repro.squatting.dot import dotsquat_variants, is_dotsquat
from repro.squatting.homo import homosquat_variants, is_homosquat
from repro.squatting.typo import typosquat_variants, is_typosquat

GOOGLE = DomainName("google.com")
PAYPAL = DomainName("paypal.com")
MAILRU = DomainName("mail.ru")

brands = st.sampled_from([GOOGLE, PAYPAL, MAILRU, DomainName("facebook.com")])


class TestTypo:
    def test_known_variants(self):
        variants = {str(v) for v in typosquat_variants(GOOGLE)}
        assert "gogle.com" in variants        # omission
        assert "googel.com" in variants       # transposition
        assert "gooogle.com" in variants      # duplication
        assert "googke.com" in variants       # adjacent substitution
        assert "googlre.com" in variants      # adjacent insertion

    def test_predicate_positive(self):
        assert is_typosquat(DomainName("gogle.com"), GOOGLE)
        assert is_typosquat(DomainName("www.gogle.com"), GOOGLE)

    def test_predicate_negative(self):
        assert not is_typosquat(GOOGLE, GOOGLE)
        assert not is_typosquat(DomainName("gogle.net"), GOOGLE)  # TLD differs
        assert not is_typosquat(DomainName("ggle.net"), GOOGLE)
        assert not is_typosquat(DomainName("entirely-other.com"), GOOGLE)

    @given(brands)
    def test_generated_variants_satisfy_predicate(self, target):
        for variant in typosquat_variants(target)[:50]:
            assert is_typosquat(variant, target), variant

    @given(brands)
    def test_target_never_its_own_variant(self, target):
        assert target not in typosquat_variants(target)


class TestCombo:
    def test_known_variants(self):
        variants = {str(v) for v in combosquat_variants(PAYPAL)}
        assert "paypal-login.com" in variants
        assert "login-paypal.com" in variants
        assert "paypallogin.com" in variants
        assert "securepaypal.com" in variants

    def test_predicate_positive(self):
        assert is_combosquat(DomainName("paypal-login.com"), PAYPAL)
        assert is_combosquat(DomainName("paypal-login.net"), PAYPAL)  # TLD moved
        assert is_combosquat(DomainName("verifypaypal.com"), PAYPAL)
        assert is_combosquat(DomainName("paypal-2024-bonus.com"), PAYPAL)

    def test_predicate_negative(self):
        assert not is_combosquat(PAYPAL, PAYPAL)
        assert not is_combosquat(DomainName("paypalooza.com"), PAYPAL)
        assert not is_combosquat(DomainName("mypal.com"), PAYPAL)

    @given(brands)
    def test_generated_variants_satisfy_predicate(self, target):
        for variant in combosquat_variants(target)[:60]:
            assert is_combosquat(variant, target), variant

    def test_keyword_list_is_lowercase_ldh(self):
        for keyword in COMBO_KEYWORDS:
            assert keyword == keyword.lower()
            DomainName(f"{keyword}.com")  # must be a valid label


class TestDot:
    def test_known_variants(self):
        variants = {str(v) for v in dotsquat_variants(GOOGLE)}
        assert "wwwgoogle.com" in variants
        assert "oogle.com" in variants  # split g|oogle
        assert "e.com" in variants      # split googl|e

    def test_predicate_fused_www(self):
        assert is_dotsquat(DomainName("wwwgoogle.com"), GOOGLE)

    def test_predicate_inserted_dot(self):
        assert is_dotsquat(DomainName("goo.gle.com"), GOOGLE)
        assert is_dotsquat(DomainName("g.oogle.com"), GOOGLE)

    def test_predicate_negative(self):
        assert not is_dotsquat(GOOGLE, GOOGLE)
        assert not is_dotsquat(DomainName("www.google.com"), GOOGLE)
        assert not is_dotsquat(DomainName("goo.gle.net"), GOOGLE)
        assert not is_dotsquat(DomainName("xyz.abc.com"), GOOGLE)

    def test_variants_exclude_target(self):
        assert GOOGLE not in dotsquat_variants(GOOGLE)


class TestBit:
    def test_variants_are_one_bit_away(self):
        for variant in bitsquat_variants(GOOGLE):
            assert is_bitsquat(variant, GOOGLE), variant

    def test_known_flip(self):
        # 'g' (0x67) ^ 0x02 = 'e' (0x65): "eoogle.com"
        assert is_bitsquat(DomainName("eoogle.com"), GOOGLE)

    def test_two_char_difference_rejected(self):
        assert not is_bitsquat(DomainName("eoogli.com"), GOOGLE)

    def test_length_change_rejected(self):
        assert not is_bitsquat(DomainName("googl.com"), GOOGLE)

    def test_non_single_bit_rejected(self):
        # 'g'(0x67) vs 'a'(0x61) differ in two bits.
        assert not is_bitsquat(DomainName("aoogle.com"), GOOGLE)

    def test_space_is_small(self):
        assert len(bitsquat_variants(GOOGLE)) < 40


class TestHomo:
    def test_digit_letter_swaps(self):
        variants = {str(v) for v in homosquat_variants(GOOGLE)}
        assert "g0ogle.com" in variants
        assert "go0gle.com" in variants

    def test_sequence_confusables(self):
        assert is_homosquat(DomainName("rnail.ru"), MAILRU)
        variants = {str(v) for v in homosquat_variants(DomainName("wechat.com"))}
        assert "vvechat.com" in variants

    def test_predicate_symmetry_for_char_pairs(self):
        # l -> 1 and 1 -> l both classify.
        assert is_homosquat(DomainName("goog1e.com"), GOOGLE)
        assert is_homosquat(DomainName("google.com"), DomainName("goog1e.com"))

    def test_negative(self):
        assert not is_homosquat(GOOGLE, GOOGLE)
        assert not is_homosquat(DomainName("gaagle.com"), GOOGLE)

    @given(brands)
    def test_generated_variants_satisfy_predicate(self, target):
        for variant in homosquat_variants(target):
            assert is_homosquat(variant, target), variant


class TestTldSwap:
    def test_known_swaps(self):
        from repro.squatting.typo import is_tld_swap, tld_swap_variants

        variants = {str(v) for v in tld_swap_variants(GOOGLE)}
        assert "google.co" in variants
        assert "google.cm" in variants
        assert is_tld_swap(DomainName("google.co"), GOOGLE)
        assert is_tld_swap(DomainName("www.google.co"), GOOGLE)

    def test_negative(self):
        from repro.squatting.typo import is_tld_swap

        assert not is_tld_swap(GOOGLE, GOOGLE)
        assert not is_tld_swap(DomainName("google.net"), GOOGLE)
        assert not is_tld_swap(DomainName("gogle.co"), GOOGLE)  # label differs

    def test_unknown_tld_has_no_swaps(self):
        from repro.squatting.typo import tld_swap_variants

        assert tld_swap_variants(DomainName("zoom.us")) == []

    def test_generated_satisfy_predicate(self):
        from repro.squatting.typo import is_tld_swap, tld_swap_variants

        for target in (GOOGLE, MAILRU):
            for variant in tld_swap_variants(target):
                assert is_tld_swap(variant, target)


class TestSpaceOrdering:
    def test_variant_space_sizes(self):
        """Typo/combo spaces dwarf the bit space, which dwarfs dot/homo.

        (Figure 7's observed prevalence ordering additionally depends
        on attacker economics, which the workload layer models; here we
        only pin the raw mutation-space sizes.)
        """
        typo = len(typosquat_variants(GOOGLE))
        combo = len(combosquat_variants(GOOGLE))
        dot = len(dotsquat_variants(GOOGLE))
        bit = len(bitsquat_variants(GOOGLE))
        homo = len(homosquat_variants(GOOGLE))
        assert typo > bit > dot >= homo
        assert combo > bit
