"""Tests for the ICANN lifecycle state machine."""

import pytest

from repro.clock import SECONDS_PER_DAY
from repro.dns.name import DomainName
from repro.errors import LifecycleError
from repro.whois.lifecycle import (
    DomainLifecycle,
    DomainStatus,
    EventKind,
    LifecyclePolicy,
)

YEAR = 365 * SECONDS_PER_DAY
DAY = SECONDS_PER_DAY
DOMAIN = DomainName("example.com")


@pytest.fixture
def lifecycle():
    lc = DomainLifecycle(DOMAIN)
    lc.register(owner="h-1", at=0, years=1)
    return lc


class TestRegistration:
    def test_fresh_domain_is_available(self):
        assert DomainLifecycle(DOMAIN).status == DomainStatus.AVAILABLE

    def test_register_sets_window(self, lifecycle):
        assert lifecycle.status == DomainStatus.REGISTERED
        assert lifecycle.created_at == 0
        assert lifecycle.expires_at == YEAR
        assert lifecycle.owner == "h-1"

    def test_double_register_rejected(self, lifecycle):
        with pytest.raises(LifecycleError):
            lifecycle.register(owner="h-2", at=10)

    def test_minimum_one_year(self):
        lc = DomainLifecycle(DOMAIN)
        with pytest.raises(LifecycleError):
            lc.register(owner="h-1", at=0, years=0)

    def test_renewal_extends(self, lifecycle):
        lifecycle.renew(at=100 * DAY, years=2)
        assert lifecycle.expires_at == 3 * YEAR

    def test_renewal_requires_registered_or_grace(self):
        lc = DomainLifecycle(DOMAIN)
        with pytest.raises(LifecycleError):
            lc.renew(at=0)


class TestExpiryPipeline:
    def test_full_pipeline_timing(self, lifecycle):
        policy = lifecycle.policy
        lifecycle.tick(YEAR)
        assert lifecycle.status == DomainStatus.AUTO_RENEW_GRACE

        lifecycle.tick(policy.grace_end(YEAR))
        assert lifecycle.status == DomainStatus.REDEMPTION

        lifecycle.tick(policy.redemption_end(YEAR))
        assert lifecycle.status == DomainStatus.PENDING_DELETE

        lifecycle.tick(policy.delete_at(YEAR))
        assert lifecycle.status == DomainStatus.AVAILABLE
        assert lifecycle.owner is None

    def test_large_jump_processes_all_stages(self, lifecycle):
        events = lifecycle.tick(YEAR * 3)
        kinds = [
            event.kind
            for event in events
            if event.kind != EventKind.EXPIRY_NOTICE
        ]
        assert kinds == [
            EventKind.EXPIRED,
            EventKind.ENTERED_REDEMPTION,
            EventKind.ENTERED_PENDING_DELETE,
            EventKind.RELEASED,
        ]
        # The returned batch is time-ordered, notices included.
        times = [event.at for event in events]
        assert times == sorted(times)

    def test_tick_idempotent(self, lifecycle):
        lifecycle.tick(YEAR)
        assert lifecycle.tick(YEAR) == []

    def test_renew_during_grace_recovers(self, lifecycle):
        lifecycle.tick(YEAR + 10 * DAY)
        assert lifecycle.status == DomainStatus.AUTO_RENEW_GRACE
        lifecycle.renew(at=YEAR + 10 * DAY)
        assert lifecycle.status == DomainStatus.REGISTERED
        assert lifecycle.expires_at == 2 * YEAR

    def test_restore_from_redemption(self, lifecycle):
        policy = lifecycle.policy
        lifecycle.tick(policy.grace_end(YEAR) + DAY)
        assert lifecycle.status == DomainStatus.REDEMPTION
        lifecycle.restore(at=policy.grace_end(YEAR) + DAY)
        assert lifecycle.status == DomainStatus.REGISTERED

    def test_restore_requires_redemption(self, lifecycle):
        with pytest.raises(LifecycleError):
            lifecycle.restore(at=10)

    def test_no_restore_after_pending_delete(self, lifecycle):
        lifecycle.tick(lifecycle.policy.redemption_end(YEAR) + DAY)
        assert lifecycle.status == DomainStatus.PENDING_DELETE
        with pytest.raises(LifecycleError):
            lifecycle.restore(at=lifecycle.policy.redemption_end(YEAR) + DAY)

    def test_reregistration_after_release(self, lifecycle):
        lifecycle.tick(YEAR * 3)
        lifecycle.register(owner="h-2", at=YEAR * 3, years=1)
        assert lifecycle.status == DomainStatus.REGISTERED
        assert lifecycle.events[-1].kind == EventKind.REREGISTERED


class TestNotices:
    def test_three_notices_sent(self, lifecycle):
        lifecycle.tick(YEAR + 5 * DAY)
        assert lifecycle.notices_sent == 3
        notice_events = [
            e for e in lifecycle.events if e.kind == EventKind.EXPIRY_NOTICE
        ]
        assert [e.at for e in notice_events] == [
            YEAR - 30 * DAY,
            YEAR - 7 * DAY,
            YEAR + 3 * DAY,
        ]

    def test_notices_not_duplicated(self, lifecycle):
        lifecycle.tick(YEAR - 20 * DAY)
        lifecycle.tick(YEAR - 10 * DAY)
        assert lifecycle.notices_sent == 1

    def test_renewal_resets_notices(self, lifecycle):
        lifecycle.tick(YEAR - 20 * DAY)
        lifecycle.renew(at=YEAR - 20 * DAY)
        assert lifecycle.notices_sent == 0


class TestNxVisibility:
    def test_resolves_through_grace(self, lifecycle):
        lifecycle.tick(YEAR + DAY)
        assert lifecycle.status.resolves_in_dns

    def test_nx_from_redemption_onward(self, lifecycle):
        lifecycle.tick(lifecycle.policy.grace_end(YEAR))
        assert not lifecycle.status.resolves_in_dns
        assert lifecycle.became_nx_at() == lifecycle.policy.grace_end(YEAR)

    def test_never_registered_has_no_nx_time(self):
        assert DomainLifecycle(DOMAIN).became_nx_at() is None

    def test_custom_policy(self):
        policy = LifecyclePolicy(
            auto_renew_grace_days=0, redemption_days=10, pending_delete_days=1
        )
        lc = DomainLifecycle(DOMAIN, policy)
        lc.register(owner="h-1", at=0, years=1)
        lc.tick(YEAR + 11 * DAY)
        assert lc.status == DomainStatus.AVAILABLE
