"""Property-based tests on lifecycle invariants.

Random interleavings of time advancement, renewals, and restores must
never corrupt the state machine: status only moves along the legal
graph, events stay time-ordered, and a released domain is always
re-registrable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import SECONDS_PER_DAY
from repro.dns.name import DomainName
from repro.errors import LifecycleError
from repro.whois.lifecycle import DomainLifecycle, DomainStatus, EventKind

DAY = SECONDS_PER_DAY

#: Legal successor states (self-loops implied).  One large tick may
#: traverse several edges, so the property checks reachability.
_LEGAL_NEXT = {
    DomainStatus.AVAILABLE: {DomainStatus.REGISTERED},
    DomainStatus.REGISTERED: {DomainStatus.AUTO_RENEW_GRACE},
    DomainStatus.AUTO_RENEW_GRACE: {
        DomainStatus.REGISTERED,  # renewal
        DomainStatus.REDEMPTION,
    },
    DomainStatus.REDEMPTION: {
        DomainStatus.REGISTERED,  # restore
        DomainStatus.PENDING_DELETE,
    },
    DomainStatus.PENDING_DELETE: {DomainStatus.AVAILABLE},
}


def _reachable(start: DomainStatus) -> set:
    seen = set()
    frontier = {start}
    while frontier:
        state = frontier.pop()
        for successor in _LEGAL_NEXT[state]:
            if successor not in seen:
                seen.add(successor)
                frontier.add(successor)
    return seen

actions = st.lists(
    st.one_of(
        st.tuples(st.just("tick"), st.integers(1, 400)),    # advance days
        st.tuples(st.just("renew"), st.integers(1, 3)),     # renew years
        st.tuples(st.just("restore"), st.just(0)),
        st.tuples(st.just("register"), st.integers(1, 2)),  # register years
    ),
    min_size=1,
    max_size=40,
)


@given(actions)
@settings(max_examples=200)
def test_random_interleavings_respect_the_state_graph(script):
    lifecycle = DomainLifecycle(DomainName("prop.example.com"))
    lifecycle.register(owner="h-0", at=0, years=1)
    now = 0
    previous = lifecycle.status
    for action, argument in script:
        try:
            if action == "tick":
                now += argument * DAY
                lifecycle.tick(now)
            elif action == "renew":
                lifecycle.renew(at=now, years=argument)
            elif action == "restore":
                lifecycle.restore(at=now)
            elif action == "register":
                lifecycle.register(owner="h-n", at=now, years=argument)
        except LifecycleError:
            # Illegal for the current state: state must be unchanged.
            assert lifecycle.status == previous
            continue
        current = lifecycle.status
        if current != previous:
            assert current in _reachable(previous), (previous, current)
        previous = current


@given(actions)
@settings(max_examples=100)
def test_events_are_time_ordered_and_dates_consistent(script):
    lifecycle = DomainLifecycle(DomainName("prop.example.com"))
    lifecycle.register(owner="h-0", at=0, years=1)
    now = 0
    for action, argument in script:
        try:
            if action == "tick":
                now += argument * DAY
                lifecycle.tick(now)
            elif action == "renew":
                lifecycle.renew(at=now, years=argument)
            elif action == "restore":
                lifecycle.restore(at=now)
            elif action == "register":
                lifecycle.register(owner="h-n", at=now, years=argument)
        except LifecycleError:
            continue
    times = [event.at for event in lifecycle.events]
    assert times == sorted(times)
    if lifecycle.status != DomainStatus.AVAILABLE:
        assert lifecycle.expires_at is not None
        assert lifecycle.created_at is not None
        assert lifecycle.expires_at > lifecycle.created_at


@given(st.integers(1, 5))
def test_released_domain_is_always_reregistrable(years):
    lifecycle = DomainLifecycle(DomainName("prop.example.com"))
    lifecycle.register(owner="h-0", at=0, years=years)
    # Jump far past every deadline.
    lifecycle.tick(years * 365 * DAY + 365 * DAY)
    assert lifecycle.status == DomainStatus.AVAILABLE
    lifecycle.register(owner="h-1", at=10**9, years=1)
    assert lifecycle.status == DomainStatus.REGISTERED
    assert lifecycle.events[-1].kind == EventKind.REREGISTERED
