"""Registry integration tests: WHOIS history, DNS, and drop-catching."""

import pytest

from repro.clock import SECONDS_PER_DAY
from repro.dns.hierarchy import DnsHierarchy
from repro.dns.name import DomainName
from repro.dns.tld import TldRegistry
from repro.errors import RegistryError
from repro.whois.lifecycle import DomainStatus, EventKind, LifecyclePolicy
from repro.whois.registrar import DropCatchService, Registrar
from repro.whois.registry import Registry, days

YEAR = 365 * SECONDS_PER_DAY
DOMAIN = DomainName("example.com")


@pytest.fixture
def hierarchy():
    return DnsHierarchy.build(TldRegistry.default())


@pytest.fixture
def registry(hierarchy):
    return Registry(hierarchy=hierarchy, dropcatch=DropCatchService())


class TestRegistration:
    def test_register_creates_history_and_delegation(self, registry, hierarchy):
        registry.register(DOMAIN, owner="h-1", at=0)
        assert registry.history.has_history(DOMAIN)
        assert hierarchy.is_registered(DOMAIN)
        resolver = hierarchy.make_iterative_resolver()
        assert resolver.resolve(DomainName("www.example.com")).addresses()

    def test_register_unavailable_rejected(self, registry):
        registry.register(DOMAIN, owner="h-1", at=0)
        with pytest.raises(RegistryError):
            registry.register(DOMAIN, owner="h-2", at=10)

    def test_subdomain_registers_sld(self, registry):
        registry.register(DomainName("deep.sub.example.com"), owner="h-1", at=0)
        assert registry.status_of(DOMAIN) == DomainStatus.REGISTERED

    def test_unknown_registrar_rejected(self, registry):
        with pytest.raises(RegistryError):
            registry.register(DOMAIN, owner="h-1", at=0, registrar="nope")

    def test_named_registrar_charged(self, registry):
        godaddy = registry.add_registrar(Registrar("godaddy", registration_fee=10))
        registry.register(DOMAIN, owner="h-1", at=0, registrar="godaddy", years=2)
        assert godaddy.revenue == 20
        assert godaddy.registrations == 1


class TestExpiryIntegration:
    def test_delegation_withdrawn_at_redemption(self, registry, hierarchy):
        registry.register(DOMAIN, owner="h-1", at=0)
        grace_end = registry.policy.grace_end(YEAR)
        registry.tick(grace_end)
        assert not hierarchy.is_registered(DOMAIN)
        assert registry.is_nxdomain(DOMAIN)
        result = hierarchy.make_iterative_resolver().resolve(
            DomainName("www.example.com")
        )
        assert result.is_nxdomain

    def test_resolves_during_auto_renew_grace(self, registry, hierarchy):
        registry.register(DOMAIN, owner="h-1", at=0)
        registry.tick(YEAR + days(5))
        assert hierarchy.is_registered(DOMAIN)
        assert not registry.is_nxdomain(DOMAIN)

    def test_restore_rewires_dns(self, registry, hierarchy):
        registry.register(DOMAIN, owner="h-1", at=0)
        at = registry.policy.grace_end(YEAR) + days(1)
        registry.tick(at)
        registry.restore(DOMAIN, at=at)
        assert hierarchy.is_registered(DOMAIN)

    def test_renew_from_grace_keeps_dns(self, registry, hierarchy):
        registry.register(DOMAIN, owner="h-1", at=0)
        registry.tick(YEAR + days(1))
        registry.renew(DOMAIN, at=YEAR + days(1))
        assert hierarchy.is_registered(DOMAIN)
        assert registry.status_of(DOMAIN) == DomainStatus.REGISTERED

    def test_history_snapshots_accumulate(self, registry):
        registry.register(DOMAIN, owner="h-1", at=0)
        registry.tick(registry.policy.delete_at(YEAR) + 1)
        statuses = [r.status for r in registry.history.history(DOMAIN)]
        assert statuses[0] == "registered"
        assert "redemption-grace-period" in statuses
        assert statuses[-1] == "available"

    def test_tick_reports_event_kinds(self, registry):
        registry.register(DOMAIN, owner="h-1", at=0)
        activity = registry.tick(YEAR * 3)
        assert EventKind.RELEASED in activity[DOMAIN]


class TestDropCatch:
    def test_dropcatch_reregisters_on_release(self, registry, hierarchy):
        registry.register(DOMAIN, owner="h-1", at=0)
        registry.dropcatch.reserve(DOMAIN, customer="speculator", at=days(30))
        registry.tick(YEAR * 3)
        lifecycle = registry.lifecycle_of(DOMAIN)
        assert lifecycle.status == DomainStatus.REGISTERED
        assert lifecycle.owner == "speculator"
        assert hierarchy.is_registered(DOMAIN)
        assert registry.dropcatch.catches == 1

    def test_earliest_reservation_wins(self):
        service = DropCatchService()
        service.reserve(DOMAIN, customer="late", at=100)
        service.reserve(DOMAIN, customer="early", at=1)
        assert service.claim(DOMAIN) == "early"
        assert service.claim(DOMAIN) == "late"
        assert service.claim(DOMAIN) is None

    def test_unreserved_domain_stays_available(self, registry):
        registry.register(DOMAIN, owner="h-1", at=0)
        registry.tick(YEAR * 3)
        assert registry.status_of(DOMAIN) == DomainStatus.AVAILABLE


class TestQueries:
    def test_unmanaged_domain_available_and_nx(self, registry):
        assert registry.status_of(DomainName("ghost.net")) == DomainStatus.AVAILABLE
        assert registry.is_nxdomain(DomainName("ghost.net"))

    def test_renew_unmanaged_rejected(self, registry):
        with pytest.raises(RegistryError):
            registry.renew(DomainName("ghost.net"), at=0)

    def test_managed_domains_sorted(self, registry):
        registry.register(DomainName("zed.com"), owner="h", at=0)
        registry.register(DomainName("abc.com"), owner="h", at=0)
        assert registry.managed_domains() == [
            DomainName("abc.com"),
            DomainName("zed.com"),
        ]

    def test_custom_policy_flows_through(self, hierarchy):
        policy = LifecyclePolicy(auto_renew_grace_days=1)
        registry = Registry(hierarchy=hierarchy, policy=policy)
        registry.register(DOMAIN, owner="h-1", at=0)
        registry.tick(YEAR + days(1))
        assert registry.is_nxdomain(DOMAIN)
