"""Tests for the WHOIS history database and records."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.name import DomainName
from repro.whois.history import WhoisHistoryDatabase
from repro.whois.record import WhoisRecord

DOMAIN = DomainName("example.com")
YEAR = 365 * 86_400


def record(domain=DOMAIN, created=0, expires=YEAR, captured=None, status="registered"):
    return WhoisRecord(
        domain=domain,
        registrar="generic",
        registrant_handle="h-1",
        status=status,
        created_at=created,
        expires_at=expires,
        captured_at=captured if captured is not None else created,
    )


class TestRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            record(created=100, expires=50)
        with pytest.raises(ValueError):
            record(created=100, expires=200, captured=50)

    def test_registration_years(self):
        assert record().registration_years == pytest.approx(1.0)

    def test_was_live_at(self):
        r = record()
        assert r.was_live_at(0)
        assert r.was_live_at(YEAR - 1)
        assert not r.was_live_at(YEAR)


class TestHistoryDatabase:
    def test_empty(self):
        db = WhoisHistoryDatabase()
        assert not db.has_history(DOMAIN)
        assert db.history(DOMAIN) == []
        assert db.latest(DOMAIN) is None
        assert db.first_registered_at(DOMAIN) is None

    def test_append_and_lookup(self):
        db = WhoisHistoryDatabase()
        db.append(record())
        assert db.has_history(DOMAIN)
        assert DOMAIN in db
        assert db.domain_count() == 1
        assert len(db) == 1

    def test_subdomain_queries_hit_sld(self):
        db = WhoisHistoryDatabase()
        db.append(record())
        assert db.has_history(DomainName("www.example.com"))

    def test_snapshots_sorted_by_capture(self):
        db = WhoisHistoryDatabase()
        db.append(record(captured=YEAR // 2))
        db.append(record(captured=10))
        captures = [r.captured_at for r in db.history(DOMAIN)]
        assert captures == sorted(captures)
        assert db.latest(DOMAIN).captured_at == YEAR // 2

    def test_first_registered_at_spans_reregistrations(self):
        db = WhoisHistoryDatabase()
        db.append(record(created=5 * YEAR, expires=6 * YEAR, captured=5 * YEAR))
        db.append(record(created=YEAR, expires=2 * YEAR, captured=YEAR))
        assert db.first_registered_at(DOMAIN) == YEAR
        assert db.registration_spans(DOMAIN) == [
            (YEAR, 2 * YEAR),
            (5 * YEAR, 6 * YEAR),
        ]

    def test_join_splits_hits_and_misses(self):
        db = WhoisHistoryDatabase()
        db.append(record())
        stream = [
            DomainName("example.com"),
            DomainName("www.example.com"),
            DomainName("never.net"),
        ]
        result = db.join(stream)
        assert result.total == 3
        assert result.hit_count == 2
        assert result.never_registered_count == 1
        assert result.hit_fraction == pytest.approx(2 / 3)

    def test_join_empty_stream(self):
        result = WhoisHistoryDatabase().join([])
        assert result.total == 0
        assert result.hit_fraction == 0.0

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 100)),
            min_size=1,
            max_size=30,
        )
    )
    def test_record_count_matches_appends(self, entries):
        db = WhoisHistoryDatabase()
        for domain_index, captured in entries:
            db.append(
                record(
                    domain=DomainName(f"d{domain_index}.com"),
                    captured=captured,
                )
            )
        assert len(db) == len(entries)
        assert db.domain_count() == len({i for i, _ in entries})
