"""Tests for the domain name model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.name import (
    MAX_LABEL_LENGTH,
    DomainName,
    reverse_name_for_ipv4,
)
from repro.errors import DomainNameError

LABEL_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"

labels = st.text(alphabet=LABEL_ALPHABET, min_size=1, max_size=10)
names = st.lists(labels, min_size=1, max_size=5).map(
    lambda parts: DomainName(".".join(parts))
)


class TestParsing:
    def test_basic_parse(self):
        name = DomainName("www.example.com")
        assert name.labels == ("www", "example", "com")

    def test_case_folding(self):
        assert DomainName("WWW.Example.COM") == DomainName("www.example.com")

    def test_trailing_dot_is_absolute_form(self):
        assert DomainName("example.com.") == DomainName("example.com")

    def test_root(self):
        root = DomainName(".")
        assert root.is_root
        assert str(root) == "."
        assert root == DomainName.root()

    def test_copy_constructor(self):
        original = DomainName("a.b.c")
        assert DomainName(original) == original

    def test_empty_string_rejected(self):
        with pytest.raises(DomainNameError):
            DomainName("")

    def test_consecutive_dots_rejected(self):
        with pytest.raises(DomainNameError):
            DomainName("a..b")

    def test_overlong_label_rejected(self):
        with pytest.raises(DomainNameError):
            DomainName("a" * (MAX_LABEL_LENGTH + 1) + ".com")

    def test_longest_valid_label_accepted(self):
        DomainName("a" * MAX_LABEL_LENGTH + ".com")

    def test_overlong_name_rejected(self):
        label = "a" * 60
        with pytest.raises(DomainNameError):
            DomainName(".".join([label] * 5))

    def test_bad_characters_rejected(self):
        for bad in ("exa mple.com", "exam!ple.com", "uniçode.com"):
            with pytest.raises(DomainNameError):
                DomainName(bad)

    def test_hyphen_positions(self):
        DomainName("a-b.com")
        with pytest.raises(DomainNameError):
            DomainName("-ab.com")
        with pytest.raises(DomainNameError):
            DomainName("ab-.com")

    def test_service_label_underscore_allowed(self):
        name = DomainName("_dmarc.example.com")
        assert name.labels[0] == "_dmarc"

    def test_non_string_rejected(self):
        with pytest.raises(DomainNameError):
            DomainName(42)


class TestStructure:
    def test_tld_and_sld(self):
        name = DomainName("www.example.com")
        assert name.tld == "com"
        assert name.sld == "example"

    def test_registered_domain(self):
        assert DomainName("a.b.example.com").registered_domain() == DomainName(
            "example.com"
        )

    def test_registered_domain_of_tld_is_itself(self):
        assert DomainName("com").registered_domain() == DomainName("com")

    def test_parent_chain(self):
        name = DomainName("a.b.c")
        assert name.parent() == DomainName("b.c")
        assert name.parent().parent() == DomainName("c")
        assert name.parent().parent().parent().is_root

    def test_child(self):
        assert DomainName("example.com").child("WWW") == DomainName("www.example.com")

    def test_subdomain_relation(self):
        parent = DomainName("example.com")
        assert DomainName("www.example.com").is_subdomain_of(parent)
        assert parent.is_subdomain_of(parent)
        assert not DomainName("example.org").is_subdomain_of(parent)
        assert not DomainName("badexample.com").is_subdomain_of(parent)
        assert DomainName("anything.at.all").is_subdomain_of(DomainName.root())

    def test_ancestors(self):
        chain = list(DomainName("a.b.c").ancestors())
        assert chain == [DomainName("b.c"), DomainName("c"), DomainName.root()]

    def test_reverse_lookup_detection(self):
        assert DomainName("34.216.184.93.in-addr.arpa").is_reverse_lookup()
        assert DomainName("1.0.ip6.arpa").is_reverse_lookup()
        assert not DomainName("example.com").is_reverse_lookup()

    def test_idn_detection(self):
        assert DomainName("xn--bcher-kva.com").is_idn()
        assert not DomainName("books.com").is_idn()

    def test_ordering_is_right_to_left(self):
        assert DomainName("a.com") < DomainName("a.net")
        assert DomainName("a.com") < DomainName("b.com")


class TestReverseName:
    def test_reverse_name(self):
        assert str(reverse_name_for_ipv4("93.184.216.34")) == (
            "34.216.184.93.in-addr.arpa"
        )

    def test_invalid_address_rejected(self):
        for bad in ("1.2.3", "256.1.1.1", "a.b.c.d"):
            with pytest.raises(DomainNameError):
                reverse_name_for_ipv4(bad)


class TestProperties:
    @given(names)
    def test_roundtrip_through_str(self, name):
        assert DomainName(str(name)) == name

    @given(names)
    def test_hash_consistent_with_eq(self, name):
        assert hash(DomainName(str(name))) == hash(name)

    @given(names)
    def test_registered_domain_is_suffix(self, name):
        assert name.is_subdomain_of(name.registered_domain())

    @given(names, st.sampled_from(["www", "mail", "a1"]))
    def test_child_parent_inverse(self, name, label):
        assert name.child(label).parent() == name

    @given(names)
    def test_depth_matches_labels(self, name):
        assert name.depth == len(name.labels)
