"""Tests for zones and the authoritative answer algorithm."""

import pytest

from repro.dns.message import DnsMessage, RCode, ResourceRecord, RRType
from repro.dns.name import DomainName
from repro.dns.zone import AuthoritativeServer, Zone
from repro.errors import ZoneError


@pytest.fixture
def zone():
    z = Zone(DomainName("example.com"))
    z.add(ResourceRecord(DomainName("example.com"), RRType.A, 300, "1.2.3.4"))
    z.add(ResourceRecord(DomainName("www.example.com"), RRType.A, 300, "1.2.3.4"))
    z.add(
        ResourceRecord(
            DomainName("example.com"), RRType.MX, 600, "10 mail.example.com"
        )
    )
    z.add(
        ResourceRecord(
            DomainName("deep.empty.example.com"), RRType.TXT, 60, "leaf"
        )
    )
    return z


@pytest.fixture
def server(zone):
    s = AuthoritativeServer("ns1.example.com")
    s.host_zone(zone)
    return s


def ask(server, name, rtype=RRType.A):
    return server.handle_query(DnsMessage.make_query(DomainName(name), rtype))


class TestZone:
    def test_lookup_exact(self, zone):
        assert zone.lookup(DomainName("www.example.com"), RRType.A)[0].rdata == "1.2.3.4"

    def test_lookup_any_gathers_types(self, zone):
        records = zone.lookup(DomainName("example.com"), RRType.ANY)
        assert {rr.rtype for rr in records} == {RRType.A, RRType.MX}

    def test_out_of_zone_record_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add(ResourceRecord(DomainName("other.org"), RRType.A, 300, "1.1.1.1"))

    def test_empty_non_terminal_exists(self, zone):
        # 'empty.example.com' has no records but a descendant does.
        assert zone.name_exists(DomainName("empty.example.com"))

    def test_unknown_name_does_not_exist(self, zone):
        assert not zone.name_exists(DomainName("nope.example.com"))

    def test_remove_name(self, zone):
        removed = zone.remove_name(DomainName("www.example.com"))
        assert removed == 1
        assert not zone.name_exists(DomainName("www.example.com"))

    def test_remove_keeps_empty_non_terminal_with_descendants(self, zone):
        zone.remove_name(DomainName("empty.example.com"))
        # Still referenced by deep.empty.example.com's TXT record.
        assert zone.name_exists(DomainName("empty.example.com"))

    def test_delegation_discovery(self, zone):
        zone.add_delegation(
            DomainName("sub.example.com"), DomainName("ns1.sub.example.com"), "9.9.9.9"
        )
        assert zone.find_delegation(DomainName("x.sub.example.com")) == DomainName(
            "sub.example.com"
        )
        assert zone.find_delegation(DomainName("www.example.com")) is None
        assert list(zone.delegations()) == [DomainName("sub.example.com")]

    def test_cannot_delegate_apex(self, zone):
        with pytest.raises(ZoneError):
            zone.add_delegation(DomainName("example.com"), DomainName("ns.example.com"))


class TestAnswerAlgorithm:
    def test_positive_answer(self, server):
        response = ask(server, "www.example.com")
        assert response.rcode == RCode.NOERROR
        assert response.answers[0].rdata == "1.2.3.4"
        assert response.authoritative

    def test_nxdomain_with_soa(self, server):
        response = ask(server, "missing.example.com")
        assert response.is_nxdomain()
        assert response.soa_minimum_ttl() is not None

    def test_nodata_for_existing_name_wrong_type(self, server):
        response = ask(server, "www.example.com", RRType.TXT)
        assert response.is_nodata()
        assert not response.is_nxdomain()
        assert response.soa_minimum_ttl() is not None

    def test_nodata_for_empty_non_terminal(self, server):
        response = ask(server, "empty.example.com")
        assert response.is_nodata()

    def test_refused_outside_hosted_zones(self, server):
        response = ask(server, "www.other.org")
        assert response.rcode == RCode.REFUSED

    def test_referral_for_delegated_subtree(self, server, zone):
        zone.add_delegation(
            DomainName("sub.example.com"), DomainName("ns1.sub.example.com"), "9.9.9.9"
        )
        response = ask(server, "host.sub.example.com")
        assert response.is_referral()
        assert any(rr.rtype == RRType.NS for rr in response.authorities)
        assert any(rr.rtype == RRType.A for rr in response.additionals)

    def test_cname_chased_one_step(self, server, zone):
        zone.add(
            ResourceRecord(
                DomainName("alias.example.com"), RRType.CNAME, 60, "www.example.com"
            )
        )
        response = ask(server, "alias.example.com")
        assert response.answers[0].rtype == RRType.CNAME

    def test_stats_track_outcomes(self, server):
        ask(server, "www.example.com")
        ask(server, "missing.example.com")
        ask(server, "www.example.com", RRType.TXT)
        assert server.stats.queries == 3
        assert server.stats.answers == 1
        assert server.stats.nxdomains == 1
        assert server.stats.nodatas == 1

    def test_most_specific_zone_wins(self, server, zone):
        child = Zone(DomainName("sub.example.com"))
        child.add(
            ResourceRecord(DomainName("host.sub.example.com"), RRType.A, 60, "7.7.7.7")
        )
        server.host_zone(child)
        response = ask(server, "host.sub.example.com")
        assert response.answers[0].rdata == "7.7.7.7"
