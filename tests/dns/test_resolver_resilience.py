"""Recursive resolver retries over transient upstream failures."""

import pytest

from repro.dns.hierarchy import DnsHierarchy
from repro.dns.message import RCode
from repro.dns.name import DomainName
from repro.dns.resolver import RecursiveResolver
from repro.dns.tld import TldRegistry
from repro.errors import TransientResolutionError
from repro.rand import make_rng
from repro.resilience import RetryPolicy

WWW = DomainName("www.example.com")


@pytest.fixture
def hierarchy():
    h = DnsHierarchy.build(TldRegistry.default())
    h.register_domain(DomainName("example.com"), "93.184.216.34")
    return h


class FlakyUpstream:
    """A fault hook that times out the first ``failures`` walks."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self, qname):
        self.calls += 1
        if self.calls <= self.failures:
            raise TransientResolutionError(f"timeout resolving {qname}")


def test_retry_policy_recovers_from_transient_upstream_failures(hierarchy):
    iterative = hierarchy.make_iterative_resolver()
    iterative.fault_hook = FlakyUpstream(2)
    resolver = RecursiveResolver(
        iterative,
        retry_policy=RetryPolicy(max_attempts=3),
        retry_rng=make_rng(0),
    )
    result = resolver.resolve(WWW, now=0)
    assert result.rcode == RCode.NOERROR
    assert result.addresses() == ["93.184.216.34"]
    assert resolver.stats.upstream_retries == 2


def test_without_policy_transient_failures_propagate(hierarchy):
    iterative = hierarchy.make_iterative_resolver()
    iterative.fault_hook = FlakyUpstream(1)
    resolver = RecursiveResolver(iterative)
    with pytest.raises(TransientResolutionError):
        resolver.resolve(WWW, now=0)
    assert resolver.stats.upstream_retries == 0


def test_exhausted_retries_reraise(hierarchy):
    iterative = hierarchy.make_iterative_resolver()
    upstream = FlakyUpstream(10)
    iterative.fault_hook = upstream
    resolver = RecursiveResolver(
        iterative, retry_policy=RetryPolicy(max_attempts=2)
    )
    with pytest.raises(TransientResolutionError):
        resolver.resolve(WWW, now=0)
    assert upstream.calls == 2
    assert resolver.stats.upstream_retries == 1


def test_cache_hits_never_touch_the_flaky_upstream(hierarchy):
    iterative = hierarchy.make_iterative_resolver()
    resolver = RecursiveResolver(
        iterative, retry_policy=RetryPolicy(max_attempts=3)
    )
    resolver.resolve(WWW, now=0)
    iterative.fault_hook = FlakyUpstream(100)
    # The cached answer short-circuits before the upstream walk.
    result = resolver.resolve(WWW, now=10)
    assert result.addresses() == ["93.184.216.34"]
    assert resolver.stats.cache_hits == 1
    assert resolver.stats.upstream_retries == 0
