"""Wire codec tests, including hypothesis round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.message import (
    DnsMessage,
    RCode,
    ResourceRecord,
    RRType,
    make_soa_record,
)
from repro.dns.name import DomainName
from repro.dns.wire import decode_message, encode_message
from repro.errors import WireFormatError

LABEL_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"

label_st = st.text(alphabet=LABEL_ALPHABET, min_size=1, max_size=12)
name_st = st.lists(label_st, min_size=1, max_size=4).map(
    lambda parts: DomainName(".".join(parts))
)


def a_record_st():
    octet = st.integers(0, 255)
    return st.builds(
        lambda name, ttl, a, b, c, d: ResourceRecord(
            name, RRType.A, ttl, f"{a}.{b}.{c}.{d}"
        ),
        name_st,
        st.integers(0, 86400),
        octet,
        octet,
        octet,
        octet,
    )


def txt_record_st():
    return st.builds(
        lambda name, ttl, text: ResourceRecord(name, RRType.TXT, ttl, text),
        name_st,
        st.integers(0, 86400),
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=600
        ),
    )


class TestRoundTrip:
    def test_simple_query(self):
        query = DnsMessage.make_query(DomainName("www.example.com"), msg_id=7)
        assert decode_message(encode_message(query)) == query

    def test_nxdomain_response_with_soa(self):
        query = DnsMessage.make_query(DomainName("gone.example.com"), msg_id=9)
        soa = make_soa_record(DomainName("example.com"), minimum=900)
        response = query.make_response(
            rcode=RCode.NXDOMAIN, authorities=[soa], authoritative=True
        )
        decoded = decode_message(encode_message(response))
        assert decoded.is_nxdomain()
        assert decoded.soa_minimum_ttl() == 900
        assert decoded.authoritative

    def test_answer_sections_roundtrip(self):
        query = DnsMessage.make_query(DomainName("www.example.com"), msg_id=3)
        response = query.make_response(
            answers=[
                ResourceRecord(
                    DomainName("www.example.com"), RRType.CNAME, 60, "example.com"
                ),
                ResourceRecord(DomainName("example.com"), RRType.A, 300, "1.2.3.4"),
            ],
            additionals=[
                ResourceRecord(
                    DomainName("example.com"), RRType.MX, 600, "10 mail.example.com"
                ),
                ResourceRecord(
                    DomainName("example.com"), RRType.AAAA, 600, "2606:2800:220:1::1"
                ),
            ],
        )
        decoded = decode_message(encode_message(response))
        assert decoded.answers == response.answers
        # AAAA addresses normalize; compare semantic fields.
        assert decoded.additionals[0] == response.additionals[0]
        assert decoded.additionals[1].rdata == "2606:2800:220:1::1"

    def test_compression_shrinks_repeated_names(self):
        query = DnsMessage.make_query(DomainName("www.example.com"))
        rrs = [
            ResourceRecord(DomainName("www.example.com"), RRType.A, 300, "1.2.3.4"),
            ResourceRecord(DomainName("www.example.com"), RRType.A, 300, "1.2.3.5"),
            ResourceRecord(DomainName("www.example.com"), RRType.A, 300, "1.2.3.6"),
        ]
        wire = encode_message(query.make_response(answers=rrs))
        # The name is 17 bytes uncompressed; pointers are 2 bytes.
        assert len(wire) < 12 + 21 + 3 * (17 + 10) - 2 * 15
        assert decode_message(wire).answers == rrs

    def test_ptr_record(self):
        rr = ResourceRecord(
            DomainName("34.216.184.93.in-addr.arpa"),
            RRType.PTR,
            300,
            "server.example.com",
        )
        query = DnsMessage.make_query(rr.name, RRType.PTR)
        decoded = decode_message(encode_message(query.make_response(answers=[rr])))
        assert decoded.answers[0].rdata == "server.example.com"

    @given(st.lists(a_record_st(), min_size=0, max_size=6))
    def test_a_records_roundtrip(self, records):
        query = DnsMessage.make_query(DomainName("q.test"), msg_id=1)
        message = query.make_response(answers=records)
        assert decode_message(encode_message(message)).answers == records

    @given(txt_record_st())
    def test_txt_roundtrip(self, record):
        query = DnsMessage.make_query(record.name, RRType.TXT)
        decoded = decode_message(encode_message(query.make_response(answers=[record])))
        assert decoded.answers[0].rdata == record.rdata

    @given(
        name_st,
        st.integers(0, 0xFFFF),
        st.booleans(),
        st.booleans(),
        st.sampled_from(list(RCode)),
    )
    def test_header_fields_roundtrip(self, name, msg_id, rd, aa, rcode):
        query = DnsMessage.make_query(name, msg_id=msg_id, recursion_desired=rd)
        response = query.make_response(rcode=rcode, authoritative=aa)
        decoded = decode_message(encode_message(response))
        assert decoded.msg_id == msg_id
        assert decoded.recursion_desired == rd
        assert decoded.authoritative == aa
        assert decoded.rcode == rcode


class TestMalformedInput:
    def test_truncated_header(self):
        with pytest.raises(WireFormatError):
            decode_message(b"\x00\x01\x00")

    def test_trailing_garbage(self):
        wire = encode_message(DnsMessage.make_query(DomainName("a.test")))
        with pytest.raises(WireFormatError):
            decode_message(wire + b"\x00")

    def test_pointer_loop(self):
        # Header claiming one question whose name is a self-pointer.
        header = b"\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00"
        loop = b"\xc0\x0c\x00\x01\x00\x01"
        with pytest.raises(WireFormatError):
            decode_message(header + loop)

    def test_bad_rdata_rejected_at_encode(self):
        rr = ResourceRecord(DomainName("a.test"), RRType.A, 300, "not-an-ip")
        message = DnsMessage.make_query(DomainName("a.test")).make_response(
            answers=[rr]
        )
        with pytest.raises(WireFormatError):
            encode_message(message)

    def test_label_past_end(self):
        header = b"\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00"
        bad_name = b"\x3fabc"  # label claims 63 bytes, only 3 present
        with pytest.raises(WireFormatError):
            decode_message(header + bad_name)
