"""Tests for the master-file parser and serializer."""

import pytest

from repro.dns.message import RRType
from repro.dns.name import DomainName
from repro.dns.zonefile import parse_zone_file, serialize_zone
from repro.errors import ZoneError

SAMPLE = """\
$ORIGIN example.com.
$TTL 3600
@       IN SOA   ns1.example.com. hostmaster.example.com. (
                  7 7200 3600 1209600 900 )
@       IN NS    ns1.example.com.
@       IN MX    10 mail
www     300 IN A 93.184.216.34
mail    IN A     93.184.216.35
alias   IN CNAME www
notes   IN TXT   "hello zone world"
"""


class TestParsing:
    @pytest.fixture
    def zone(self):
        return parse_zone_file(SAMPLE)

    def test_apex_and_soa(self, zone):
        assert zone.apex == DomainName("example.com")
        assert zone.soa.soa.serial == 7
        assert zone.soa.soa.minimum == 900

    def test_records(self, zone):
        assert zone.lookup(DomainName("www.example.com"), RRType.A)[0].rdata == (
            "93.184.216.34"
        )
        assert zone.lookup(DomainName("www.example.com"), RRType.A)[0].ttl == 300
        assert zone.lookup(DomainName("mail.example.com"), RRType.A)[0].ttl == 3600

    def test_relative_names_resolved(self, zone):
        mx = zone.lookup(DomainName("example.com"), RRType.MX)[0]
        assert mx.rdata == "10 mail.example.com"
        cname = zone.lookup(DomainName("alias.example.com"), RRType.CNAME)[0]
        assert cname.rdata == "www.example.com"

    def test_txt_quotes_stripped(self, zone):
        txt = zone.lookup(DomainName("notes.example.com"), RRType.TXT)[0]
        assert txt.rdata == "hello zone world"

    def test_origin_argument_used_when_file_lacks_origin(self):
        zone = parse_zone_file(
            "@ IN SOA ns1 host 1 2 3 4 5\nwww IN A 1.2.3.4\n",
            origin=DomainName("fallback.net"),
        )
        assert zone.apex == DomainName("fallback.net")
        assert zone.name_exists(DomainName("www.fallback.net"))

    def test_owner_inheritance(self):
        text = (
            "$ORIGIN ex.org.\n"
            "@ IN SOA ns1 host 1 2 3 4 5\n"
            "multi IN A 1.1.1.1\n"
            "      IN A 2.2.2.2\n"
        )
        zone = parse_zone_file(text)
        records = zone.lookup(DomainName("multi.ex.org"), RRType.A)
        assert {r.rdata for r in records} == {"1.1.1.1", "2.2.2.2"}

    def test_comments_ignored(self):
        text = (
            "$ORIGIN c.org. ; the origin\n"
            "@ IN SOA ns1 host 1 2 3 4 5 ; soa\n"
            "; full comment line\n"
            "www IN A 9.9.9.9\n"
        )
        zone = parse_zone_file(text)
        assert zone.lookup(DomainName("www.c.org"), RRType.A)


class TestErrors:
    def test_no_origin(self):
        with pytest.raises(ZoneError, match="ORIGIN"):
            parse_zone_file("www IN A 1.2.3.4\n")

    def test_no_soa(self):
        with pytest.raises(ZoneError, match="SOA"):
            parse_zone_file("$ORIGIN x.org.\nwww IN A 1.2.3.4\n")

    def test_duplicate_soa(self):
        text = (
            "$ORIGIN x.org.\n"
            "@ IN SOA ns1 host 1 2 3 4 5\n"
            "@ IN SOA ns1 host 1 2 3 4 5\n"
        )
        with pytest.raises(ZoneError, match="duplicate SOA"):
            parse_zone_file(text)

    def test_bad_directive(self):
        with pytest.raises(ZoneError, match="unsupported directive"):
            parse_zone_file("$GENERATE 1-10 host$ A 1.2.3.4\n")

    def test_unknown_type(self):
        text = "$ORIGIN x.org.\n@ IN SOA ns1 host 1 2 3 4 5\nwww IN HINFO x\n"
        with pytest.raises(ZoneError, match="unsupported record type"):
            parse_zone_file(text)

    def test_unbalanced_parens(self):
        with pytest.raises(ZoneError, match="unclosed"):
            parse_zone_file("$ORIGIN x.org.\n@ IN SOA ns1 host ( 1 2 3 4 5\n")

    def test_bad_soa_field_count(self):
        with pytest.raises(ZoneError, match="SOA needs 7"):
            parse_zone_file("$ORIGIN x.org.\n@ IN SOA ns1 host 1 2 3\n")

    def test_error_carries_line_number(self):
        text = "$ORIGIN x.org.\n@ IN SOA ns1 host 1 2 3 4 5\nbad line here\n"
        with pytest.raises(ZoneError, match="line 3"):
            parse_zone_file(text)

    def test_inherit_without_previous_owner(self):
        with pytest.raises(ZoneError, match="no previous owner"):
            parse_zone_file("$ORIGIN x.org.\n   IN A 1.2.3.4\n")


class TestRoundTrip:
    def test_serialize_then_parse_preserves_records(self):
        original = parse_zone_file(SAMPLE)
        text = serialize_zone(original)
        reparsed = parse_zone_file(text)
        assert reparsed.apex == original.apex
        assert reparsed.record_count() == original.record_count()
        for record in original.records():
            if record.rtype == RRType.SOA:
                continue
            matches = reparsed.lookup(record.name, record.rtype)
            assert any(m.rdata == record.rdata for m in matches), record

    def test_serialized_form_uses_at_for_apex(self):
        text = serialize_zone(parse_zone_file(SAMPLE))
        assert "\n@ " in text or text.startswith("@ ") or "@" in text.splitlines()[3]

    def test_zone_records_iterator_sorted(self):
        zone = parse_zone_file(SAMPLE)
        owners = [record.name for record in zone.records()]
        assert owners == sorted(owners)
