"""End-to-end resolution tests over the root/TLD/auth hierarchy."""

import pytest

from repro.dns.hierarchy import DnsHierarchy
from repro.dns.message import RCode, ResourceRecord, RRType
from repro.dns.name import DomainName
from repro.dns.resolver import StepKind
from repro.dns.tld import TldRegistry
from repro.errors import ResolutionError, ZoneError

EXAMPLE = DomainName("example.com")
WWW = DomainName("www.example.com")


@pytest.fixture
def hierarchy():
    h = DnsHierarchy.build(TldRegistry.default())
    h.register_domain(EXAMPLE, "93.184.216.34")
    return h


class TestIterativeResolution:
    def test_full_walk_resolves(self, hierarchy):
        resolver = hierarchy.make_iterative_resolver()
        result = resolver.resolve(WWW)
        assert result.rcode == RCode.NOERROR
        assert result.addresses() == ["93.184.216.34"]

    def test_walk_visits_root_tld_auth(self, hierarchy):
        resolver = hierarchy.make_iterative_resolver()
        trace = resolver.resolve(WWW).trace
        assert trace.servers_visited() == ["root", "tld-com", "hosting"]
        assert trace.steps[0].kind == StepKind.REFERRAL
        assert trace.steps[1].kind == StepKind.REFERRAL
        assert trace.steps[2].kind == StepKind.ANSWER

    def test_unregistered_domain_is_nxdomain_at_tld(self, hierarchy):
        resolver = hierarchy.make_iterative_resolver()
        result = resolver.resolve(DomainName("www.never-registered.com"))
        assert result.is_nxdomain
        assert result.trace.steps[-1].server == "tld-com"
        assert result.negative_ttl == 900

    def test_unknown_tld_is_nxdomain_at_root(self, hierarchy):
        resolver = hierarchy.make_iterative_resolver()
        result = resolver.resolve(DomainName("foo.nonexistent-tld"))
        assert result.is_nxdomain
        assert result.trace.steps[-1].server == "root"

    def test_missing_host_is_nxdomain_at_auth(self, hierarchy):
        resolver = hierarchy.make_iterative_resolver()
        result = resolver.resolve(DomainName("nothere.example.com"))
        assert result.is_nxdomain
        assert result.trace.steps[-1].server == "hosting"

    def test_nodata_for_wrong_type(self, hierarchy):
        resolver = hierarchy.make_iterative_resolver()
        result = resolver.resolve(WWW, RRType.TXT)
        assert result.is_nodata
        assert not result.is_nxdomain

    def test_cname_chase_across_restart(self, hierarchy):
        zone = hierarchy.register_domain(DomainName("alias.net"), "10.0.0.1")
        zone.add(
            ResourceRecord(
                DomainName("go.alias.net"), RRType.CNAME, 60, str(WWW)
            )
        )
        resolver = hierarchy.make_iterative_resolver()
        result = resolver.resolve(DomainName("go.alias.net"))
        assert result.addresses() == ["93.184.216.34"]
        assert any(s.kind == StepKind.CNAME for s in result.trace.steps)

    def test_released_domain_becomes_nxdomain(self, hierarchy):
        resolver = hierarchy.make_iterative_resolver()
        assert resolver.resolve(WWW).rcode == RCode.NOERROR
        hierarchy.release_domain(EXAMPLE)
        result = resolver.resolve(WWW)
        assert result.is_nxdomain
        assert result.trace.steps[-1].server == "tld-com"

    def test_duplicate_registration_rejected(self, hierarchy):
        with pytest.raises(ZoneError):
            hierarchy.register_domain(EXAMPLE, "1.1.1.1")

    def test_only_slds_registrable(self, hierarchy):
        with pytest.raises(ZoneError):
            hierarchy.register_domain(DomainName("a.b.com"), "1.1.1.1")

    def test_release_unknown_rejected(self, hierarchy):
        with pytest.raises(ZoneError):
            hierarchy.release_domain(DomainName("ghost.com"))

    def test_unreachable_nameserver_raises(self, hierarchy):
        resolver = hierarchy.make_iterative_resolver()
        resolver.unregister_server(DomainName("ns1.example.com"))
        with pytest.raises(ResolutionError):
            resolver.resolve(WWW)

    def test_cname_loop_bounded(self, hierarchy):
        zone = hierarchy.register_domain(DomainName("loop.net"), "10.0.0.9")
        zone.add(
            ResourceRecord(DomainName("a.loop.net"), RRType.CNAME, 60, "b.loop.net")
        )
        zone.add(
            ResourceRecord(DomainName("b.loop.net"), RRType.CNAME, 60, "a.loop.net")
        )
        resolver = hierarchy.make_iterative_resolver()
        with pytest.raises(ResolutionError, match="CNAME chain"):
            resolver.resolve(DomainName("a.loop.net"))

    def test_cname_query_type_not_chased(self, hierarchy):
        zone = hierarchy.register_domain(DomainName("alias2.net"), "10.0.0.8")
        zone.add(
            ResourceRecord(
                DomainName("go.alias2.net"), RRType.CNAME, 60, str(WWW)
            )
        )
        resolver = hierarchy.make_iterative_resolver()
        result = resolver.resolve(DomainName("go.alias2.net"), RRType.CNAME)
        assert len(result.answers) == 1
        assert result.answers[0].rtype == RRType.CNAME

    def test_queries_sent_counter(self, hierarchy):
        resolver = hierarchy.make_iterative_resolver()
        resolver.resolve(WWW)
        assert resolver.queries_sent == 3  # root, TLD, authoritative


class TestRecursiveResolution:
    def test_positive_caching_avoids_upstream(self, hierarchy):
        resolver = hierarchy.make_recursive_resolver()
        first = resolver.resolve(WWW, now=0)
        assert not first.from_cache
        second = resolver.resolve(WWW, now=10)
        assert second.from_cache
        assert second.addresses() == ["93.184.216.34"]
        assert resolver.stats.upstream_resolutions == 1

    def test_cached_ttl_decays(self, hierarchy):
        resolver = hierarchy.make_recursive_resolver()
        resolver.resolve(WWW, now=0)
        cached = resolver.resolve(WWW, now=100)
        assert cached.answers[0].ttl == 200  # zone TTL 300 - 100

    def test_negative_caching_absorbs_repeat_nxdomains(self, hierarchy):
        resolver = hierarchy.make_recursive_resolver()
        gone = DomainName("www.not-registered.com")
        first = resolver.resolve(gone, now=0)
        assert first.is_nxdomain and not first.from_cache
        second = resolver.resolve(gone, now=60)
        assert second.is_nxdomain and second.from_cache
        assert resolver.stats.negative_cache_hits == 1
        assert resolver.stats.nxdomain_responses == 2

    def test_negative_cache_expiry_goes_upstream(self, hierarchy):
        resolver = hierarchy.make_recursive_resolver()
        gone = DomainName("www.not-registered.com")
        resolver.resolve(gone, now=0)
        resolver.resolve(gone, now=901)  # TLD negative TTL is 900
        assert resolver.stats.upstream_resolutions == 2

    def test_negative_cache_disabled_always_goes_upstream(self, hierarchy):
        resolver = hierarchy.make_recursive_resolver(use_negative_cache=False)
        gone = DomainName("www.not-registered.com")
        resolver.resolve(gone, now=0)
        resolver.resolve(gone, now=1)
        resolver.resolve(gone, now=2)
        assert resolver.stats.upstream_resolutions == 3

    def test_nodata_cached_separately(self, hierarchy):
        resolver = hierarchy.make_recursive_resolver()
        resolver.resolve(WWW, now=0, rtype=RRType.TXT)
        second = resolver.resolve(WWW, now=1, rtype=RRType.TXT)
        assert second.from_cache
        assert second.is_nodata
        # A-type queries still go upstream.
        third = resolver.resolve(WWW, now=2)
        assert not third.from_cache
