"""Fuzzing the wire decoder: garbage in, WireFormatError (or valid) out.

A sensor decodes whatever arrives on the wire; the decoder must never
raise anything other than :class:`WireFormatError` and never loop, no
matter the input.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import DnsMessage, RCode, ResourceRecord, RRType
from repro.dns.name import DomainName
from repro.dns.wire import decode_message, encode_message
from repro.errors import WireFormatError


class TestDecoderFuzz:
    @given(st.binary(max_size=256))
    @settings(max_examples=400)
    def test_random_bytes_never_crash(self, blob):
        try:
            decode_message(blob)
        except WireFormatError:
            pass

    @given(st.binary(min_size=12, max_size=64), st.integers(0, 63))
    @settings(max_examples=200)
    def test_bitflipped_valid_messages_never_crash(self, payload, flip_at):
        message = DnsMessage.make_query(DomainName("fuzz.example.com"), msg_id=1)
        wire = bytearray(encode_message(message))
        index = flip_at % len(wire)
        wire[index] ^= 0xFF
        try:
            decode_message(bytes(wire))
        except WireFormatError:
            pass

    @given(st.integers(0, 0xFFFF), st.sampled_from(list(RCode)))
    def test_double_roundtrip_is_stable(self, msg_id, rcode):
        query = DnsMessage.make_query(DomainName("a.b.example.com"), msg_id=msg_id)
        response = query.make_response(
            rcode=rcode,
            answers=[
                ResourceRecord(DomainName("a.b.example.com"), RRType.A, 300, "1.2.3.4")
            ]
            if rcode == RCode.NOERROR
            else [],
        )
        once = encode_message(response)
        twice = encode_message(decode_message(once))
        assert once == twice
