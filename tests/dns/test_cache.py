"""Tests for the resolver cache, especially RFC 2308 negative caching."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.cache import CacheOutcome, ResolverCache
from repro.dns.message import ResourceRecord, RRType
from repro.dns.name import DomainName

WWW = DomainName("www.example.com")
GONE = DomainName("gone.example.com")


def a_record(ttl=300):
    return ResourceRecord(WWW, RRType.A, ttl, "1.2.3.4")


class TestPositiveCaching:
    def test_miss_then_hit(self):
        cache = ResolverCache()
        outcome, _ = cache.probe(WWW, RRType.A, now=0)
        assert outcome == CacheOutcome.MISS
        cache.store_positive(WWW, RRType.A, [a_record()], now=0)
        outcome, entry = cache.probe(WWW, RRType.A, now=10)
        assert outcome == CacheOutcome.POSITIVE
        assert entry.remaining_ttl(10) == 290

    def test_expiry(self):
        cache = ResolverCache()
        cache.store_positive(WWW, RRType.A, [a_record(ttl=60)], now=0)
        outcome, _ = cache.probe(WWW, RRType.A, now=60)
        assert outcome == CacheOutcome.MISS

    def test_entry_ttl_is_min_record_ttl(self):
        cache = ResolverCache()
        entry = cache.store_positive(
            WWW, RRType.A, [a_record(ttl=300), a_record(ttl=30)], now=0
        )
        assert entry.ttl == 30

    def test_empty_positive_rejected(self):
        cache = ResolverCache()
        with pytest.raises(ValueError):
            cache.store_positive(WWW, RRType.A, [], now=0)


class TestNegativeCaching:
    def test_nxdomain_cached_for_all_types(self):
        cache = ResolverCache()
        cache.store_nxdomain(GONE, negative_ttl=900, now=0)
        for rtype in (RRType.A, RRType.AAAA, RRType.MX, RRType.TXT):
            outcome, entry = cache.probe(GONE, rtype, now=100)
            assert outcome == CacheOutcome.NEGATIVE_NXDOMAIN
            assert entry.remaining_ttl(100) == 800

    def test_nodata_cached_per_type(self):
        cache = ResolverCache()
        cache.store_nodata(WWW, RRType.TXT, negative_ttl=900, now=0)
        outcome, _ = cache.probe(WWW, RRType.TXT, now=10)
        assert outcome == CacheOutcome.NEGATIVE_NODATA
        # Other types are unaffected by a NODATA entry.
        outcome, _ = cache.probe(WWW, RRType.A, now=10)
        assert outcome == CacheOutcome.MISS

    def test_negative_ttl_capped(self):
        cache = ResolverCache(max_negative_ttl=3600)
        entry = cache.store_nxdomain(GONE, negative_ttl=86400, now=0)
        assert entry.ttl == 3600

    def test_negative_expiry(self):
        cache = ResolverCache()
        cache.store_nxdomain(GONE, negative_ttl=60, now=0)
        outcome, _ = cache.probe(GONE, RRType.A, now=61)
        assert outcome == CacheOutcome.MISS

    def test_stats_count_negative_hits(self):
        cache = ResolverCache()
        cache.store_nxdomain(GONE, negative_ttl=900, now=0)
        cache.probe(GONE, RRType.A, now=1)
        cache.probe(WWW, RRType.A, now=1)
        assert cache.stats.negative_hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio() == 0.5


class TestEvictionAndFlush:
    def test_capacity_eviction(self):
        cache = ResolverCache(max_entries=2)
        for i in range(3):
            name = DomainName(f"host{i}.example.com")
            cache.store_positive(
                name,
                RRType.A,
                [ResourceRecord(name, RRType.A, 100 + i, "1.1.1.1")],
                now=0,
            )
        assert len(cache) == 2
        # host0 expired soonest and was evicted.
        outcome, _ = cache.probe(DomainName("host0.example.com"), RRType.A, now=0)
        assert outcome == CacheOutcome.MISS

    def test_flush_name(self):
        cache = ResolverCache()
        cache.store_positive(WWW, RRType.A, [a_record()], now=0)
        cache.store_nodata(WWW, RRType.TXT, 900, now=0)
        assert cache.flush_name(WWW) == 2
        assert len(cache) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ResolverCache(max_entries=0)

    @given(st.integers(1, 50), st.integers(2, 30))
    def test_capacity_never_exceeded(self, capacity, inserts):
        cache = ResolverCache(max_entries=capacity)
        for i in range(inserts):
            name = DomainName(f"h{i}.test")
            cache.store_positive(
                name, RRType.A, [ResourceRecord(name, RRType.A, 60, "1.1.1.1")], now=0
            )
        assert len(cache) <= capacity
