"""Tests for the DNS message model."""

import pytest

from repro.dns.message import (
    DnsMessage,
    Question,
    RCode,
    ResourceRecord,
    RRType,
    make_soa_record,
)
from repro.dns.name import DomainName


@pytest.fixture
def query():
    return DnsMessage.make_query(DomainName("www.example.com"), msg_id=42)


class TestQueryConstruction:
    def test_query_shape(self, query):
        assert not query.is_response
        assert query.msg_id == 42
        assert query.question == Question(DomainName("www.example.com"), RRType.A)

    def test_question_required(self):
        with pytest.raises(ValueError):
            DnsMessage().question


class TestResponses:
    def test_response_mirrors_query(self, query):
        response = query.make_response()
        assert response.is_response
        assert response.msg_id == 42
        assert response.questions == query.questions

    def test_cannot_respond_to_response(self, query):
        with pytest.raises(ValueError):
            query.make_response().make_response()

    def test_nxdomain_classification(self, query):
        response = query.make_response(rcode=RCode.NXDOMAIN)
        assert response.is_nxdomain()
        assert not response.is_nodata()

    def test_nodata_is_not_nxdomain(self, query):
        response = query.make_response()  # NOERROR, empty answers
        assert response.is_nodata()
        assert not response.is_nxdomain()

    def test_answered_response_is_neither(self, query):
        rr = ResourceRecord(
            DomainName("www.example.com"), RRType.A, 300, "93.184.216.34"
        )
        response = query.make_response(answers=[rr])
        assert not response.is_nodata()
        assert not response.is_nxdomain()

    def test_referral_detection(self, query):
        ns = ResourceRecord(
            DomainName("example.com"), RRType.NS, 172800, "ns1.example.com"
        )
        referral = query.make_response(authorities=[ns], authoritative=False)
        assert referral.is_referral()
        authoritative = query.make_response(authorities=[ns], authoritative=True)
        assert not authoritative.is_referral()


class TestSoa:
    def test_soa_minimum_ttl_uses_min_of_ttl_and_minimum(self, query):
        soa = make_soa_record(DomainName("example.com"), ttl=7200, minimum=900)
        response = query.make_response(rcode=RCode.NXDOMAIN, authorities=[soa])
        assert response.soa_minimum_ttl() == 900

        soa_low_ttl = make_soa_record(DomainName("example.com"), ttl=60, minimum=900)
        response = query.make_response(rcode=RCode.NXDOMAIN, authorities=[soa_low_ttl])
        assert response.soa_minimum_ttl() == 60

    def test_soa_minimum_absent_without_soa(self, query):
        assert query.make_response(rcode=RCode.NXDOMAIN).soa_minimum_ttl() is None

    def test_soa_requires_structured_data(self):
        with pytest.raises(ValueError):
            ResourceRecord(DomainName("example.com"), RRType.SOA, 300, "free-form")


class TestRecords:
    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord(DomainName("example.com"), RRType.A, -1, "1.2.3.4")

    def test_with_ttl_copies(self):
        rr = ResourceRecord(DomainName("example.com"), RRType.A, 300, "1.2.3.4")
        assert rr.with_ttl(10).ttl == 10
        assert rr.ttl == 300
