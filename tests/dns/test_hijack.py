"""Tests for NXDomain hijacking (§7)."""

import pytest

from repro.dns.hijack import HijackingResolver, WILD_HIJACK_RATE
from repro.dns.hierarchy import DnsHierarchy
from repro.dns.message import RCode
from repro.dns.name import DomainName
from repro.dns.tld import TldRegistry
from repro.rand import make_rng

GONE = DomainName("www.long-gone.com")
ALIVE = DomainName("www.alive.com")


@pytest.fixture
def hierarchy():
    h = DnsHierarchy.build(TldRegistry.default())
    h.register_domain(DomainName("alive.com"), "10.0.0.1")
    return h


def make_hijacker(hierarchy, rate, seed=1):
    return HijackingResolver(
        hierarchy.make_recursive_resolver(), make_rng(seed), hijack_rate=rate
    )


class TestHijackingResolver:
    def test_rate_validation(self, hierarchy):
        with pytest.raises(ValueError):
            make_hijacker(hierarchy, -0.1)
        with pytest.raises(ValueError):
            make_hijacker(hierarchy, 1.1)

    def test_zero_rate_is_transparent(self, hierarchy):
        resolver = make_hijacker(hierarchy, 0.0)
        result = resolver.resolve(GONE, now=0)
        assert result.is_nxdomain
        assert resolver.stats.nxdomains_hijacked == 0

    def test_full_rate_rewrites_every_nxdomain(self, hierarchy):
        resolver = make_hijacker(hierarchy, 1.0)
        result = resolver.resolve(GONE, now=0)
        assert result.rcode == RCode.NOERROR
        assert result.addresses() == [resolver.ad_server_address]
        assert resolver.is_ad_answer(result)
        assert resolver.stats.hijack_fraction == 1.0

    def test_positive_answers_untouched(self, hierarchy):
        resolver = make_hijacker(hierarchy, 1.0)
        result = resolver.resolve(ALIVE, now=0)
        assert result.addresses() == ["10.0.0.1"]
        assert not resolver.is_ad_answer(result)
        assert resolver.stats.nxdomains_seen == 0

    def test_wild_rate_hijacks_roughly_5_percent(self, hierarchy):
        resolver = make_hijacker(hierarchy, WILD_HIJACK_RATE, seed=3)
        # Distinct names defeat the negative cache so each query is an
        # independent NXDOMAIN outcome.
        for i in range(1000):
            resolver.resolve(DomainName(f"gone-{i}.com"), now=i)
        assert resolver.stats.nxdomains_seen == 1000
        assert 20 <= resolver.stats.nxdomains_hijacked <= 90

    def test_hijack_applies_to_negative_cache_hits(self, hierarchy):
        resolver = make_hijacker(hierarchy, 1.0)
        resolver.inner.resolve(GONE, now=0)  # prime the negative cache
        result = resolver.resolve(GONE, now=10)
        assert result.from_cache
        assert resolver.is_ad_answer(result)

    def test_stats_fraction_empty(self, hierarchy):
        assert make_hijacker(hierarchy, 0.5).stats.hijack_fraction == 0.0
