"""Cross-substrate integration tests.

These exercise the seams the unit suites can't: registration state
flowing through live resolution into the passive DNS channel, the
sinkhole consuming the channel, and whole-study determinism.
"""

import pytest

from repro.blocklist.categories import ThreatCategory
from repro.blocklist.store import BlocklistStore
from repro.clock import SECONDS_PER_DAY
from repro.core.sinkhole import NxdomainSinkhole, SinkholeVerdict
from repro.core.study import NxdomainStudy, StudyConfig
from repro.dga.detector import DgaDetector
from repro.dns.hierarchy import DnsHierarchy
from repro.dns.name import DomainName
from repro.dns.tld import TldRegistry
from repro.passivedns.channel import SieChannel
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.sensor import Sensor, SensorTappedResolver
from repro.whois.registry import Registry

YEAR = 365 * SECONDS_PER_DAY
DAY = SECONDS_PER_DAY


class TestLifecycleToPassiveDns:
    """Registration → expiry → NXDomain observations, end to end."""

    @pytest.fixture
    def world(self):
        hierarchy = DnsHierarchy.build(TldRegistry.default())
        registry = Registry(hierarchy=hierarchy)
        channel = SieChannel()
        db = PassiveDnsDatabase()
        channel.subscribe(db.ingest)
        resolver = SensorTappedResolver(
            hierarchy.make_recursive_resolver(), Sensor("tap", channel)
        )
        return registry, resolver, db

    def test_expired_domain_reaches_database_with_whois_history(self, world):
        registry, resolver, db = world
        domain = DomainName("fading-star.com")
        registry.register(domain, owner="h-1", at=0)

        # Queried while live: nothing on the NX channel.
        resolver.resolve(DomainName("www.fading-star.com"), now=10 * DAY)
        assert db.unique_domains() == 0

        # Expire past the redemption entry; repeat daily queries now
        # produce NXDomains (negative TTL is 900s, so daily queries
        # are all upstream-visible).
        nx_at = registry.policy.grace_end(YEAR)
        registry.tick(nx_at)
        for day in range(5):
            resolver.resolve(
                DomainName("www.fading-star.com"), now=nx_at + day * DAY
            )
        profile = db.profile(domain)
        assert profile is not None
        assert profile.total_queries == 5

        # And the WHOIS join classifies it as expired, not never-registered.
        join = registry.history.join([domain, DomainName("never-was.com")])
        assert join.hit_count == 1
        assert join.never_registered_count == 1

    def test_sinkhole_consumes_live_channel(self, world):
        registry, resolver, db = world
        hierarchy = resolver.resolver.iterative  # noqa: F841 - documents wiring
        channel = resolver.sensor.channel
        detector = DgaDetector.train_default(
            seed=2, samples_per_family=80, threshold=0.8
        )
        blocklist = BlocklistStore()
        blocklist.add(DomainName("old-malware.net"), ThreatCategory.MALWARE)
        sinkhole = NxdomainSinkhole(detector, blocklist=blocklist)
        channel.subscribe(sinkhole.ingest)

        resolver.resolve(DomainName("www.old-malware.net"), now=0)
        resolver.resolve(DomainName("paypal-verify.com"), now=5)
        resolver.resolve(DomainName("quiet-meadow.org"), now=9)

        assert sinkhole.lookup(DomainName("old-malware.net")).verdict == (
            SinkholeVerdict.BLOCKLISTED
        )
        assert sinkhole.lookup(DomainName("paypal-verify.com")).verdict == (
            SinkholeVerdict.SQUATTING
        )
        report = sinkhole.report()
        assert report.total_domains() == 3


class TestStudyDeterminism:
    CONFIG = StudyConfig(
        trace_domains=800,
        squat_count=30,
        honeypot_scale=0.0005,
        expiry_timeline_sample=50,
        dga_samples_per_family=60,
    )

    def test_same_seed_same_report(self):
        a = NxdomainStudy(seed=6, config=self.CONFIG).full_report()
        b = NxdomainStudy(seed=6, config=self.CONFIG).full_report()
        assert a == b

    def test_different_seed_different_report(self):
        a = NxdomainStudy(seed=6, config=self.CONFIG).full_report()
        b = NxdomainStudy(seed=7, config=self.CONFIG).full_report()
        assert a != b
