"""Hypothesis properties for the fault harness's determinism contract.

The whole point of :mod:`repro.faults` is that a (plan, seed, event
stream) triple is bit-reproducible: same schedule decisions, same
injection log, same fingerprint — and that distinct injectors draw
from decorrelated streams so adding one fault type never perturbs the
decisions of another.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.clock import SECONDS_PER_DAY, STUDY_START, date_to_epoch
from repro.errors import InjectedFaultError, TransientStoreError
from repro.faults import FaultPlan

seeds = st.integers(min_value=0, max_value=2**31 - 1)
rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
T0 = date_to_epoch(STUDY_START)


def _step(schedule, index):
    """Drive every injector once for synthetic event ``index``."""
    timestamp = T0 + index * 3_600
    schedule.burst.factor(timestamp)
    if schedule.drop.should_drop(timestamp):
        return
    schedule.duplicate.copies(timestamp)
    schedule.reorder.push(index)
    try:
        schedule.crash.maybe_crash(f"event-{index}")
    except InjectedFaultError:
        pass
    try:
        schedule.store.check(f"event-{index}")
    except TransientStoreError:
        pass


def _drive(schedule, start=0, stop=200):
    for index in range(start, stop):
        _step(schedule, index)


@settings(deadline=None, max_examples=30)
@given(seed=seeds, rate=rates)
def test_same_seed_means_identical_injection_log(seed, rate):
    plan = FaultPlan(
        drop_rate=rate,
        duplicate_rate=rate / 2,
        reorder_rate=rate / 3,
        subscriber_crash_rate=rate / 4,
        store_failure_rate=rate / 5,
        dropout_windows=2,
        burst_episodes=1,
    )
    first = plan.schedule(seed)
    second = plan.schedule(seed)
    _drive(first)
    _drive(second)
    assert first.log.lines() == second.log.lines()
    assert first.fingerprint() == second.fingerprint()
    assert first.counters() == second.counters()


@settings(deadline=None, max_examples=30)
@given(seed=seeds)
def test_window_placement_is_seed_deterministic(seed):
    plan = FaultPlan(dropout_windows=3, dropout_window_days=2.0)
    assert (
        plan.schedule(seed).dropout_windows
        == plan.schedule(seed).dropout_windows
    )
    for window in plan.schedule(seed).dropout_windows:
        assert window.duration == int(2.0 * SECONDS_PER_DAY)
        assert plan.horizon_start <= window.start < plan.horizon_end


@settings(deadline=None, max_examples=30)
@given(seed=seeds)
def test_injector_streams_are_decorrelated(seed):
    plan = FaultPlan(drop_rate=0.5, duplicate_rate=0.5)
    schedule = plan.schedule(seed)
    names = schedule._INJECTOR_LABELS
    injector_seeds = [schedule.injector_seed(name) for name in names]
    assert len(set(injector_seeds)) == len(names)


@settings(deadline=None, max_examples=20)
@given(seed=seeds, rate=st.floats(min_value=0.0, max_value=0.5))
def test_drop_decisions_do_not_depend_on_other_injectors(seed, rate):
    """Drop outcomes are identical whether or not duplicates are on."""
    lean = FaultPlan(drop_rate=rate)
    rich = FaultPlan(drop_rate=rate, duplicate_rate=0.9, store_failure_rate=0.9)
    timestamps = [T0 + i * SECONDS_PER_DAY for i in range(100)]
    lean_schedule = lean.schedule(seed)
    rich_schedule = rich.schedule(seed)
    lean_drops = [lean_schedule.drop.should_drop(t) for t in timestamps]
    rich_drops = [rich_schedule.drop.should_drop(t) for t in timestamps]
    assert lean_drops == rich_drops


@settings(deadline=None, max_examples=30)
@given(seed=seeds)
def test_fast_forward_realigns_a_fresh_schedule(seed):
    """Interrupt-then-resume takes exactly the uninterrupted decisions."""
    plan = FaultPlan(drop_rate=0.3, duplicate_rate=0.2, store_failure_rate=0.1)
    full = plan.schedule(seed)
    _drive(full, stop=120)

    head = plan.schedule(seed)
    _drive(head, stop=60)
    counters = head.counters()

    resumed = plan.schedule(seed)
    resumed.fast_forward(counters)
    _drive(resumed, start=60, stop=120)

    # The resumed run's injected faults must equal the uninterrupted
    # run's faults for events 60..119: same actions with the same
    # details, in the same order.  (Decision indices restart on resume,
    # so compare the "action detail" part of each rendered line.)
    head_len = len(head.log)
    full_lines = [e.render().split(None, 1)[1] for e in full.log.events()]
    resumed_lines = [e.render().split(None, 1)[1] for e in resumed.log.events()]
    assert full_lines[head_len:] == resumed_lines
