"""Unit tests for the individual fault injectors."""

import pytest

from repro.clock import SECONDS_PER_DAY, STUDY_START, date_to_epoch
from repro.errors import (
    ConfigError,
    InjectedFaultError,
    TransientStoreError,
)
from repro.faults import FaultPlan
from repro.faults.injectors import (
    CorruptionInjector,
    DropInjector,
    DuplicateInjector,
    InjectionLog,
    ReorderInjector,
)
from repro.rand import make_rng

T0 = date_to_epoch(STUDY_START)


def test_plan_rejects_out_of_range_rates():
    with pytest.raises(ConfigError):
        FaultPlan(drop_rate=1.5)
    with pytest.raises(ConfigError):
        FaultPlan(store_failure_rate=-0.1)
    with pytest.raises(ConfigError):
        FaultPlan(reorder_depth=0)
    with pytest.raises(ConfigError):
        FaultPlan(horizon_start=100, horizon_end=100)


def test_null_plan_is_null_and_injects_nothing():
    plan = FaultPlan()
    assert plan.is_null
    schedule = plan.schedule(0)
    for index in range(50):
        assert not schedule.drop.should_drop(T0 + index)
        assert schedule.duplicate.copies(T0 + index) == 1
        assert schedule.burst.factor(T0 + index) == 1
        schedule.crash.maybe_crash("x")
        schedule.store.check("x")
    assert len(schedule.log) == 0
    assert schedule.injected_total() == 0


def test_loss_plan_is_not_null():
    assert not FaultPlan.loss(0.05).is_null
    with pytest.raises(ConfigError):
        FaultPlan.loss(1.5)


def test_dropout_window_always_drops():
    log = InjectionLog()
    injector = DropInjector(
        0.0, [(T0, T0 + SECONDS_PER_DAY)], make_rng(1), log
    )
    assert injector.should_drop(T0 + 100)
    assert not injector.should_drop(T0 + SECONDS_PER_DAY)
    assert injector.window_drops == 1
    assert injector.random_drops == 0
    assert injector.draws == 2  # one draw per decision, window or not


def test_random_drop_rate_extremes():
    log = InjectionLog()
    never = DropInjector(0.0, [], make_rng(1), log)
    always = DropInjector(1.0, [], make_rng(1), log)
    assert not any(never.should_drop(T0 + i) for i in range(100))
    assert all(always.should_drop(T0 + i) for i in range(100))


def test_corruption_flips_exactly_one_byte():
    log = InjectionLog()
    injector = CorruptionInjector(1.0, make_rng(3), log)
    original = bytes(range(64))
    mangled = injector.corrupt(original)
    assert mangled is not original
    diffs = [i for i, (a, b) in enumerate(zip(original, mangled)) if a != b]
    assert len(diffs) == 1
    assert len(mangled) == len(original)


def test_corruption_returns_same_object_when_not_firing():
    log = InjectionLog()
    injector = CorruptionInjector(0.0, make_rng(3), log)
    original = b"\x01\x02\x03"
    assert injector.corrupt(original) is original
    assert injector.corrupt(b"") == b""


def test_duplicate_copies_is_one_or_two():
    log = InjectionLog()
    injector = DuplicateInjector(0.5, make_rng(4), log)
    copies = {injector.copies(T0 + i) for i in range(200)}
    assert copies == {1, 2}


def test_reorder_holds_then_releases_in_burst():
    log = InjectionLog()
    injector = ReorderInjector(1.0, 2, make_rng(5), log)
    assert injector.push("a") == []
    assert injector.push("b") == []
    assert injector.held == 2
    # Buffer full: the next item flushes everything, new item first.
    assert injector.push("c") == ["c", "a", "b"]
    assert injector.held == 0
    assert injector.push("d") == []
    assert injector.flush() == ["d"]
    assert injector.flush() == []


def test_reorder_rate_zero_is_passthrough():
    log = InjectionLog()
    injector = ReorderInjector(0.0, 4, make_rng(5), log)
    for item in ("a", "b", "c"):
        assert injector.push(item) == [item]


def test_crash_injector_raises_and_wraps():
    plan = FaultPlan(subscriber_crash_rate=1.0)
    schedule = plan.schedule(9)
    with pytest.raises(InjectedFaultError):
        schedule.crash.maybe_crash("tap")
    seen = []
    wrapped = schedule.crash.wrap(seen.append, context="tap")
    with pytest.raises(InjectedFaultError):
        wrapped("item")
    assert seen == []


def test_store_injector_raises_transient_store_error():
    plan = FaultPlan(store_failure_rate=1.0)
    schedule = plan.schedule(9)
    with pytest.raises(TransientStoreError):
        schedule.store.check("write")


def test_burst_factor_only_inside_windows():
    plan = FaultPlan(burst_episodes=1, burst_days=2.0, burst_multiplier=7)
    schedule = plan.schedule(11)
    (window,) = schedule.burst_windows
    assert schedule.burst.factor(window.start) == 7
    assert schedule.burst.factor(window.end) == 1
    assert schedule.burst.draws == 0  # purely window-driven


def test_fast_forward_rejects_negative_and_unknown():
    schedule = FaultPlan(drop_rate=0.5).schedule(1)
    with pytest.raises(ConfigError):
        schedule.drop.fast_forward(-1)
    with pytest.raises(ConfigError):
        schedule.fast_forward({"bogus": 3})
    with pytest.raises(ConfigError):
        schedule.injector_seed("bogus")


def test_log_fingerprint_tracks_content():
    plan = FaultPlan(drop_rate=1.0)
    a = plan.schedule(1)
    b = plan.schedule(1)
    a.drop.should_drop(T0)
    assert a.fingerprint() != b.fingerprint()
    b.drop.should_drop(T0)
    assert a.fingerprint() == b.fingerprint()
    assert a.log.lines() == b.log.lines()
    assert a.summary() == b.summary()


# -- storage-fault injectors (crash-at-a-write-boundary) --------------------


def _storage(cls, at, seed=0):
    from repro.faults.injectors import InjectionLog

    return cls(make_rng(seed), InjectionLog(), at=at)


def test_storage_probe_counts_boundaries_without_firing():
    from repro.faults.injectors import StorageFaultInjector

    probe = _storage(StorageFaultInjector, at=None)
    for index in range(10):
        action = probe.decide("write", f"/f{index}", 100)
        assert not (action.crash_before or action.crash_after)
        assert action.truncate_to is None and action.flip is None
        assert not action.lose
    assert probe.decisions == 10
    assert not probe.fired


def test_storage_injector_fires_exactly_once_at_pinned_boundary():
    from repro.faults.injectors import TornWriteInjector

    injector = _storage(TornWriteInjector, at=2)
    assert not injector.decide("write", "/a", 10).crash_after
    assert not injector.decide("fsync", "/a", 0).crash_before
    action = injector.decide("write", "/b", 64)
    assert injector.fired
    assert action.crash_after and action.truncate_to is not None
    assert 0 <= action.truncate_to < 64
    # Later boundaries are untouched: the injector fires once.
    follow_up = injector.decide("write", "/c", 64)
    assert not (follow_up.crash_after or follow_up.crash_before)
    assert follow_up.truncate_to is None


def test_torn_write_crashes_before_non_byte_boundaries():
    from repro.faults.injectors import TornWriteInjector

    injector = _storage(TornWriteInjector, at=0)
    assert injector.decide("replace", "/a", 0).crash_before


def test_bit_flip_corrupts_without_crashing():
    from repro.faults.injectors import BitFlipInjector

    injector = _storage(BitFlipInjector, at=0)
    action = injector.decide("write", "/a", 32)
    assert action.flip is not None
    position, mask = action.flip
    assert 0 <= position < 32
    assert mask and mask & (mask - 1) == 0  # single-bit mask
    assert not (action.crash_before or action.crash_after)


def test_fsync_loss_rolls_back_and_crashes():
    from repro.faults.injectors import FsyncLossInjector

    injector = _storage(FsyncLossInjector, at=0)
    action = injector.decide("fsync", "/a", 0)
    assert action.lose and action.crash_after


def test_unlink_is_an_enumerable_boundary():
    from repro.faults.injectors import STORAGE_OPS, StorageFaultInjector

    assert "unlink" in STORAGE_OPS
    probe = _storage(StorageFaultInjector, at=None)
    probe.decide("unlink", "/a", 0)
    assert probe.decisions == 1 and not probe.fired


def test_torn_write_crashes_before_unlink():
    from repro.faults.injectors import TornWriteInjector

    injector = _storage(TornWriteInjector, at=0)
    action = injector.decide("unlink", "/a", 0)
    assert action.crash_before and not action.lose


def test_bit_flip_crashes_after_unlink():
    from repro.faults.injectors import BitFlipInjector

    injector = _storage(BitFlipInjector, at=0)
    action = injector.decide("unlink", "/a", 0)
    assert action.crash_after and action.flip is None and not action.lose


def test_fsync_loss_loses_the_unlink_then_crashes():
    from repro.faults.injectors import FsyncLossInjector

    injector = _storage(FsyncLossInjector, at=0)
    action = injector.decide("unlink", "/a", 0)
    assert action.lose and action.crash_after


def test_storage_injector_rejects_bad_inputs():
    from repro.errors import InjectedCrashError
    from repro.faults.injectors import StorageFaultInjector, TornWriteInjector

    with pytest.raises(ConfigError):
        _storage(StorageFaultInjector, at=-1)
    injector = _storage(TornWriteInjector, at=0)
    with pytest.raises(ConfigError):
        injector.decide("chmod", "/a", 0)
    with pytest.raises(InjectedCrashError):
        injector.crash("unit-test")
    assert injector.injected == 1


# -- serving-tier injectors ------------------------------------------------


def test_slow_worker_delay_is_all_or_nothing():
    from repro.faults.injectors import SlowWorkerInjector

    log = InjectionLog()
    injector = SlowWorkerInjector(0.5, 30, make_rng(5), log)
    delays = [injector.delay(f"q{i}") for i in range(200)]
    assert set(delays) <= {0, 30}
    assert 0 < sum(d > 0 for d in delays) < 200
    assert injector.decisions == 200
    assert injector.injected == sum(d > 0 for d in delays)
    with pytest.raises(ConfigError):
        SlowWorkerInjector(0.1, 0, make_rng(5), InjectionLog())


def test_stuck_worker_rate_zero_and_one():
    from repro.faults.injectors import StuckWorkerInjector

    never = StuckWorkerInjector(0.0, make_rng(1), InjectionLog())
    always = StuckWorkerInjector(1.0, make_rng(1), InjectionLog())
    assert not any(never.stuck(f"q{i}") for i in range(50))
    assert all(always.stuck(f"q{i}") for i in range(50))


def test_query_burst_fans_out_only_inside_windows():
    from repro.faults.injectors import QueryBurstInjector

    windows = [(T0 + 100, T0 + 200), (T0 + 500, T0 + 600)]
    injector = QueryBurstInjector(windows, 6, make_rng(2), InjectionLog())
    assert injector.factor(T0 + 150) == 6
    assert injector.factor(T0 + 550) == 6
    assert injector.factor(T0 + 300) == 1
    assert injector.factor(T0 + 200) == 1  # end is exclusive
    assert injector.injected == 2
    with pytest.raises(ConfigError):
        QueryBurstInjector(windows, 0, make_rng(2), InjectionLog())


def test_overload_plan_schedules_serving_injectors():
    plan = FaultPlan.overload(0.2, bursts=2, fanout=4)
    assert not plan.is_null
    schedule = plan.schedule(seed=9)
    assert len(schedule.query_burst_windows) == 2
    assert schedule.query_burst.fanout == 4
    assert schedule.slow_worker.rate == 0.2
    assert schedule.stuck_worker.rate == 0.05
    # Same (plan, seed) -> bit-identical serving-fault decisions.
    replay = plan.schedule(seed=9)
    first = [schedule.slow_worker.delay(f"q{i}") for i in range(64)]
    second = [replay.slow_worker.delay(f"q{i}") for i in range(64)]
    assert first == second
    assert schedule.query_burst_windows == replay.query_burst_windows
