"""Degraded traces and checkpointed faulted replay."""

import pytest

from repro.faults import FaultPlan
from repro.workloads.persistence import replay_with_checkpoints
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig

PLAN = FaultPlan.loss(0.08)


@pytest.fixture(scope="module")
def trace():
    config = TraceConfig(total_domains=1_500, squat_count=60)
    return NxdomainTraceGenerator(seed=9, config=config).generate()


def test_degraded_returns_a_new_trace_with_losses(trace):
    degraded, stats = trace.degraded(PLAN, seed=5)
    assert degraded is not trace
    assert degraded.nx_db is not trace.nx_db
    assert stats.dropped > 0
    assert degraded.nx_db.total_responses() < trace.nx_db.total_responses()
    # The population itself is untouched; only the collection degrades.
    assert degraded.population is trace.population


def test_degraded_is_deterministic(trace):
    first, _ = trace.degraded(PLAN, seed=5)
    second, _ = trace.degraded(PLAN, seed=5)
    assert first.nx_db.fingerprint() == second.nx_db.fingerprint()
    other, _ = trace.degraded(PLAN, seed=6)
    assert other.nx_db.fingerprint() != first.nx_db.fingerprint()


def test_interrupted_replay_resumes_to_the_same_result(trace, tmp_path):
    direct, _ = trace.degraded(PLAN, seed=5)

    interrupted, stats = replay_with_checkpoints(
        trace, PLAN, seed=5, directory=tmp_path, every=500, stop_after=2_000
    )
    assert interrupted is None
    assert stats.checkpoints > 0

    resumed, final = replay_with_checkpoints(
        trace, PLAN, seed=5, directory=tmp_path, every=500
    )
    assert resumed is not None
    assert resumed.nx_db.fingerprint() == direct.nx_db.fingerprint()
    assert final.offered == trace.nx_db.row_count()
