"""End-to-end tests: generated honeypot traffic → categorizer → Table 1."""

import pytest

from repro.honeypot.categorize import (
    Category,
    Subcategory,
    TrafficCategorizer,
    category_counts,
    subcategory_counts,
)
from repro.honeypot.reverse_ip import ReverseIpTable
from repro.honeypot.webfilter import WebFilter
from repro.rand import make_rng
from repro.workloads.control import (
    generate_control_traffic,
    generate_no_hosting_baseline,
)
from repro.workloads.domains import (
    PAPER_TABLE1,
    TABLE1_FIELDS,
    paper_row_total,
    registered_domain_profiles,
)
from repro.workloads.honeytraffic import HoneypotTrafficGenerator


@pytest.fixture(scope="module")
def setup():
    reverse_ip = ReverseIpTable()
    web_filter = WebFilter()
    generator = HoneypotTrafficGenerator(
        make_rng(11), scale=0.004, reverse_ip=reverse_ip, web_filter=web_filter
    )
    categorizer = TrafficCategorizer(reverse_ip=reverse_ip, web_filter=web_filter)
    return generator, categorizer


class TestProfiles:
    def test_nineteen_domains(self):
        profiles = registered_domain_profiles()
        assert len(profiles) == 19
        assert sum(1 for p in profiles if p.malicious) == 8

    def test_paper_total(self):
        # The table's printed Total column disagrees with its own cells
        # by 74 requests (typesetting artifacts in two rows); we encode
        # the cells, so the sum lands within that slack.
        assert abs(sum(paper_row_total(d) for d in PAPER_TABLE1) - 5_925_311) < 100

    def test_scaled_counts_floor(self):
        profile = registered_domain_profiles()[-1]
        scaled = profile.scaled_counts(1e-6)
        assert all(v >= 1 for k, v in scaled.items() if profile.counts[k] > 0)
        with pytest.raises(ValueError):
            profile.scaled_counts(0)

    def test_flags(self):
        by_name = {p.domain: p for p in registered_domain_profiles()}
        assert by_name["gpclick.com"].botnet_target
        assert by_name["conf-cdn.com"].email_crawler_heavy
        assert by_name["1x-sport-bk7.com"].polling_fleet
        assert by_name["resheba.online"].region == "ru"


class TestGeneratedClassification:
    """Each emitter's traffic must classify back into its subcategory."""

    @pytest.mark.parametrize("field", TABLE1_FIELDS, ids=lambda f: f.value)
    def test_per_subcategory_accuracy(self, setup, field):
        generator, categorizer = setup
        profiles = {p.domain: p for p in registered_domain_profiles()}
        # Use a mid-size domain for generic behaviour plus the special
        # ones where the pattern lives.
        for name in ("porno-komiksy.com", "gpclick.com", "conf-cdn.com"):
            profile = profiles[name]
            count = 40
            emitter = generator._emitters[field]
            requests = emitter(profile, count)
            categorized = categorizer.categorize_many(requests, stream_threshold=None)
            matched = sum(1 for c in categorized if c.subcategory == field)
            assert matched / len(categorized) >= 0.9, (name, field)

    def test_polling_fleet_needs_stream_reclassifier(self, setup):
        generator, categorizer = setup
        profile = next(
            p for p in registered_domain_profiles() if p.polling_fleet
        )
        requests = generator._emit_script_software(profile, 600)
        without = categorizer.categorize_many(requests, stream_threshold=None)
        with_streams = categorizer.categorize_many(requests, stream_threshold=50)
        assert category_counts(without)[Category.USER_VISIT] == 600
        counts = category_counts(with_streams)
        assert counts[Category.AUTOMATED] > 500


class TestEndToEndTable1:
    @pytest.fixture(scope="class")
    def table(self):
        reverse_ip = ReverseIpTable()
        web_filter = WebFilter()
        generator = HoneypotTrafficGenerator(
            make_rng(5), scale=0.002, reverse_ip=reverse_ip, web_filter=web_filter
        )
        categorizer = TrafficCategorizer(
            reverse_ip=reverse_ip, web_filter=web_filter
        )
        requests = generator.generate(include_noise=False)
        categorized = categorizer.categorize_many(requests)
        return requests, categorized

    def test_volume_matches_scale(self, table):
        requests, _ = table
        expected = 5_925_311 * 0.002
        assert abs(len(requests) - expected) / expected < 0.1

    def test_automated_dominates(self, table):
        _, categorized = table
        counts = category_counts(categorized)
        assert counts[Category.AUTOMATED] > counts[Category.WEB_CRAWLER]
        assert counts[Category.AUTOMATED] > counts[Category.USER_VISIT]
        assert counts[Category.AUTOMATED] > counts[Category.REFERRAL]

    def test_resheba_is_top_domain(self, table):
        requests, _ = table
        volumes = {}
        for request in requests:
            volumes[request.host] = volumes.get(request.host, 0) + 1
        top = max(volumes, key=volumes.get)
        assert top == "resheba.online"

    def test_gpclick_malicious_share(self, table):
        _, categorized = table
        gpclick = [c for c in categorized if c.request.host == "gpclick.com"]
        malicious = sum(
            1 for c in gpclick if c.subcategory == Subcategory.MALICIOUS_REQUEST
        )
        assert malicious / len(gpclick) > 0.9

    def test_subcategory_shape_per_domain(self, table):
        """Every domain's dominant generated subcategory matches Table 1."""
        _, categorized = table
        paper_dominant = {}
        for domain, (row, _) in PAPER_TABLE1.items():
            cells = dict(zip(TABLE1_FIELDS, row))
            paper_dominant[domain] = max(cells, key=cells.get)
        measured = {}
        for item in categorized:
            bucket = measured.setdefault(item.request.host, [])
            bucket.append(item)
        mismatches = []
        for domain, items in measured.items():
            counts = subcategory_counts(items)
            dominant = max(counts, key=counts.get)
            if dominant != paper_dominant[domain]:
                mismatches.append((domain, dominant, paper_dominant[domain]))
        # Tolerate at most two small-volume domains drifting.
        assert len(mismatches) <= 2, mismatches


class TestCalibrationDeployments:
    def test_no_hosting_baseline_monitor_dominates(self):
        recorder = generate_no_hosting_baseline(make_rng(3), packets=1000)
        top_port, _ = recorder.top_ports(1)[0]
        assert top_port == 52646
        assert recorder.request_count == 0

    def test_control_group_has_establishment_traffic(self):
        recorder = generate_control_traffic(make_rng(3), requests=500)
        requests = recorder.requests()
        assert any(r.path.startswith("/.well-known") for r in requests)
        assert all(r.host.startswith("control-study-") for r in requests)
        assert recorder.port_histogram().get(52646, 0) > 0

    def test_noise_is_filterable(self):
        from repro.honeypot.filtering import TwoStageFilter

        rng = make_rng(9)
        no_hosting = generate_no_hosting_baseline(rng, packets=2000)
        control = generate_control_traffic(rng, requests=1000)
        noise_filter = TwoStageFilter.calibrated(no_hosting, control)

        generator = HoneypotTrafficGenerator(make_rng(10), scale=0.001)
        requests = generator.generate(include_noise=True)
        kept, stats = noise_filter.apply(requests)
        assert stats.dropped > 0
        # The genuine traffic survives nearly intact.
        assert stats.kept / stats.input_requests > 0.9
        # And the well-known URI noise is gone from what's kept.
        assert not any(r.path.startswith("/.well-known") for r in kept)
