"""Serial ≡ parallel property tests for sharded trace generation.

The determinism contract: ``generate(jobs=N)`` is byte-identical to
``generate(jobs=1)`` for any worker count, because each population
record's emission RNG is keyed by its *global* index (not its shard)
and shard results are merged back in population order.
"""

import pytest

from repro.errors import WorkloadError
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig

SMALL = TraceConfig(total_domains=400, squat_count=16)


def _generate(seed, jobs):
    return NxdomainTraceGenerator(seed=seed, config=SMALL).generate(jobs=jobs)


class TestSerialParallelIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_fingerprints_identical(self, seed):
        serial = _generate(seed, jobs=1)
        parallel = _generate(seed, jobs=4)
        assert serial.nx_db.fingerprint() == parallel.nx_db.fingerprint()
        assert (
            serial.pre_expiry_db.fingerprint()
            == parallel.pre_expiry_db.fingerprint()
        )

    def test_population_order_identical(self):
        serial = _generate(3, jobs=1)
        parallel = _generate(3, jobs=4)
        assert [r.domain for r in serial.population] == [
            r.domain for r in parallel.population
        ]
        assert [r.kind for r in serial.population] == [
            r.kind for r in parallel.population
        ]

    def test_worker_count_invariance(self):
        """Different non-trivial worker counts agree with each other."""
        two = _generate(5, jobs=2)
        three = _generate(5, jobs=3)
        assert two.nx_db.fingerprint() == three.nx_db.fingerprint()
        assert (
            two.pre_expiry_db.fingerprint()
            == three.pre_expiry_db.fingerprint()
        )

    def test_small_population_falls_back_to_serial(self):
        """jobs far beyond the population still produces the same trace."""
        serial = _generate(9, jobs=1)
        oversharded = _generate(9, jobs=512)
        assert serial.nx_db.fingerprint() == oversharded.nx_db.fingerprint()

    def test_jobs_validation(self):
        generator = NxdomainTraceGenerator(seed=0, config=SMALL)
        with pytest.raises(WorkloadError):
            generator.generate(jobs=0)
