"""Tests for the gpclick botnet generator and IP pools."""

import pytest

from repro.honeypot.categorize import Subcategory, TrafficCategorizer
from repro.honeypot.reverse_ip import ReverseIpTable
from repro.rand import make_rng
from repro.workloads.botnet import (
    BOTNET_USER_AGENT,
    GpclickBotnet,
    continent_of_country,
)
from repro.workloads.ipspace import IpPool, make_pool


class TestIpPool:
    def test_prefix_validation(self):
        with pytest.raises(ValueError):
            IpPool("1.2.3", make_rng(1))
        with pytest.raises(ValueError):
            IpPool("999.1", make_rng(1))

    def test_sized_pool_repeats_addresses(self):
        pool = IpPool("198.51", make_rng(1), size=5)
        addresses = {pool.address() for _ in range(200)}
        assert len(addresses) <= 5

    def test_sized_pool_validation(self):
        with pytest.raises(ValueError):
            IpPool("198.51", make_rng(1), size=0)

    def test_unsized_pool_diverse(self):
        pool = IpPool("66.249", make_rng(1))
        addresses = {pool.address() for _ in range(200)}
        assert len(addresses) > 150

    def test_ptr_registration(self):
        table = ReverseIpTable()
        pool = make_pool("google-crawler", make_rng(1), table)
        ip = pool.address()
        assert table.lookup(ip).endswith("googlebot.com")
        assert table.is_known_crawler(ip)

    def test_unknown_pool_name(self):
        with pytest.raises(KeyError):
            make_pool("nonexistent", make_rng(1))


class TestGpclickBotnet:
    @pytest.fixture(scope="class")
    def requests(self):
        table = ReverseIpTable()
        botnet = GpclickBotnet(make_rng(7), table)
        return botnet.requests(800, 0, 10_000_000), table

    def test_shape(self, requests):
        reqs, _ = requests
        assert len(reqs) == 800
        assert all(r.path == "/getTask.php" for r in reqs)
        assert all(r.user_agent == BOTNET_USER_AGENT for r in reqs)
        assert all(r.host == "gpclick.com" for r in reqs)

    def test_sorted_timestamps(self, requests):
        reqs, _ = requests
        times = [r.timestamp for r in reqs]
        assert times == sorted(times)

    def test_query_structure_matches_figure12(self, requests):
        reqs, _ = requests
        params = reqs[0].query_parameters()
        for key in ("imei", "balance", "country", "phone", "op", "mnc", "mcc", "model", "os"):
            assert key in params, key
        assert params["op"] == "Android"
        assert params["os"] == "23"
        assert params["balance"] == "0"

    def test_nexus_models_dominate(self, requests):
        reqs, _ = requests
        models = [r.query_parameters()["model"] for r in reqs]
        nexus = sum(1 for m in models if m.startswith("Nexus"))
        assert nexus / len(models) > 0.9

    def test_country_spread_across_continents(self, requests):
        reqs, _ = requests
        countries = {r.query_parameters()["country"] for r in reqs}
        continents = {continent_of_country(c) for c in countries}
        assert {"Europe", "Asia", "America"} <= continents

    def test_google_proxy_majority(self, requests):
        reqs, table = requests
        histogram = table.hostname_histogram([r.src_ip for r in reqs])
        total = sum(histogram.values())
        assert histogram.get("google-proxy", 0) / total > 0.45

    def test_classified_as_malicious_request(self, requests):
        reqs, _ = requests
        categorizer = TrafficCategorizer()
        item = categorizer.categorize(reqs[0])
        assert item.subcategory == Subcategory.MALICIOUS_REQUEST

    def test_validation(self):
        botnet = GpclickBotnet(make_rng(1))
        with pytest.raises(ValueError):
            botnet.requests(-1, 0, 10)
        with pytest.raises(ValueError):
            botnet.requests(1, 10, 10)

    def test_continent_of_unknown(self):
        assert continent_of_country("zz") is None
