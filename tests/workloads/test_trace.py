"""Tests for the 8-year NXDomain trace generator."""

import numpy as np
import pytest

from repro.clock import SECONDS_PER_DAY
from repro.errors import WorkloadError
from repro.workloads.trace import (
    DomainKind,
    NxdomainTraceGenerator,
    TraceConfig,
    TraceResult,
    YEAR_MULTIPLIERS,
)


@pytest.fixture(scope="module")
def trace() -> TraceResult:
    config = TraceConfig(total_domains=3_000, squat_count=120)
    return NxdomainTraceGenerator(seed=42, config=config).generate()


class TestConfigValidation:
    def test_bounds(self):
        with pytest.raises(WorkloadError):
            TraceConfig(total_domains=10)
        with pytest.raises(WorkloadError):
            TraceConfig(expired_fraction=0.0)
        with pytest.raises(WorkloadError):
            TraceConfig(total_domains=1000, expired_fraction=0.1, squat_count=500)


class TestPopulation:
    def test_population_size(self, trace):
        assert len(trace.population) == 3_000

    def test_kind_proportions(self, trace):
        expired = trace.expired_domains()
        never = [d for d in trace.population if not d.kind.is_expired]
        assert len(never) > len(expired)  # never-registered dominates
        assert abs(len(expired) - 600) < 30

        dga_expired = trace.domains_of_kind(DomainKind.EXPIRED_DGA)
        assert abs(len(dga_expired) - 600 * 0.03) <= 5

        squats = trace.domains_of_kind(DomainKind.EXPIRED_SQUAT)
        assert abs(len(squats) - 120) <= 10

    def test_squat_type_ordering(self, trace):
        from repro.squatting.detector import SquattingType

        squats = trace.domains_of_kind(DomainKind.EXPIRED_SQUAT)
        counts = {}
        for record in squats:
            counts[record.squat_type] = counts.get(record.squat_type, 0) + 1
        assert counts[SquattingType.TYPO] > counts[SquattingType.DOT]
        assert counts[SquattingType.COMBO] > counts[SquattingType.DOT]
        assert counts[SquattingType.DOT] >= counts.get(SquattingType.BIT, 0)

    def test_dga_domains_have_family(self, trace):
        for record in trace.domains_of_kind(
            DomainKind.EXPIRED_DGA, DomainKind.NEVER_REGISTERED_DGA
        ):
            assert record.dga_family

    def test_unique_domains(self, trace):
        names = [d.domain for d in trace.population]
        assert len(set(names)) == len(names)

    def test_ground_truth_lookup(self, trace):
        record = trace.population[0]
        assert trace.ground_truth(record.domain) is record


class TestWhoisIntegration:
    def test_expired_have_history(self, trace):
        for record in trace.expired_domains()[:50]:
            assert trace.whois.has_history(record.domain)
            spans = trace.whois.registration_spans(record.domain)
            assert spans[0][0] < spans[0][1]

    def test_never_registered_have_none(self, trace):
        for record in trace.domains_of_kind(DomainKind.NEVER_REGISTERED_JUNK)[:50]:
            assert not trace.whois.has_history(record.domain)

    def test_join_fraction(self, trace):
        result = trace.whois.join([d.domain for d in trace.population])
        expected = len(trace.expired_domains()) / len(trace.population)
        assert result.hit_fraction == pytest.approx(expected, abs=0.01)


class TestBlocklistIntegration:
    def test_only_expired_blocklisted(self, trace):
        for record in trace.population:
            if record.blocklisted:
                assert record.kind.is_expired
                assert record.domain in trace.blocklist

    def test_blocklist_nonempty(self, trace):
        assert len(trace.blocklist) > 10


class TestQueryActivity:
    def test_every_domain_appears_in_nx_db(self, trace):
        # Nearly every domain should have at least one recorded query
        # (tiny Poisson rates can produce silent domains).
        with_queries = sum(
            1
            for d in trace.population
            if trace.nx_db.profile(d.domain) is not None
        )
        assert with_queries / len(trace.population) > 0.8

    def test_volume_rises_in_2021(self, trace):
        series = trace.nx_db.monthly_response_series()
        def year_avg(year):
            months = [v for k, v in series.items() if k.startswith(str(year))]
            return sum(months) / max(len(months), 1)
        assert year_avg(2021) > 1.4 * year_avg(2019)
        assert year_avg(2022) > year_avg(2016)
        assert year_avg(2016) > year_avg(2014)

    def test_com_is_top_tld(self, trace):
        top = trace.nx_db.top_tlds(5)
        assert top[0][0] == "com"

    def test_lifespan_decay_is_decreasing(self, trace):
        domains, queries = trace.nx_db.lifespan_decay(60)
        assert domains[0] > domains[10] > domains[59]
        assert queries.sum() > 0

    def test_pre_expiry_traffic_exists(self, trace):
        expired = trace.expired_domains()
        with_pre = sum(
            1 for d in expired if trace.pre_expiry_db.profile(d.domain)
        )
        assert with_pre / len(expired) > 0.7

    def test_expiry_spike_around_day_30(self, trace):
        """Average post-NX query series shows the +30d bump (Figure 6).

        The paper computes this over NXDomains queried for more than
        two years in NX status — the long-lived cohort — not over the
        short-lived mass whose decay swamps the bump.
        """
        expired = [d for d in trace.expired_domains() if d.activity_days >= 120]
        assert expired, "trace produced no long-lived expired domains"
        acc = np.zeros(60)
        for record in expired:
            series = trace.nx_db.daily_series_for(
                record.domain,
                record.became_nx_at,
                record.became_nx_at + 60 * SECONDS_PER_DAY,
            )
            acc += series
        window = acc[25:36].mean()
        neighbours = (acc[10:20].mean() + acc[45:55].mean()) / 2
        assert window > neighbours

    def test_deterministic(self):
        config = TraceConfig(total_domains=500, squat_count=40)
        a = NxdomainTraceGenerator(seed=1, config=config).generate()
        b = NxdomainTraceGenerator(seed=1, config=config).generate()
        assert a.nx_db.total_responses() == b.nx_db.total_responses()
        assert [d.domain for d in a.population] == [d.domain for d in b.population]

    def test_seed_changes_trace(self):
        config = TraceConfig(total_domains=500, squat_count=40)
        a = NxdomainTraceGenerator(seed=1, config=config).generate()
        b = NxdomainTraceGenerator(seed=2, config=config).generate()
        assert [d.domain for d in a.population] != [d.domain for d in b.population]
