"""Tests shared across all DGA family generators, plus family specifics."""

import pytest

from repro.dga.base import DgaFamily, Lcg
from repro.dga.families import ALL_FAMILIES, family_by_name
from repro.dga.families.banjori import Banjori
from repro.dga.families.matsnu import Matsnu
from repro.dga.families.necurs import Necurs
from repro.dga.families.ramnit import Ramnit
from repro.dga.families.suppobox import Suppobox
from repro.dga.wordlists import NOUNS, VERBS
from repro.dns.name import DomainName


@pytest.mark.parametrize("family_cls", ALL_FAMILIES, ids=lambda c: c.name)
class TestEveryFamily:
    def test_deterministic_per_day(self, family_cls):
        a = family_cls(seed=5).domains_for_day(3)
        b = family_cls(seed=5).domains_for_day(3)
        assert [s.domain for s in a] == [s.domain for s in b]

    def test_seed_changes_output(self, family_cls):
        a = {s.domain for s in family_cls(seed=1).domains_for_day(3)}
        b = {s.domain for s in family_cls(seed=2).domains_for_day(3)}
        assert a != b

    def test_domains_are_valid_and_in_family_tlds(self, family_cls):
        family = family_cls(seed=9)
        for sample in family.domains_for_day(0):
            assert isinstance(sample.domain, DomainName)
            assert sample.domain.tld in family.tlds
            assert sample.family == family.name
            assert 1 <= len(sample.domain.sld) <= 63

    def test_requested_count_honoured(self, family_cls):
        assert len(family_cls(seed=1).domains_for_day(0, count=7)) == 7

    def test_default_count_is_domains_per_day(self, family_cls):
        family = family_cls(seed=1)
        assert len(family.domains_for_day(0)) == family.domains_per_day

    def test_negative_day_rejected(self, family_cls):
        with pytest.raises(ValueError):
            family_cls(seed=1).domains_for_day(-1)

    def test_stream_covers_range(self, family_cls):
        family = family_cls(seed=1)
        samples = list(family.stream(2, 4))
        assert {s.day_index for s in samples} == {2, 3}
        assert len(samples) == 2 * family.domains_per_day


class TestRegistryLookup:
    def test_lookup_by_name(self):
        assert family_by_name("conficker").name == "conficker"
        assert family_by_name("SUPPOBOX") is Suppobox

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            family_by_name("zeus-prime")

    def test_thirteen_families(self):
        assert len(ALL_FAMILIES) == 13
        assert len({cls.name for cls in ALL_FAMILIES}) == 13


class TestFamilyFingerprints:
    def test_banjori_shares_constant_tail(self):
        samples = Banjori(seed=3).domains_for_day(0)
        tails = {s.domain.sld[4:] for s in samples}
        assert len(tails) == 1  # only the first 4 chars mutate

    def test_banjori_days_are_contiguous_walk(self):
        day0 = Banjori(seed=3).domains_for_day(0)
        day1 = Banjori(seed=3).domains_for_day(1)
        assert day0[-1].domain != day1[0].domain

    def test_suppobox_labels_are_two_words(self):
        for sample in Suppobox(seed=2).domains_for_day(1, count=20):
            label = sample.domain.sld
            assert any(
                label.startswith(v) and label[len(v):] in NOUNS for v in VERBS
            ), label

    def test_matsnu_minimum_length(self):
        for sample in Matsnu(seed=2).domains_for_day(5, count=10):
            assert len(sample.domain.sld) >= Matsnu.MIN_LENGTH

    def test_necurs_four_day_epoch(self):
        family = Necurs(seed=4)
        assert [s.domain for s in family.domains_for_day(0)] == [
            s.domain for s in family.domains_for_day(3)
        ]
        assert [s.domain for s in family.domains_for_day(0)] != [
            s.domain for s in family.domains_for_day(4)
        ]

    def test_ramnit_repolls_same_list_daily(self):
        family = Ramnit(seed=8)
        assert [s.domain for s in family.domains_for_day(10)] == [
            s.domain for s in family.domains_for_day(11)
        ]


class TestLcg:
    def test_determinism(self):
        a, b = Lcg(42), Lcg(42)
        assert [a.next() for _ in range(5)] == [b.next() for _ in range(5)]

    def test_range_bounds(self):
        lcg = Lcg(7)
        values = [lcg.next_in_range(3, 9) for _ in range(200)]
        assert min(values) >= 3 and max(values) <= 9

    def test_range_validation(self):
        with pytest.raises(ValueError):
            Lcg(1).next_in_range(5, 3)

    def test_pick(self):
        lcg = Lcg(1)
        assert all(lcg.pick("xyz") in "xyz" for _ in range(20))
