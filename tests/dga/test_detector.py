"""Tests for the DGA detector: training, inference, and metrics."""

import numpy as np
import pytest

from repro.dga.corpus import benign_domains
from repro.dga.detector import DetectorMetrics, DgaDetector
from repro.dga.families.conficker import Conficker
from repro.dga.families.dircrypt import Dircrypt
from repro.dga.families.suppobox import Suppobox
from repro.rand import make_rng


@pytest.fixture(scope="module")
def detector():
    return DgaDetector.train_default(seed=7, samples_per_family=150)


@pytest.fixture(scope="module")
def holdout():
    """Evaluation data from days the training never saw."""
    dga = [
        s.domain
        for family in (Conficker(seed=99), Dircrypt(seed=99))
        for day in range(50, 54)
        for s in family.domains_for_day(day)
    ]
    benign = benign_domains(make_rng(12345), 300)
    return dga, benign


class TestTraining:
    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            DgaDetector.train([], ["a.com"])
        with pytest.raises(ValueError):
            DgaDetector.train(["x.com"], [])

    def test_threshold_validation(self, detector):
        with pytest.raises(ValueError):
            DgaDetector(detector.model, threshold=0.0)
        with pytest.raises(ValueError):
            DgaDetector(detector.model, threshold=1.0)

    def test_training_is_deterministic(self):
        a = DgaDetector.train_default(seed=3, samples_per_family=50)
        b = DgaDetector.train_default(seed=3, samples_per_family=50)
        assert np.allclose(a.model.weights, b.model.weights)


class TestInference:
    def test_random_label_flagged(self, detector):
        assert detector.is_dga("xkqzvwplfmrt.com")

    def test_common_words_pass(self, detector):
        assert not detector.is_dga("schoolbook.com")

    def test_probability_bounds(self, detector, holdout):
        dga, benign = holdout
        probs = detector.probabilities(dga + benign)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_classify_matches_is_dga(self, detector, holdout):
        dga, _ = holdout
        flags = detector.classify(dga[:20])
        assert flags == [detector.is_dga(d) for d in dga[:20]]

    def test_classify_empty(self, detector):
        assert detector.classify([]) == []


class TestQuality:
    def test_holdout_accuracy(self, detector, holdout):
        dga, benign = holdout
        metrics = detector.evaluate(dga, benign)
        assert metrics.recall > 0.9, metrics
        assert metrics.precision > 0.85, metrics
        assert metrics.f1 > 0.9, metrics

    def test_dictionary_family_partially_caught(self, detector):
        # Suppobox evades char-statistics; coverage features claw some back.
        samples = [s.domain for s in Suppobox(seed=5).domains_for_day(60)]
        flagged = sum(detector.classify(samples))
        # We only assert it's not a total loss in either direction.
        assert 0 <= flagged <= len(samples)

    def test_threshold_sweep_monotonic_recall(self, detector, holdout):
        dga, benign = holdout
        sweep = detector.threshold_sweep(dga, benign, [0.1, 0.5, 0.9])
        recalls = [metrics.recall for _, metrics in sweep]
        assert recalls == sorted(recalls, reverse=True)
        fprs = [metrics.false_positive_rate for _, metrics in sweep]
        assert fprs == sorted(fprs, reverse=True)

    def test_feature_importances_cover_all(self, detector):
        importances = detector.feature_importances()
        assert len(importances) == 12
        assert importances[0][1] >= importances[-1][1]


class TestMetrics:
    def test_perfect(self):
        metrics = DetectorMetrics(10, 0, 10, 0)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0
        assert metrics.accuracy == 1.0
        assert metrics.false_positive_rate == 0.0

    def test_degenerate_zero_division(self):
        metrics = DetectorMetrics(0, 0, 0, 0)
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0
        assert metrics.accuracy == 0.0
