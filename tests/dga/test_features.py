"""Tests for lexical feature extraction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dga.features import (
    FEATURE_NAMES,
    dictionary_coverage,
    extract_feature_matrix,
    extract_features,
    max_consonant_run,
    mean_bigram_logprob,
    shannon_entropy,
)
from repro.dns.name import DomainName

label_st = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=30)


class TestPrimitives:
    def test_entropy_of_uniform_char(self):
        assert shannon_entropy("aaaa") == 0.0

    def test_entropy_of_two_chars(self):
        assert shannon_entropy("abab") == pytest.approx(1.0)

    def test_entropy_empty(self):
        assert shannon_entropy("") == 0.0

    def test_max_consonant_run(self):
        assert max_consonant_run("strength") == 4  # n-g-t-h
        assert max_consonant_run("aeiou") == 0
        assert max_consonant_run("xkcd") == 4

    def test_bigram_scores_prefer_english(self):
        assert mean_bigram_logprob("housework") > mean_bigram_logprob("xqzkvwpj")

    def test_dictionary_coverage_extremes(self):
        assert dictionary_coverage("workhouse") == 1.0
        assert dictionary_coverage("qzxqzxqzx") == 0.0
        assert dictionary_coverage("") == 0.0

    def test_dictionary_coverage_partial(self):
        coverage = dictionary_coverage("xxhousexx")
        assert 0.0 < coverage < 1.0


class TestExtractFeatures:
    def test_vector_shape_and_names(self):
        vector = extract_features("example.com")
        assert vector.shape == (len(FEATURE_NAMES),)

    def test_accepts_domainname_and_str(self):
        a = extract_features(DomainName("stackoverflow.com"))
        b = extract_features("stackoverflow.com")
        assert np.allclose(a, b)

    def test_uses_sld_not_tld(self):
        a = extract_features("example.com")
        b = extract_features("example.org")
        assert np.allclose(a, b)

    def test_bare_label_accepted(self):
        assert extract_features("example").shape == (len(FEATURE_NAMES),)

    def test_digit_features(self):
        vector = extract_features("4chan4ever.com")
        index = FEATURE_NAMES.index("digit_ratio")
        assert vector[index] == pytest.approx(2 / 10)
        assert vector[FEATURE_NAMES.index("starts_with_digit")] == 1.0

    def test_hyphen_count(self):
        vector = extract_features("my-cool-site.com")
        assert vector[FEATURE_NAMES.index("hyphen_count")] == 2

    def test_matrix_stacks_rows(self):
        matrix = extract_feature_matrix(["a.com", "b.com", "c.com"])
        assert matrix.shape == (3, len(FEATURE_NAMES))

    def test_empty_matrix(self):
        assert extract_feature_matrix([]).shape == (0, len(FEATURE_NAMES))

    @given(label_st)
    def test_features_always_finite(self, label):
        vector = extract_features(label + ".com")
        assert np.isfinite(vector).all()

    @given(label_st)
    def test_ratios_bounded(self, label):
        vector = extract_features(label + ".com")
        for feature in ("digit_ratio", "vowel_ratio", "unique_char_ratio",
                        "word_coverage", "repeat_ratio"):
            value = vector[FEATURE_NAMES.index(feature)]
            assert 0.0 <= value <= 1.0
