"""Tests for deterministic randomness helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rand import (
    SeedSequenceFactory,
    derive_seed,
    make_rng,
    stable_shuffle,
    weighted_choice,
    weighted_sample_counts,
    zipf_weights,
)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = make_rng(7).integers(0, 1_000_000, size=10)
        b = make_rng(7).integers(0, 1_000_000, size=10)
        assert (a == b).all()

    def test_labels_decorrelate(self):
        factory = SeedSequenceFactory(7)
        a = factory.rng("trace").integers(0, 1_000_000, size=10)
        b = factory.rng("honeypot").integers(0, 1_000_000, size=10)
        assert not (a == b).all()

    def test_label_derivation_stable(self):
        assert derive_seed(7, "trace") == derive_seed(7, "trace")
        assert derive_seed(7, "trace") != derive_seed(8, "trace")

    def test_subfactory_reproducible(self):
        one = SeedSequenceFactory(3).subfactory("workload").rng("bots")
        two = SeedSequenceFactory(3).subfactory("workload").rng("bots")
        assert one.integers(0, 100) == two.integers(0, 100)


class TestWeightedHelpers:
    def test_weighted_choice_respects_zero_weight(self):
        rng = make_rng(1)
        picks = {weighted_choice(rng, ["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_weighted_choice_validation(self):
        rng = make_rng(1)
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [0.0])

    def test_sample_counts_sum_to_total(self):
        rng = make_rng(2)
        counts = weighted_sample_counts(rng, [5, 3, 2], total=1000)
        assert sum(counts) == 1000
        assert counts[0] > counts[2]

    def test_sample_counts_validation(self):
        with pytest.raises(ValueError):
            weighted_sample_counts(make_rng(1), [0.0], total=10)

    def test_zipf_weights_decreasing(self):
        weights = zipf_weights(10)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=20), st.integers(0, 60))
    def test_shuffle_preserves_multiset(self, items, seed):
        shuffled = stable_shuffle(make_rng(seed), items)
        assert sorted(shuffled) == sorted(items)
        assert items == items  # input not mutated
