"""Tests for the §6.3 crawler-origin analyses."""

import pytest

from repro.core.security import (
    email_crawler_breakdown,
    regional_correlation_checks,
    run_security_experiment,
    search_engine_breakdown,
)
from repro.rand import make_rng


@pytest.fixture(scope="module")
def result():
    return run_security_experiment(make_rng(31), scale=0.003)


class TestEmailCrawlerBreakdown:
    def test_confcdn_dominated_by_email(self, result):
        breakdown = email_crawler_breakdown(result)
        checks = breakdown.shape_checks()
        assert all(checks.values()), checks
        assert breakdown.email_share > 0.85

    def test_gmail_largest(self, result):
        breakdown = email_crawler_breakdown(result)
        gmail = breakdown.by_provider.get("GmailImageProxy", 0)
        assert gmail == max(breakdown.by_provider.values())

    def test_other_domain_not_email_heavy(self, result):
        breakdown = email_crawler_breakdown(result, domain="resheba.online")
        assert breakdown.email_share < 0.5

    def test_unknown_domain_degenerate(self, result):
        breakdown = email_crawler_breakdown(result, domain="nope.example")
        assert breakdown.file_grabber_total == 0
        assert breakdown.email_share == 0.0


class TestRegionalCorrelation:
    def test_checks_pass(self, result):
        checks = regional_correlation_checks(result)
        assert all(checks.values()), checks

    def test_ru_domain_crawled_by_mailru(self, result):
        histogram = search_engine_breakdown(result, "porno-komiksy.com")
        regional = histogram.get("Mail.Ru", 0) + histogram.get("Yandex", 0)
        assert regional > sum(histogram.values()) / 2

    def test_empty_for_unknown_domain(self, result):
        assert search_engine_breakdown(result, "nope.example") == {}
