"""Tests for selection, the orchestrator, and the report renderers."""

import pytest

from repro.core.reports import render_bars, render_table
from repro.core.selection import (
    SelectionCriteria,
    pick_study_set,
    select_candidates,
    selection_shape_checks,
)
from repro.core.study import NxdomainStudy, StudyConfig


@pytest.fixture(scope="module")
def study():
    config = StudyConfig(
        trace_domains=3_000,
        squat_count=120,
        honeypot_scale=0.002,
        expiry_timeline_sample=300,
        dga_samples_per_family=100,
    )
    # Seed pinned for the 3k-domain noisy regime; see tests/core/test_scale.py.
    return NxdomainStudy(seed=4, config=config)


class TestSelection:
    def test_criteria_scaling(self):
        criteria = SelectionCriteria(min_monthly_queries=10_000)
        scaled = criteria.scaled(1e-3)
        assert scaled.min_monthly_queries == 10.0
        assert scaled.min_nx_days == 180
        with pytest.raises(ValueError):
            criteria.scaled(0)

    def test_candidates_meet_criteria(self, study):
        criteria = SelectionCriteria(min_monthly_queries=20.0)
        candidates = select_candidates(study.trace, criteria)
        assert candidates
        for candidate in candidates:
            assert candidate.monthly_queries >= 20.0
            assert candidate.nx_days >= 180

    def test_candidates_sorted_by_traffic(self, study):
        criteria = SelectionCriteria(min_monthly_queries=20.0)
        candidates = select_candidates(study.trace, criteria)
        volumes = [c.monthly_queries for c in candidates]
        assert volumes == sorted(volumes, reverse=True)

    def test_study_set(self, study):
        criteria = SelectionCriteria(min_monthly_queries=20.0)
        candidates = select_candidates(study.trace, criteria)
        chosen = pick_study_set(candidates)
        assert len(chosen) <= 19
        checks = selection_shape_checks(candidates, chosen)
        assert all(checks.values()), checks


class TestStudy:
    def test_trace_cached(self, study):
        assert study.trace is study.trace

    def test_scale_analysis_all_shapes(self, study):
        analysis = study.run_scale_analysis()
        for figure, checks in analysis.shape_checks().items():
            assert all(checks.values()), (figure, checks)

    def test_origin_analysis_all_shapes(self, study):
        analysis = study.run_origin_analysis()
        for section, checks in analysis.shape_checks().items():
            assert all(checks.values()), (section, checks)

    def test_security_analysis_shapes(self, study):
        result = study.run_security_analysis()
        assert all(result.shape_checks().values())
        assert study.run_security_analysis() is result  # cached

    def test_run_selection(self, study):
        chosen = study.run_selection()
        assert chosen

    def test_full_report_renders_everything(self, study):
        report = study.full_report()
        for marker in (
            "Figure 3", "Figure 4", "Figure 5", "Figure 6", "§4.4",
            "§5.1", "§5.2", "Figure 7", "Figure 8", "Table 1",
            "Figure 10a", "Figure 10b", "Figure 13", "Figure 14",
            "Figure 15", "DGA registration rate",
        ):
            assert marker in report, marker
        assert "FAIL" not in report, report

    def test_package_level_import(self):
        import repro

        assert repro.NxdomainStudy is NxdomainStudy
        assert isinstance(repro.__version__, str)
        with pytest.raises(AttributeError):
            repro.nonexistent_attribute


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[:2])

    def test_render_bars(self):
        text = render_bars([("x", 10), ("y", 5)], width=10)
        assert "##########" in text
        assert "#####" in text

    def test_render_bars_empty(self):
        assert render_bars([]) == "(empty)"

    def test_render_bars_zero_values(self):
        text = render_bars([("x", 0)])
        assert "x" in text
