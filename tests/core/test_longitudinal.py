"""Tests for the §4.4 cohort and DGA registration-rate analyses."""

import pytest

from repro.core.origin import dga_registration_rate
from repro.core.scale import long_lived_cohort
from repro.passivedns.database import PassiveDnsDatabase
from repro.dns.name import DomainName
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig

DAY = 86_400


@pytest.fixture(scope="module")
def trace():
    config = TraceConfig(total_domains=2_000, squat_count=80)
    return NxdomainTraceGenerator(seed=33, config=config).generate()


class TestLongLivedCohort:
    def test_hand_built_cohort(self):
        db = PassiveDnsDatabase()
        # Long-lived: active span of 3 years.
        long_lived = DomainName("old-timer.com")
        db.add(long_lived, 0, count=10)
        db.add(long_lived, 3 * 365 * DAY, count=7)
        # Short-lived: three days.
        db.add(DomainName("flash.net"), 0, count=100)
        db.add(DomainName("flash.net"), 3 * DAY, count=1)
        cohort = long_lived_cohort(db, min_years=2.0)
        assert cohort.domain_count == 1
        assert cohort.total_queries == 17
        assert cohort.population_domains == 2
        assert cohort.cohort_fraction == 0.5

    def test_empty_database(self):
        cohort = long_lived_cohort(PassiveDnsDatabase(), min_years=2.0)
        assert cohort.domain_count == 0
        assert cohort.cohort_fraction == 0.0
        assert not cohort.shape_checks()["cohort-nonempty"]

    def test_trace_cohort_shape(self, trace):
        cohort = long_lived_cohort(trace.nx_db, min_years=2.0)
        checks = cohort.shape_checks()
        assert all(checks.values()), checks

    def test_threshold_monotone(self, trace):
        loose = long_lived_cohort(trace.nx_db, min_years=1.0)
        strict = long_lived_cohort(trace.nx_db, min_years=4.0)
        assert strict.domain_count <= loose.domain_count
        assert strict.total_queries <= loose.total_queries


class TestDgaRegistrationRate:
    def test_trace_rate_is_rare(self, trace):
        rate = dga_registration_rate(trace)
        checks = rate.shape_checks()
        assert all(checks.values()), checks
        # Expired DGA is 3% of 20% of the population; never-registered
        # DGA is 55% of 80% — the rate lands low single digits.
        assert rate.registration_rate < 0.05

    def test_counts_match_population(self, trace):
        from repro.workloads.trace import DomainKind

        rate = dga_registration_rate(trace)
        assert rate.registered_dga == len(
            trace.domains_of_kind(DomainKind.EXPIRED_DGA)
        )
        assert rate.total_dga == rate.registered_dga + rate.never_registered_dga

    def test_empty_degenerate(self):
        from repro.core.origin import DgaRegistrationRate

        rate = DgaRegistrationRate(0, 0)
        assert rate.registration_rate == 0.0
        assert not rate.shape_checks()["dga-exists"]
