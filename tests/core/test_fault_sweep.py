"""Degradation-curve sweep: shape checks under injected collection loss."""

import pytest

from repro.core.study import StudyConfig
from repro.core.validation import fault_sweep
from repro.errors import ConfigError

CONFIG = StudyConfig(trace_domains=1_200, squat_count=60)


@pytest.fixture(scope="module")
def report():
    return fault_sweep([0, 1], CONFIG, rates=(0.0, 0.05))


def test_sweep_covers_every_rate(report):
    assert [point.rate for point in report.points] == [0.0, 0.05]
    assert report.seeds == [0, 1]


def test_baseline_is_the_zero_rate_point(report):
    baseline = report.baseline()
    assert baseline.rate == 0.0
    assert baseline.delivered_fraction == 1.0
    assert baseline.dropped == 0


def test_loss_shrinks_delivery_roughly_by_the_rate(report):
    degraded = report.points[-1]
    # loss(0.05) drops ~5% of observations and dedups the duplicates.
    assert 0.90 <= degraded.delivered_fraction <= 0.99
    assert degraded.dropped > 0


def test_store_faults_are_fully_replayed(report):
    degraded = report.points[-1]
    assert degraded.store_failures == degraded.replay_recovered


def test_no_regressions_at_five_percent_loss(report):
    """The §4 shape checks hold as well at 5% loss as cleanly."""
    assert report.regressions(0.05) == []


def test_sweep_is_deterministic():
    small = StudyConfig(trace_domains=900, squat_count=50)
    first = fault_sweep([3], small, rates=(0.05,))
    second = fault_sweep([3], small, rates=(0.05,))
    assert first.points[0].delivered_fraction == second.points[0].delivered_fraction
    assert first.points[0].dropped == second.points[0].dropped
    assert (
        first.points[0].report.overall_pass_rate()
        == second.points[0].report.overall_pass_rate()
    )


def test_rows_render_one_line_per_rate(report):
    rows = report.rows()
    assert len(rows) == 2
    assert rows[0][0] == "0.0%"
    assert rows[1][0] == "5.0%"


def test_validation():
    with pytest.raises(ConfigError):
        fault_sweep([], CONFIG)
    with pytest.raises(ConfigError):
        fault_sweep([0], CONFIG, rates=(1.5,))
