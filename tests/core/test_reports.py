"""Direct tests for the report renderers and traffic concentration."""

import numpy as np
import pytest

from repro.blocklist.categories import ThreatCategory
from repro.core.origin import (
    BlocklistCensus,
    DgaCensus,
    DgaRegistrationRate,
    SquattingCensus,
    WhoisJoinResult,
)
from repro.core.reports import (
    render_dga_census,
    render_dga_registration,
    render_figure7,
    render_figure8,
    render_long_lived,
    render_whois_join,
)
from repro.core.scale import LongLivedCohort
from repro.core.security import TrafficConcentration
from repro.squatting.detector import SquattingType


class TestOriginRenderers:
    def test_whois_join(self):
        text = render_whois_join(WhoisJoinResult(100, 20, 80))
        assert "20.00%" in text
        assert "never registered" in text
        assert "shape:" in text

    def test_dga_census_with_ground_truth(self):
        from repro.dga.detector import DetectorMetrics

        census = DgaCensus(
            expired_total=100,
            flagged=4,
            ground_truth=DetectorMetrics(3, 1, 95, 1),
        )
        text = render_dga_census(census)
        assert "4.0%" in text
        assert "precision=0.75" in text

    def test_dga_census_without_ground_truth(self):
        text = render_dga_census(DgaCensus(expired_total=10, flagged=1))
        assert "ground truth" not in text

    def test_dga_registration(self):
        text = render_dga_registration(DgaRegistrationRate(5, 495))
        assert "1.00%" in text
        assert "Plohmann" in text

    def test_figure7(self):
        census = SquattingCensus(
            counts={
                SquattingType.TYPO: 50,
                SquattingType.COMBO: 40,
                SquattingType.DOT: 6,
                SquattingType.BIT: 1,
                SquattingType.HOMO: 1,
            },
            expired_total=500,
        )
        text = render_figure7(census)
        assert "typosquatting" in text
        assert "45,175" in text  # paper column present

    def test_figure8(self):
        census = BlocklistCensus(
            sampled=1000,
            listed=100,
            by_category={
                ThreatCategory.MALWARE: 80,
                ThreatCategory.GRAYWARE: 9,
                ThreatCategory.PHISHING: 8,
                ThreatCategory.COMMAND_AND_CONTROL: 3,
            },
        )
        text = render_figure8(census)
        assert "Malware" in text
        assert "80.0%" in text
        assert "rate limited" not in text

    def test_figure8_rate_limited_note(self):
        census = BlocklistCensus(
            sampled=10,
            listed=1,
            by_category={c: 0 for c in ThreatCategory},
            rate_limited=True,
        )
        assert "rate limited" in render_figure8(census)

    def test_long_lived(self):
        cohort = LongLivedCohort(
            min_years=2.0,
            domain_count=10,
            total_queries=5000,
            population_domains=1000,
        )
        text = render_long_lived(cohort)
        assert "1.0%" in text
        assert "5,000" in text


class TestTrafficConcentration:
    def test_paper_like_distribution(self):
        # Table 1's actual row totals, scaled down.
        totals = [2097, 1243, 1024, 957, 206, 92, 78, 67, 66, 19,
                  17, 17, 11, 9, 8, 6, 6, 2, 1]
        concentration = TrafficConcentration(totals)
        assert concentration.top_share(1) == pytest.approx(0.354, abs=0.01)
        assert concentration.top_share(3) == pytest.approx(0.737, abs=0.01)
        checks = concentration.shape_checks()
        assert all(checks.values()), checks

    def test_uniform_distribution_fails_checks(self):
        concentration = TrafficConcentration([10] * 19)
        assert concentration.gini() == pytest.approx(0.0, abs=1e-9)
        assert not concentration.shape_checks()["high-gini"]

    def test_empty(self):
        concentration = TrafficConcentration([])
        assert concentration.top_share(1) == 0.0
        assert concentration.gini() == 0.0

    def test_single_domain_has_everything(self):
        concentration = TrafficConcentration([100, 0, 0, 0])
        assert concentration.top_share(1) == 1.0
        assert concentration.gini() == pytest.approx(0.75)

    def test_from_security_run(self):
        from repro.core.security import run_security_experiment, traffic_concentration
        from repro.rand import make_rng

        result = run_security_experiment(make_rng(3), scale=0.001)
        concentration = traffic_concentration(result)
        checks = concentration.shape_checks()
        assert all(checks.values()), checks
