"""Tests for the DNS-level sinkhole (§7 future work)."""

import pytest

from repro.blocklist.categories import ThreatCategory
from repro.blocklist.store import BlocklistStore
from repro.core.sinkhole import NxdomainSinkhole, SinkholeVerdict
from repro.dga.detector import DgaDetector
from repro.dga.families.dircrypt import Dircrypt
from repro.dns.message import RCode
from repro.dns.name import DomainName
from repro.passivedns.record import DnsObservation


@pytest.fixture(scope="module")
def detector():
    return DgaDetector.train_default(seed=1, samples_per_family=100, threshold=0.8)


@pytest.fixture
def sinkhole(detector):
    blocklist = BlocklistStore()
    blocklist.add(DomainName("known-bad.com"), ThreatCategory.MALWARE)
    return NxdomainSinkhole(detector, blocklist=blocklist)


class TestClassification:
    def test_blocklisted_takes_precedence(self, sinkhole):
        record = sinkhole.observe(DomainName("known-bad.com"), timestamp=0)
        assert record.verdict == SinkholeVerdict.BLOCKLISTED
        assert record.detail == "malware"

    def test_squatting(self, sinkhole):
        record = sinkhole.observe(DomainName("paypal-login.com"), timestamp=0)
        assert record.verdict == SinkholeVerdict.SQUATTING
        assert "paypal.com" in record.detail

    def test_dga(self, sinkhole):
        sample = Dircrypt(seed=9).domains_for_day(3)[0].domain
        record = sinkhole.observe(sample, timestamp=0)
        assert record.verdict == SinkholeVerdict.DGA

    def test_benign_unclassified(self, sinkhole):
        record = sinkhole.observe(DomainName("schoolbook.com"), timestamp=0)
        assert record.verdict == SinkholeVerdict.UNCLASSIFIED
        assert not record.is_suspicious

    def test_classification_cached_volume_accumulates(self, sinkhole):
        domain = DomainName("known-bad.com")
        sinkhole.observe(domain, timestamp=0, count=5)
        record = sinkhole.observe(domain, timestamp=100, count=3)
        assert record.queries == 8
        assert record.first_seen == 0
        assert record.last_seen == 100
        assert len(sinkhole) == 1

    def test_subdomains_collapse(self, sinkhole):
        sinkhole.observe(DomainName("www.known-bad.com"), timestamp=0)
        assert sinkhole.lookup(DomainName("known-bad.com")).queries == 1

    def test_channel_ingest(self, sinkhole):
        observation = DnsObservation(
            DomainName("www.known-bad.com"), RCode.NXDOMAIN, 50, count=4
        )
        record = sinkhole.ingest(observation)
        assert record.queries == 4
        assert sinkhole.observations == 1


class TestReport:
    def test_report_aggregates(self, sinkhole):
        sinkhole.observe(DomainName("known-bad.com"), 0, count=10)
        sinkhole.observe(DomainName("paypal-login.com"), 0, count=5)
        sinkhole.observe(DomainName("schoolbook.com"), 0, count=100)
        report = sinkhole.report()
        assert report.total_domains() == 3
        assert report.domains_by_verdict[SinkholeVerdict.BLOCKLISTED] == 1
        assert report.queries_by_verdict[SinkholeVerdict.UNCLASSIFIED] == 100
        assert report.suspicious_fraction() == pytest.approx(2 / 3)

    def test_top_suspicious_sorted_and_excludes_benign(self, sinkhole):
        sinkhole.observe(DomainName("known-bad.com"), 0, count=1)
        sinkhole.observe(DomainName("paypal-login.com"), 0, count=50)
        sinkhole.observe(DomainName("schoolbook.com"), 0, count=500)
        top = sinkhole.report(top_n=5).top_suspicious
        assert [str(r.domain) for r in top] == ["paypal-login.com", "known-bad.com"]

    def test_empty_report(self, detector):
        report = NxdomainSinkhole(detector).report()
        assert report.total_domains() == 0
        assert report.suspicious_fraction() == 0.0

    def test_without_blocklist(self, detector):
        sinkhole = NxdomainSinkhole(detector)
        record = sinkhole.observe(DomainName("known-bad.com"), 0)
        # No blocklist attached: falls through to lexical analysis.
        assert record.verdict in (
            SinkholeVerdict.UNCLASSIFIED,
            SinkholeVerdict.DGA,
        )
