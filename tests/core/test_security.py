"""Tests for the §6 security experiment (Table 1, Figures 10/13/14/15)."""

import pytest

from repro.core.security import (
    botnet_victim_analysis,
    inapp_browser_distribution,
    inapp_shape_checks,
    port_distribution,
    run_security_experiment,
)
from repro.rand import make_rng


@pytest.fixture(scope="module")
def result():
    return run_security_experiment(make_rng(13), scale=0.002)


class TestTable1:
    def test_shape_checks(self, result):
        checks = result.shape_checks()
        assert all(checks.values()), checks

    def test_nineteen_rows(self, result):
        assert len(result.table1) == 19

    def test_filter_removed_noise(self, result):
        assert result.filter_stats.dropped > 0
        assert result.filter_stats.kept / result.filter_stats.input_requests > 0.85


class TestFigure10:
    def test_shape_checks(self, result):
        ports = port_distribution(result)
        checks = ports.shape_checks()
        assert all(checks.values()), checks

    def test_http_share_high(self, result):
        filtered = result.noise_filter.filter_packets(
            result.honeypot.recorder.packets()
        )
        web = sum(1 for p in filtered if p.dst_port in (80, 443))
        assert web / len(filtered) > 0.75  # paper: 81.7%


class TestFigure13:
    def test_shape_checks(self, result):
        histogram = inapp_browser_distribution(result)
        checks = inapp_shape_checks(histogram)
        assert all(checks.values()), checks

    def test_empty_histogram(self):
        assert inapp_shape_checks({}) == {"nonempty": False}


class TestBotnet:
    def test_shape_checks(self, result):
        analysis = botnet_victim_analysis(result)
        checks = analysis.shape_checks()
        assert all(checks.values()), checks

    def test_request_count_matches_table(self, result):
        analysis = botnet_victim_analysis(result)
        gpclick_row = next(r for r in result.table1 if r.domain == "gpclick.com")
        # Nearly all gpclick traffic is the getTask.php stream.
        assert analysis.request_count >= 0.9 * gpclick_row.total

    def test_victim_facts_parsed(self, result):
        analysis = botnet_victim_analysis(result)
        assert analysis.distinct_phones > 0
        assert analysis.country_histogram
        assert "Nexus 5X" in analysis.model_histogram
