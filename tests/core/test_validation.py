"""Tests for the cross-seed shape validator."""

import pytest

from repro.core.study import StudyConfig
from repro.core.validation import CheckOutcome, ValidationReport, validate_shapes

SMALL = StudyConfig(
    trace_domains=900,
    squat_count=36,
    expiry_timeline_sample=80,
    dga_samples_per_family=60,
)


class TestCheckOutcome:
    def test_rates(self):
        outcome = CheckOutcome(passes=3, failures=1, failing_seeds=[7])
        assert outcome.runs == 4
        assert outcome.pass_rate == 0.75

    def test_empty(self):
        assert CheckOutcome().pass_rate == 0.0


class TestValidation:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_shapes([0, 1], SMALL, include_origin=True)

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            validate_shapes([], SMALL)

    def test_every_section_covered(self, report):
        sections = {name.split(".")[0] for name in report.outcomes}
        assert {
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "s44-long-lived",
            "whois-join",
            "dga",
            "dga-registration",
            "figure7",
            "figure8",
        } <= sections

    def test_runs_match_seed_count(self, report):
        for outcome in report.outcomes.values():
            assert outcome.runs == 2

    def test_worst_sorted_ascending(self, report):
        rates = [rate for _, rate, _ in report.worst()]
        assert rates == sorted(rates)

    def test_overall_rate_bounds(self, report):
        assert 0.0 <= report.overall_pass_rate() <= 1.0

    def test_scale_only_mode(self):
        report = validate_shapes([0], SMALL, include_origin=False)
        assert not any(name.startswith("figure7") for name in report.outcomes)
        assert any(name.startswith("figure3") for name in report.outcomes)

    def test_robust_threshold(self):
        report = ValidationReport(
            seeds=[0],
            outcomes={
                "a.x": CheckOutcome(passes=9, failures=1, failing_seeds=[3]),
                "a.y": CheckOutcome(passes=10, failures=0),
            },
        )
        assert report.robust(threshold=0.9)
        assert not report.robust(threshold=0.95)
