"""Tests for the §4 scale analyses (Figures 3-6)."""

import pytest

from repro.core.scale import (
    expiry_timeline,
    lifespan_distribution,
    monthly_response_series,
    tld_distribution,
)
from repro.rand import make_rng
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig


@pytest.fixture(scope="module")
def trace():
    # Seed choice: Figure 3's qualitative shape is stable at the
    # default population (20k domains, verified across seeds) but the
    # 3k test population sits in the noisy regime, so the fixture pins
    # a seed whose 3k draw is representative.
    config = TraceConfig(total_domains=3_000, squat_count=120)
    return NxdomainTraceGenerator(seed=5, config=config).generate()


class TestFigure3:
    def test_shape_checks_pass(self, trace):
        series = monthly_response_series(trace.nx_db)
        checks = series.shape_checks()
        assert all(checks.values()), checks

    def test_yearly_average_covers_window(self, trace):
        series = monthly_response_series(trace.nx_db)
        yearly = series.yearly_average()
        assert set(range(2014, 2023)) <= set(yearly)

    def test_summary_mentions_total(self, trace):
        series = monthly_response_series(trace.nx_db)
        assert f"{series.total():,}" in series.summary()

    def test_empty_database(self):
        from repro.passivedns.database import PassiveDnsDatabase

        series = monthly_response_series(PassiveDnsDatabase())
        assert series.total() == 0
        assert series.shape_checks() == {"window-covered": False}


class TestFigure4:
    def test_shape_checks_pass(self, trace):
        checks = tld_distribution(trace.nx_db).shape_checks()
        assert all(checks.values()), checks

    def test_rank_lookup(self, trace):
        distribution = tld_distribution(trace.nx_db)
        assert distribution.rank_of("com") == 1
        assert distribution.rank_of("never-a-tld") is None

    def test_top_is_bounded(self, trace):
        assert len(tld_distribution(trace.nx_db, top_n=5).top(5)) == 5


class TestFigure5:
    def test_shape_checks_pass(self, trace):
        checks = lifespan_distribution(trace.nx_db).shape_checks()
        assert all(checks.values()), checks

    def test_series_lengths(self, trace):
        distribution = lifespan_distribution(trace.nx_db, max_days=45)
        assert len(distribution.domains_per_day) == 45
        assert len(distribution.queries_per_day) == 45


class TestFigure6:
    def test_shape_checks_pass(self, trace):
        timeline = expiry_timeline(trace, sample_size=400, rng=make_rng(3))
        checks = timeline.shape_checks()
        assert all(checks.values()), checks

    def test_offsets(self, trace):
        timeline = expiry_timeline(trace, sample_size=100, rng=make_rng(3))
        assert timeline.at_offset(0) >= 0
        assert timeline.at_offset(-60) >= 0
        with pytest.raises(IndexError):
            timeline.at_offset(120)
        with pytest.raises(IndexError):
            timeline.at_offset(-61)

    def test_sample_bounded(self, trace):
        timeline = expiry_timeline(trace, sample_size=10, rng=make_rng(3))
        assert timeline.sampled_domains <= 10
