"""Tests for the §5 origin analyses (WHOIS join, DGA, Figures 7-8)."""

import pytest

from repro.blocklist.store import BlocklistStore, RateLimit
from repro.core.origin import (
    blocklist_census,
    dga_census,
    squatting_census,
    whois_join,
)
from repro.dga.detector import DgaDetector
from repro.rand import make_rng
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig


@pytest.fixture(scope="module")
def trace():
    config = TraceConfig(total_domains=3_000, squat_count=120)
    return NxdomainTraceGenerator(seed=21, config=config).generate()


@pytest.fixture(scope="module")
def detector():
    return DgaDetector.train_default(seed=5, samples_per_family=120)


class TestWhoisJoin:
    def test_shape(self, trace):
        result = whois_join([d.domain for d in trace.population], trace.whois)
        assert all(result.shape_checks().values())

    def test_split_matches_population(self, trace):
        result = whois_join([d.domain for d in trace.population], trace.whois)
        expired = len(trace.expired_domains())
        assert result.with_history == expired
        assert result.never_registered == len(trace.population) - expired
        assert result.total_domains == len(trace.population)

    def test_empty(self, trace):
        result = whois_join([], trace.whois)
        assert result.expired_fraction == 0.0


class TestDgaCensus:
    def test_shape(self, trace, detector):
        census = dga_census(trace, detector)
        checks = census.shape_checks()
        assert all(checks.values()), checks

    def test_flagged_fraction_small(self, trace, detector):
        census = dga_census(trace, detector)
        # Planted: 3% of expired; allow detector noise either way.
        assert 0.005 < census.flagged_fraction < 0.25

    def test_ground_truth_counts_add_up(self, trace, detector):
        census = dga_census(trace, detector)
        m = census.ground_truth
        total = (
            m.true_positives + m.false_positives + m.true_negatives + m.false_negatives
        )
        assert total == census.expired_total


class TestSquattingCensus:
    def test_shape(self, trace):
        census = squatting_census(trace)
        checks = census.shape_checks()
        assert all(checks.values()), checks

    def test_counts_close_to_planted(self, trace):
        from repro.workloads.trace import DomainKind

        census = squatting_census(trace)
        planted = len(trace.domains_of_kind(DomainKind.EXPIRED_SQUAT))
        assert abs(census.total_squatting - planted) <= planted * 0.15


class TestSquattingAccuracy:
    def test_ground_truth_scoring(self, trace):
        from repro.core.origin import squatting_accuracy

        accuracy = squatting_accuracy(trace)
        checks = accuracy.shape_checks()
        assert all(checks.values()), checks
        assert accuracy.planted_total == len(
            [r for r in trace.expired_domains() if r.squat_type is not None]
        )

    def test_degenerate_empty(self):
        from repro.core.origin import SquattingAccuracy
        from repro.squatting.detector import SquattingType

        accuracy = SquattingAccuracy(
            planted={t: 0 for t in SquattingType},
            detected_of_planted={t: 0 for t in SquattingType},
            type_correct=0,
            false_positives=0,
        )
        assert accuracy.detection_rate == 0.0
        assert accuracy.type_accuracy == 0.0


class TestBlocklistCensus:
    def test_shape(self, trace):
        census = blocklist_census(trace, sample_ratio=0.9, rng=make_rng(4))
        checks = census.shape_checks()
        assert all(checks.values()), checks
        assert not census.rate_limited

    def test_rate_limit_respected(self, trace):
        # Starve the API: the census must stop, not crash.
        original = trace.blocklist.rate_limit
        trace.blocklist.rate_limit = RateLimit(capacity=10, window_seconds=10**9)
        trace.blocklist._window_start = None
        trace.blocklist._window_used = 0
        try:
            census = blocklist_census(trace, sample_ratio=0.9, rng=make_rng(4))
            assert census.rate_limited
            assert census.sampled == 10
        finally:
            trace.blocklist.rate_limit = original
            trace.blocklist._window_start = None

    def test_sampling_without_rng(self, trace):
        census = blocklist_census(trace, sample_ratio=0.5)
        assert census.sampled == pytest.approx(
            len(trace.expired_domains()) * 0.5, abs=2
        )
