"""Sharded §4–§6 analysis loops ≡ serial at every worker count.

Each loop uses the same global-index sharding trick as trace
generation: cut [0, n) into contiguous shards, run each shard
independently, merge in shard order.  Because the shards partition the
index space exactly and every merge is an integer sum or an in-order
concatenation, the output is *equal* (not merely statistically close)
to the serial loop.
"""

import numpy as np
import pytest

from repro.core.origin import whois_join
from repro.core.scale import expiry_timeline
from repro.core.security import run_security_experiment
from repro.honeypot.filtering import TwoStageFilter
from repro.honeypot.http import HttpRequest, PacketRecord
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig


@pytest.fixture(scope="module")
def trace():
    generator = NxdomainTraceGenerator(
        seed=11, config=TraceConfig(total_domains=400, squat_count=16)
    )
    return generator.generate()


# -- §4: expiry timeline -----------------------------------------------------


@pytest.mark.parametrize("jobs", [2, 4])
def test_expiry_timeline_sharded_matches_serial(trace, jobs):
    serial = expiry_timeline(
        trace, sample_size=60, rng=np.random.default_rng(5), jobs=1
    )
    sharded = expiry_timeline(
        trace, sample_size=60, rng=np.random.default_rng(5), jobs=jobs
    )
    assert sharded.sampled_domains == serial.sampled_domains
    assert sharded.average_series.tobytes() == serial.average_series.tobytes()


def test_expiry_timeline_overshard(trace):
    serial = expiry_timeline(trace, sample_size=3, jobs=1)
    sharded = expiry_timeline(trace, sample_size=3, jobs=16)
    assert sharded.average_series.tobytes() == serial.average_series.tobytes()


# -- §5: WHOIS join ----------------------------------------------------------


@pytest.mark.parametrize("jobs", [2, 3, 4])
def test_whois_join_sharded_matches_serial(trace, jobs):
    domains = [record.domain for record in trace.population]
    assert whois_join(domains, trace.whois, jobs=jobs) == whois_join(
        domains, trace.whois, jobs=1
    )


def test_whois_join_empty_population(trace):
    assert whois_join([], trace.whois, jobs=4) == whois_join(
        [], trace.whois, jobs=1
    )


# -- §6: honeypot noise filter -----------------------------------------------


def _synthetic_traffic(n=600):
    rng = np.random.default_rng(2)
    requests = []
    for i in range(n):
        roll = rng.integers(0, 4)
        if roll == 0:
            src = f"scanner-{rng.integers(0, 10)}"
        elif roll == 1:
            src = f"control-{rng.integers(0, 10)}"
        else:
            src = f"visitor-{i}"
        path = (
            "/.well-known/acme-challenge/tok"
            if rng.integers(0, 3) == 0
            else f"/page{rng.integers(0, 5)}"
        )
        requests.append(
            HttpRequest(
                timestamp=1_000 + i, src_ip=src, host="study.example", path=path
            )
        )
    return requests


def _calibrated_filter():
    noise_filter = TwoStageFilter()
    noise_filter.learn_no_hosting_baseline(
        PacketRecord(timestamp=0, src_ip=f"scanner-{i}", dst_port=80)
        for i in range(10)
    )
    noise_filter.learn_control_group(
        HttpRequest(
            timestamp=0,
            src_ip=f"control-{i}",
            host="ctrl.example",
            path="/.well-known/acme-challenge/tok",
        )
        for i in range(10)
    )
    return noise_filter


@pytest.mark.parametrize("jobs", [2, 3, 8])
def test_noise_filter_sharded_matches_serial(jobs):
    traffic = _synthetic_traffic()
    noise_filter = _calibrated_filter()
    serial_kept, serial_stats = noise_filter.apply(traffic, jobs=1)
    sharded_kept, sharded_stats = noise_filter.apply(traffic, jobs=jobs)
    assert sharded_kept == serial_kept  # order-preserving concatenation
    assert sharded_stats == serial_stats
    assert serial_stats.dropped > 0  # the matrix actually exercised both stages


def test_noise_filter_empty_input():
    kept, stats = _calibrated_filter().apply([], jobs=4)
    assert kept == [] and stats.input_requests == 0


# -- end to end: the study-level knob ----------------------------------------


def test_security_experiment_sharded_matches_serial():
    serial = run_security_experiment(np.random.default_rng(4), scale=0.003)
    sharded = run_security_experiment(
        np.random.default_rng(4), scale=0.003, jobs=4
    )
    assert sharded.filter_stats == serial.filter_stats
    assert len(sharded.categorized) == len(serial.categorized)
    assert [
        (c.request, c.category, c.subcategory) for c in sharded.categorized
    ] == [(c.request, c.category, c.subcategory) for c in serial.categorized]
