"""The overload sweep: gates, determinism, and curve shape."""

from repro.serving import Disposition, overload_sweep


def _small_sweep(seed):
    return overload_sweep(seed=seed, domains=200, queries=80, waves=4)


def test_sweep_passes_its_gates_and_replays_identically():
    first = _small_sweep(2)
    assert first.regressions() == []
    second = _small_sweep(2)
    assert [p.counts for p in first.points] == [p.counts for p in second.points]
    assert [p.fingerprint for p in first.points] == [
        p.fingerprint for p in second.points
    ]


def test_clean_baseline_is_perfectly_clean():
    report = _small_sweep(4)
    baseline = report.baseline()
    assert baseline.answered == baseline.submitted
    for name in (
        Disposition.SHED,
        Disposition.DEGRADED,
        Disposition.CANCELLED,
        Disposition.EXPIRED,
        Disposition.REJECTED,
        Disposition.QUEUE_FULL,
        Disposition.FAILED,
    ):
        assert baseline.count(name) == 0
    assert baseline.unhandled == 0
    assert baseline.identity_mismatches == 0


def test_hostile_points_engage_the_protection_ladder():
    report = _small_sweep(2)
    by_label = {point.label: point for point in report.points}
    stuck = by_label["stuck"]
    storm = by_label["storm"]
    # Stuck workers produce reaped cancellations; the storm's fanned
    # arrivals overflow the admission gates.
    assert stuck.count(Disposition.CANCELLED) > 0
    refused = (
        storm.count(Disposition.SHED)
        + storm.count(Disposition.RATE_LIMITED)
        + storm.count(Disposition.QUEUE_FULL)
    )
    assert storm.submitted > stuck.submitted  # fanout happened
    assert refused > 0
    # Protection never turns into collapse or leaks.
    for point in report.points:
        assert point.unhandled == 0
        assert sum(point.counts.values()) == point.submitted
        assert point.answered_fraction >= report.min_answered_fraction


def test_distinct_seeds_change_the_replay():
    assert [p.counts for p in _small_sweep(2).points] != [
        p.counts for p in _small_sweep(5).points
    ]
