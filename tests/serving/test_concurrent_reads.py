"""No torn reads: served results always reflect a committed generation.

The substrate contract behind the serving tier (satellite of the
read-transaction work in :mod:`repro.passivedns.database`): while a
writer commits batches — including tail seals — every read that
happens inside ``read_transaction()`` observes the store exactly as
some single commit left it, never a half-applied batch.

The writer script is precomputed: commit ``k`` appends ``k+1`` rows
for a known target domain, so the expected aggregate state *at every
generation* is known in advance and any interleaved reader can check
the state it saw against the generation it was told it read.
"""

import tempfile
import threading

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.clock import SECONDS_PER_DAY, STUDY_START, SimClock, date_to_epoch
from repro.dns.name import DomainName
from repro.serving import DailySeriesQuery, QueryRequest, QueryServer
from repro.serving.sweep import synthetic_store

T0 = date_to_epoch(STUDY_START)
TARGET = "torn-read-probe.com"
WINDOW_DAYS = 64


def _build(seed, commits, spill_dir=None):
    """Store + per-generation expected (rows, target-series-sum)."""
    db = synthetic_store(seed, domains=40, spill_dir=spill_dir)
    target = DomainName(TARGET)
    db.add(target, T0, 1)
    expected = {db.generation: (db.row_count(), 1)}
    plans = []
    total = 1
    rows = db.row_count()
    for commit in range(commits):
        batch = commit + 1
        ids = db.intern_many([target] * batch)
        times = np.asarray(
            [T0 + ((commit + index) % WINDOW_DAYS) * SECONDS_PER_DAY
             for index in range(batch)],
            dtype=np.int64,
        )
        counts = np.ones(batch, dtype=np.int64)
        plans.append((ids, times, counts))
        total += batch
        rows += batch
        # intern_many of known domains does not bump the generation;
        # each add_batch commit bumps it exactly once.
        expected[db.generation + commit + 1] = (rows, total)
    return db, plans, expected


@settings(deadline=None, max_examples=8)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    commits=st.integers(min_value=1, max_value=6),
)
def test_raw_read_transactions_see_only_committed_states(seed, commits):
    db, plans, expected = _build(seed, commits)
    failures = []
    start = threading.Barrier(3)

    def writer():
        start.wait()
        for ids, times, counts in plans:
            db.add_batch(ids, times, counts)

    def reader():
        start.wait()
        name = DomainName(TARGET)
        for _ in range(40):
            with db.read_transaction() as generation:
                rows = db.row_count()
                series = db.daily_series_for(
                    name, T0, T0 + WINDOW_DAYS * SECONDS_PER_DAY
                )
            want = expected.get(generation)
            if want is None or want != (rows, int(series.sum())):
                failures.append((generation, rows, int(series.sum()), want))

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert failures == []
    assert db.generation == max(expected)


@settings(deadline=None, max_examples=4)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    commits=st.integers(min_value=1, max_value=4),
)
def test_reads_stay_committed_across_interleaved_spill_commits(seed, commits):
    """Same property with the writer also sealing to the spill store.

    ``spill_commit`` seals the tail into an on-disk segment and swaps
    the resident rows to memory maps; the row *content* and the
    mutation generation are unchanged, so readers must see exactly the
    same committed states as the in-memory run.
    """
    with tempfile.TemporaryDirectory() as spill_dir:
        db, plans, expected = _build(seed, commits, spill_dir=spill_dir)
        failures = []
        start = threading.Barrier(2)

        def writer():
            start.wait()
            for ids, times, counts in plans:
                db.add_batch(ids, times, counts)
                db.spill_commit()

        def reader():
            start.wait()
            name = DomainName(TARGET)
            for _ in range(40):
                with db.read_transaction() as generation:
                    rows = db.row_count()
                    series = db.daily_series_for(
                        name, T0, T0 + WINDOW_DAYS * SECONDS_PER_DAY
                    )
                want = expected.get(generation)
                if want is None or want != (rows, int(series.sum())):
                    failures.append(
                        (generation, rows, int(series.sum()), want)
                    )

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        assert db.generation == max(expected)


@settings(deadline=None, max_examples=6)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    commits=st.integers(min_value=1, max_value=5),
)
def test_served_results_through_the_tier_are_never_torn(seed, commits):
    db, plans, expected = _build(seed, commits)
    server = QueryServer(db, SimClock(T0))
    # Distinct windows defeat the result cache so every query really
    # re-reads the store mid-write; the final full-window query is the
    # one whose expectation table we precomputed.
    requests = [
        QueryRequest(
            query=DailySeriesQuery(
                domain=TARGET,
                start=T0,
                end=T0 + WINDOW_DAYS * SECONDS_PER_DAY,
            )
        )
        for _ in range(24)
    ]
    start = threading.Barrier(2)
    records = []

    def writer():
        start.wait()
        for ids, times, counts in plans:
            db.add_batch(ids, times, counts)

    def readers():
        start.wait()
        records.extend(server.serve_threaded(requests, threads=3))

    threads = [threading.Thread(target=writer), threading.Thread(target=readers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert server.stats.unhandled == 0
    for record in records:
        assert record.answered
        want = expected.get(record.generation)
        assert want is not None, (
            f"result tagged uncommitted generation {record.generation}"
        )
        assert int(record.value.sum()) == want[1]
