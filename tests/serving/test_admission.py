"""Admission control: bounded queue, tenant buckets, shed ladder."""

import pytest

from repro.errors import ConfigError
from repro.resilience.ratelimit import RateLimit
from repro.serving import (
    AdmissionController,
    AdmissionPolicy,
    Decision,
    QueryRequest,
    TopDomainsQuery,
)


def _request(priority=1, tenant="default", budget=None, n=10):
    return QueryRequest(
        query=TopDomainsQuery(n=n), tenant=tenant, priority=priority,
        budget=budget,
    )


def test_policy_and_request_validation():
    with pytest.raises(ConfigError):
        AdmissionPolicy(queue_capacity=0)
    with pytest.raises(ConfigError):
        AdmissionPolicy(shed_start=0.9, shed_hard=0.5)
    with pytest.raises(ConfigError):
        QueryRequest(query=TopDomainsQuery(), priority=7)
    with pytest.raises(ConfigError):
        QueryRequest(query=TopDomainsQuery(), budget=0)


def test_bounded_queue_refuses_past_capacity():
    controller = AdmissionController(
        AdmissionPolicy(queue_capacity=2, tenant_limit=None, shed_hard=1.0,
                        shed_start=0.99)
    )
    assert controller.offer(_request(), cost=1, now=0)[0] is Decision.ADMITTED
    assert controller.offer(_request(), cost=1, now=0)[0] is Decision.ADMITTED
    decision, ticket, _ = controller.offer(_request(), cost=1, now=0)
    assert decision is Decision.QUEUE_FULL and ticket is None
    assert controller.counters()["queue_full"] == 1


def test_tenant_buckets_are_isolated_and_carry_retry_after():
    controller = AdmissionController(
        AdmissionPolicy(
            queue_capacity=100,
            tenant_limit=RateLimit(capacity=2, window_seconds=60),
            shed_start=0.99,
            shed_hard=1.0,
        )
    )
    for _ in range(2):
        assert (
            controller.offer(_request(tenant="noisy"), 1, now=10)[0]
            is Decision.ADMITTED
        )
    decision, _, retry_after = controller.offer(
        _request(tenant="noisy"), 1, now=30
    )
    assert decision is Decision.RATE_LIMITED
    assert retry_after == 40  # window opened at 10, resets at 70
    # The noisy tenant's exhaustion never touches the quiet tenant.
    assert (
        controller.offer(_request(tenant="quiet"), 1, now=30)[0]
        is Decision.ADMITTED
    )


def test_shed_ladder_raises_the_priority_floor():
    policy = AdmissionPolicy(
        queue_capacity=10, cost_capacity=10_000, shed_start=0.3,
        shed_hard=0.6, tenant_limit=None,
    )
    controller = AdmissionController(policy)
    # Below shed_start: everything admitted.
    assert controller.offer(_request(priority=0), 1, now=0)[0] is Decision.ADMITTED
    assert controller.shed_floor() == 0
    for _ in range(2):
        controller.offer(_request(priority=1), 1, now=0)
    # 3 of 10 queued -> pressure 0.3 >= shed_start: best-effort sheds.
    assert controller.shed_floor() == 1
    assert controller.offer(_request(priority=0), 1, now=0)[0] is Decision.SHED
    assert controller.offer(_request(priority=1), 1, now=0)[0] is Decision.ADMITTED
    for _ in range(2):
        controller.offer(_request(priority=1), 1, now=0)
    # 6 of 10 queued -> pressure 0.6 >= shed_hard: only interactive.
    assert controller.shed_floor() == 2
    assert controller.offer(_request(priority=1), 1, now=0)[0] is Decision.SHED
    assert controller.offer(_request(priority=2), 1, now=0)[0] is Decision.ADMITTED


def test_cost_pressure_alone_can_raise_the_floor():
    controller = AdmissionController(
        AdmissionPolicy(queue_capacity=1_000, cost_capacity=100,
                        shed_start=0.5, shed_hard=0.9, tenant_limit=None)
    )
    controller.offer(_request(priority=2), cost=60, now=0)
    assert controller.queued_cost == 60
    assert controller.shed_floor() == 1
    assert controller.offer(_request(priority=0), 1, now=0)[0] is Decision.SHED


def test_pop_order_and_deadline_stamping():
    controller = AdmissionController(
        AdmissionPolicy(queue_capacity=10, tenant_limit=None,
                        shed_start=0.99, shed_hard=1.0, default_budget=77)
    )
    controller.offer(_request(priority=1, n=1), 1, now=100)
    controller.offer(_request(priority=2, n=2), 1, now=100)
    controller.offer(_request(priority=1, n=3, budget=30), 1, now=100)
    first = controller.pop()
    assert first.request.priority == 2
    second = controller.pop()
    assert second.request.query.n == 1  # FIFO within a class
    assert second.deadline.expires_at == 177  # policy default budget
    third = controller.pop()
    assert third.deadline.expires_at == 130  # request-carried budget
    assert controller.pop() is None
    assert controller.queued_cost == 0
