"""The query server: caching, deadlines, degradation, determinism."""

import numpy as np
import pytest

from repro.clock import SECONDS_PER_DAY, STUDY_START, SimClock, date_to_epoch
from repro.faults import FaultPlan
from repro.resilience import BreakerState
from repro.serving import (
    ActivityWindowQuery,
    AdmissionPolicy,
    DailySeriesQuery,
    Disposition,
    QueryRequest,
    QueryServer,
    ServingPolicy,
    TopDomainsQuery,
    scripted_workload,
    synthetic_store,
)
from repro.serving.sweep import verify_identity

T0 = date_to_epoch(STUDY_START)
START = T0 + 400 * SECONDS_PER_DAY


def _server(db, **kwargs):
    return QueryServer(db, SimClock(START), **kwargs)


def test_serve_answers_everything_and_matches_direct_calls():
    db = synthetic_store(11, domains=150)
    server = _server(db)
    records = server.serve(scripted_workload(db, 11, queries=60, start=START))
    assert len(records) == 60
    assert [r.seq for r in records] == list(range(60))
    assert all(record.answered for record in records)
    assert server.stats.unhandled == 0
    assert verify_identity(db, records, limit=60) == 0
    # Answered latencies are bounded by budget + service.
    assert server.stats.p99_latency() < 300


def test_cache_serves_generation_then_invalidates_on_write():
    db = synthetic_store(5, domains=80)
    server = _server(db)
    request = QueryRequest(query=TopDomainsQuery(n=4))
    first = server.serve([request])[0]
    second = server.serve([request])[0]
    assert first.disposition is Disposition.SERVED
    assert second.disposition is Disposition.CACHED
    assert second.value == first.value
    assert second.generation == first.generation
    assert second.latency == 0
    # A committed write bumps the generation: the cache must refuse
    # the stale entry and re-execute.
    target = db.all_domains()[0]
    db.add(target, T0 + SECONDS_PER_DAY, 5)
    third = server.serve([request])[0]
    assert third.disposition is Disposition.SERVED
    assert third.generation > first.generation


def test_deadline_cancels_inside_long_scans():
    db = synthetic_store(6, domains=400)
    # cost_rate=1: one simulated second per cost unit, so a whole-store
    # aggregate (cost ~400) blows any sane budget mid-scan.
    server = _server(db, serving=ServingPolicy(cost_rate=1))
    record = server.serve(
        [QueryRequest(query=TopDomainsQuery(n=3), budget=40)]
    )[0]
    assert record.disposition is Disposition.CANCELLED
    assert "deadline" in record.detail
    assert record.value is None
    # The worker was consumed up to the cancelling checkpoint, not the
    # full scan: finish beyond the deadline by at most one stride.
    assert record.finished_at > START + 40


def test_dead_on_dequeue_is_never_started():
    db = synthetic_store(6, domains=300)
    # One worker; the first query holds it (cost_rate=1 -> ~300s) while
    # the second's 20s budget expires in the queue.
    server = _server(
        db,
        serving=ServingPolicy(workers=1, cost_rate=1),
        admission=AdmissionPolicy(tenant_limit=None),
    )
    blocker = QueryRequest(query=TopDomainsQuery(n=3), budget=3_600)
    doomed = QueryRequest(
        query=DailySeriesQuery(
            domain=str(db.all_domains()[1]),
            start=T0,
            end=T0 + 30 * SECONDS_PER_DAY,
        ),
        budget=20,
    )
    records = server.serve([blocker, doomed])
    assert records[1].disposition is Disposition.EXPIRED
    assert records[1].detail == "deadline passed while queued"
    assert records[1].value is None


def test_stuck_worker_trips_breaker_then_degraded_reads():
    db = synthetic_store(8, domains=100)
    request = QueryRequest(query=TopDomainsQuery(n=5), budget=60)
    schedule = FaultPlan(stuck_worker_rate=1.0).schedule(seed=1)
    server = _server(
        db, serving=ServingPolicy(breaker_failures=1), schedule=schedule
    )
    # Every execution wedges, so the first aggregate holds its worker
    # until the deadline reaper frees it — and that failure trips the
    # breaker at the reap instant.
    wedged = server.serve([request])[0]
    assert wedged.disposition is Disposition.CANCELLED
    assert wedged.detail == "stuck worker reaped at deadline"
    assert wedged.finished_at == wedged.submitted_at + 60
    assert server.breaker.state is BreakerState.OPEN
    # Breaker open and no stale value yet: degradable queries are
    # refused fast, not wedged again.
    rejected = server.serve([request])[0]
    assert rejected.disposition is Disposition.REJECTED
    assert rejected.latency == 0


def test_degraded_read_serves_last_good_generation():
    db = synthetic_store(8, domains=100)
    request = QueryRequest(query=TopDomainsQuery(n=5), budget=60)
    server = _server(db, serving=ServingPolicy(breaker_failures=1))
    healthy = server.serve([request])[0]
    assert healthy.disposition is Disposition.SERVED
    # The store moves on; then the aggregate path goes unhealthy.
    db.add(db.all_domains()[2], T0 + 2 * SECONDS_PER_DAY, 9)
    server.breaker.record_failure(now=server.clock.now)
    assert server.breaker.state is BreakerState.OPEN
    degraded = server.serve([request])[0]
    assert degraded.disposition is Disposition.DEGRADED
    assert degraded.degraded
    assert degraded.value == healthy.value
    assert degraded.generation == healthy.generation
    assert degraded.generation < db.generation
    # Non-degradable queries never consult the breaker.
    point = server.serve(
        [
            QueryRequest(
                query=DailySeriesQuery(
                    domain=str(db.all_domains()[0]),
                    start=T0,
                    end=T0 + 10 * SECONDS_PER_DAY,
                )
            )
        ]
    )[0]
    assert point.disposition is Disposition.SERVED


def test_burst_windows_fan_out_arrivals():
    db = synthetic_store(4, domains=60)
    plan = FaultPlan(
        query_burst_episodes=1,
        query_burst_days=1.0,
        query_burst_fanout=5,
        horizon_start=START,
        horizon_end=START + SECONDS_PER_DAY,
    )
    server = _server(db, schedule=plan.schedule(seed=0))
    # The single window spans the whole one-day horizon, so the
    # arrival lands inside it deterministically.
    records = server.serve(
        [QueryRequest(query=TopDomainsQuery(n=3), at=START + 100)]
    )
    assert len(records) == 5


def test_same_seed_replays_bit_identically():
    def run():
        db = synthetic_store(13, domains=120)
        schedule = FaultPlan.overload(0.4, bursts=2, fanout=4)
        schedule = schedule.schedule(seed=13)
        server = _server(db, schedule=schedule)
        records = server.serve(
            scripted_workload(db, 13, queries=80, start=START)
        )
        return [
            (r.seq, r.disposition.value, r.finished_at) for r in records
        ], schedule.fingerprint()

    assert run() == run()


def test_threaded_mode_matches_direct_calls():
    db = synthetic_store(9, domains=150)
    server = _server(db)
    workload = scripted_workload(db, 9, queries=120, start=START)
    records = server.serve_threaded(workload, threads=4)
    assert len(records) == 120
    assert server.stats.unhandled == 0
    for record in records:
        assert record.answered
        direct = record.request.query.execute(db)
        if isinstance(direct, np.ndarray):
            assert np.array_equal(record.value, direct)
        else:
            assert record.value == direct
