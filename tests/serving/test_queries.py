"""Typed queries, deadlines, and the cooperative cost meter."""

import numpy as np
import pytest

from repro.clock import SECONDS_PER_DAY, STUDY_START, date_to_epoch
from repro.dns.name import DomainName
from repro.errors import ConfigError, DeadlineExceededError
from repro.serving import (
    ActivityWindowQuery,
    CostMeter,
    DailySeriesQuery,
    Deadline,
    TimelineQuery,
    TopDomainsQuery,
    query_from_payload,
    synthetic_store,
)

T0 = date_to_epoch(STUDY_START)


@pytest.fixture(scope="module")
def db():
    return synthetic_store(3, domains=120)


def test_deadline_arithmetic():
    deadline = Deadline.after(now=100, budget=30)
    assert deadline.expires_at == 130
    assert not deadline.expired(130)
    assert deadline.expired(131)
    assert deadline.remaining(110) == 20
    assert deadline.remaining(999) == 0
    with pytest.raises(ConfigError):
        Deadline.after(now=0, budget=0)


def test_meter_charges_and_cancels_at_checkpoints():
    meter = CostMeter(
        started_at=100, deadline=Deadline.after(100, 10), cost_rate=10,
        initial_delay=2,
    )
    meter.tick(50)  # 2 + 50//10 = 7s consumed; 107 <= 110
    assert meter.seconds() == 7
    with pytest.raises(DeadlineExceededError):
        meter.tick(50)  # 2 + 100//10 = 12s; 112 > 110
    # Without a deadline the meter only accounts.
    free = CostMeter(started_at=0, deadline=None, cost_rate=10)
    free.tick(10_000)
    assert free.seconds() == 1_000


def test_queries_match_direct_store_calls(db):
    domain = str(db.all_domains()[7])
    top = TopDomainsQuery(n=5).execute(db)
    assert len(top) == 5
    totals = {str(d): int(t) for d, t in zip(*[db.aggregate_snapshot()[0], db.aggregate_snapshot()[3]])}
    assert all(totals[name] == count for name, count in top)
    # Ranked by (-total, name): totals non-increasing, ties lexicographic.
    for (name_a, count_a), (name_b, count_b) in zip(top, top[1:]):
        assert (-count_a, name_a) < (-count_b, name_b)

    series = DailySeriesQuery(
        domain=domain, start=T0, end=T0 + 90 * SECONDS_PER_DAY
    ).execute(db)
    direct = db.daily_series_for(
        DomainName(domain), T0, T0 + 90 * SECONDS_PER_DAY
    )
    assert np.array_equal(series, direct)

    timeline = TimelineQuery(
        domain=domain, pivot=T0 + 200 * SECONDS_PER_DAY
    ).execute(db)
    assert np.array_equal(
        timeline,
        db.timeline_around(DomainName(domain), T0 + 200 * SECONDS_PER_DAY, 30, 30),
    )


def test_activity_window_counts_active_days(db):
    domain = db.all_domains()[3]
    result = ActivityWindowQuery(domain=str(domain)).execute(db)
    profile = db.profile(domain)
    assert result["total_queries"] == profile.total_queries
    full = db.daily_series_for(
        domain,
        (profile.first_seen // SECONDS_PER_DAY) * SECONDS_PER_DAY,
        profile.last_seen + SECONDS_PER_DAY,
    )
    assert result["active_days"] == int(np.count_nonzero(full))
    assert 1 <= result["active_days"] <= result["lifespan_days"]
    assert ActivityWindowQuery(domain="never-seen.example").execute(db) is None


def test_query_validation_and_cache_keys(db):
    with pytest.raises(ConfigError):
        TopDomainsQuery(n=0)
    with pytest.raises(ConfigError):
        DailySeriesQuery(domain="a.com", start=10, end=10)
    with pytest.raises(ConfigError):
        TimelineQuery(domain="a.com", pivot=0, days_before=0, days_after=0)
    keys = {
        TopDomainsQuery(n=5).cache_key(),
        TopDomainsQuery(n=10).cache_key(),
        DailySeriesQuery(domain="a.com", start=0, end=SECONDS_PER_DAY).cache_key(),
        TimelineQuery(domain="a.com", pivot=0).cache_key(),
        ActivityWindowQuery(domain="a.com").cache_key(),
    }
    assert len(keys) == 5
    for query in (TopDomainsQuery(), ActivityWindowQuery(domain="a.com")):
        assert query.estimated_cost(db) > 0


def test_query_from_payload_round_trip():
    query = query_from_payload({"kind": "daily-series", "domain": "x.com",
                                "start": 0, "end": SECONDS_PER_DAY})
    assert query == DailySeriesQuery(domain="x.com", start=0, end=SECONDS_PER_DAY)
    assert query_from_payload({"kind": "top-domains", "n": 3}) == TopDomainsQuery(n=3)
    with pytest.raises(ConfigError):
        query_from_payload({"kind": "no-such-kind"})
    with pytest.raises(ConfigError):
        query_from_payload({"kind": "timeline", "bogus": 1})


def test_only_whole_store_aggregates_degrade():
    assert TopDomainsQuery.degradable
    assert not DailySeriesQuery.degradable
    assert not TimelineQuery.degradable
    assert not ActivityWindowQuery.degradable
