"""Tests for the blocklist store, rate limiting, and feed generation."""

import pytest

from repro.blocklist.categories import PAPER_CATEGORY_SHARES, ThreatCategory
from repro.blocklist.feeds import FeedGenerator
from repro.blocklist.store import BlocklistStore, RateLimit
from repro.dns.name import DomainName
from repro.errors import RateLimitExceeded
from repro.rand import make_rng

BAD = DomainName("malware-site.com")


@pytest.fixture
def store():
    s = BlocklistStore(RateLimit(capacity=5, window_seconds=100))
    s.add(BAD, ThreatCategory.MALWARE, listed_at=10)
    return s


class TestStore:
    def test_lookup_hit_and_miss(self, store):
        assert store.lookup(BAD).category == ThreatCategory.MALWARE
        assert store.lookup(DomainName("clean.com")) is None
        assert BAD in store
        assert len(store) == 1

    def test_subdomain_matches_registered_domain(self, store):
        assert store.lookup(DomainName("cdn.malware-site.com")) is not None

    def test_relisting_keeps_earliest(self, store):
        entry = store.add(BAD, ThreatCategory.PHISHING, listed_at=99)
        assert entry.category == ThreatCategory.MALWARE
        assert entry.listed_at == 10

    def test_remove(self, store):
        assert store.remove(BAD)
        assert not store.remove(BAD)
        assert BAD not in store

    def test_histogram(self, store):
        store.add(DomainName("phish.net"), ThreatCategory.PHISHING)
        histogram = store.category_histogram()
        assert histogram[ThreatCategory.MALWARE] == 1
        assert histogram[ThreatCategory.PHISHING] == 1
        assert histogram[ThreatCategory.COMMAND_AND_CONTROL] == 0


class TestRateLimit:
    def test_budget_enforced(self, store):
        for _ in range(5):
            store.query(BAD, now=0)
        with pytest.raises(RateLimitExceeded):
            store.query(BAD, now=0)
        assert store.queries_served == 5
        assert store.queries_rejected == 1

    def test_window_refills(self, store):
        for _ in range(5):
            store.query(BAD, now=0)
        assert store.remaining_budget(now=0) == 0
        assert store.remaining_budget(now=100) == 5
        store.query(BAD, now=100)

    def test_query_many_raises_midway(self, store):
        domains = [DomainName(f"d{i}.com") for i in range(10)]
        with pytest.raises(RateLimitExceeded):
            store.query_many(domains, now=0)

    def test_query_many_hits(self):
        store = BlocklistStore(RateLimit(capacity=100, window_seconds=10))
        store.add(BAD, ThreatCategory.MALWARE)
        hits = store.query_many([BAD, DomainName("clean.org")], now=0)
        assert len(hits) == 1

    def test_invalid_rate_limit(self):
        with pytest.raises(ValueError):
            RateLimit(capacity=0)
        with pytest.raises(ValueError):
            RateLimit(window_seconds=0)


class TestFeedGenerator:
    def test_shares_approximated(self):
        generator = FeedGenerator(make_rng(7))
        domains = [DomainName(f"bad{i}.com") for i in range(4000)]
        entries = generator.entries_for(domains)
        histogram = {c: 0 for c in ThreatCategory}
        for entry in entries:
            histogram[entry.category] += 1
        shares = {c: n / len(entries) for c, n in histogram.items()}
        for category, expected in PAPER_CATEGORY_SHARES:
            assert shares[category] == pytest.approx(expected, abs=0.03)

    def test_populate(self):
        store = BlocklistStore()
        generator = FeedGenerator(make_rng(1))
        count = generator.populate(store, [BAD, DomainName("bad2.net")])
        assert count == 2
        assert len(store) == 2

    def test_custom_shares(self):
        generator = FeedGenerator(
            make_rng(1), category_shares=[(ThreatCategory.PHISHING, 1.0)]
        )
        assert generator.assign_category(BAD) == ThreatCategory.PHISHING

    def test_invalid_shares(self):
        with pytest.raises(ValueError):
            FeedGenerator(make_rng(1), category_shares=[(ThreatCategory.MALWARE, 0.0)])

    def test_deterministic(self):
        domains = [DomainName(f"bad{i}.com") for i in range(50)]
        a = FeedGenerator(make_rng(3)).entries_for(domains)
        b = FeedGenerator(make_rng(3)).entries_for(domains)
        assert [e.category for e in a] == [e.category for e in b]
