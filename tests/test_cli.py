"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.seed == 0
        assert args.domains == 6_000


class TestClassifierCommands:
    def test_squat_command(self, capsys):
        assert main(["squat", "gogle.com", "clean-site.org"]) == 0
        out = capsys.readouterr().out
        assert "typosquatting" in out
        assert "clean" in out

    def test_dga_command(self, capsys):
        assert main(["dga", "--seed", "1", "xkqzvwplfmqr.com", "schoolbook.com"]) == 0
        out = capsys.readouterr().out
        assert "DGA" in out
        assert "benign" in out


class TestStudyCommands:
    """Small-population smoke runs of every study command."""

    ARGS = ["--seed", "0", "--domains", "800", "--honeypot-scale", "0.001"]

    def test_scale(self, capsys):
        assert main(["scale"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Figure 6" in out

    def test_origin(self, capsys):
        assert main(["origin"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "WHOIS history join" in out
        assert "Figure 7" in out and "Figure 8" in out

    def test_security(self, capsys):
        assert main(["security"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Figure 15" in out

    def test_selection(self, capsys):
        assert main(["selection"] + self.ARGS) == 0
        assert "selected study domains" in capsys.readouterr().out

    def test_sinkhole(self, capsys):
        assert main(["sinkhole"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "sinkhole classification" in out
        assert "suspicious fraction" in out


class TestReportCommand:
    def test_report_renders_everything(self, capsys):
        assert main(
            ["report", "--seed", "0", "--domains", "800",
             "--honeypot-scale", "0.0008"]
        ) == 0
        out = capsys.readouterr().out
        for marker in ("Figure 3", "Table 1", "Figure 15", "§4.4"):
            assert marker in out, marker


class TestTraceAndValidate:
    def test_trace_roundtrip(self, capsys, tmp_path):
        out_dir = str(tmp_path / "trace")
        assert main(["trace", "generate", out_dir, "--domains", "500"]) == 0
        assert "saved trace" in capsys.readouterr().out
        assert main(["trace", "analyze", out_dir]) == 0
        out = capsys.readouterr().out
        assert "loaded trace" in out
        assert "Figure 3" in out and "Figure 4" in out

    def test_validate_scale_only(self, capsys):
        code = main(
            ["validate", "--seeds", "1", "--domains", "900", "--skip-origin"]
        )
        out = capsys.readouterr().out
        assert "shape robustness" in out
        assert code in (0, 1)  # robustness verdict, not a crash


class TestFaultsCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.seeds == 3
        assert args.rates == "0,0.01,0.05,0.1"
        assert args.gate == 0.05

    def test_fault_sweep_smoke(self, capsys):
        code = main(
            ["faults", "--seeds", "1", "--domains", "900",
             "--rates", "0,0.05", "--gate", "0.05"]
        )
        out = capsys.readouterr().out
        assert "fault rate" in out
        assert "delivered" in out
        assert "0.0%" in out and "5.0%" in out
        # Exit reflects the no-new-regressions gate, never a crash.
        assert code in (0, 1)

    def test_bad_rate_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["faults", "--seeds", "1", "--domains", "900",
                  "--rates", "0,1.5"])


class TestServe:
    def test_serve_requires_script_or_sweep(self, capsys):
        assert main(["serve"]) == 2
        assert "--script" in capsys.readouterr().err

    def test_serve_script_batch(self, tmp_path, capsys):
        script = tmp_path / "queries.jsonl"
        script.write_text(
            '{"kind": "top-domains", "n": 3, "tenant": "alice", "priority": 2}\n'
            '{"kind": "activity-window", "domain": "nx-00001.net", "at": 10}\n'
            '{"kind": "top-domains", "n": 3, "tenant": "bob", "at": 20}\n'
        )
        assert main(["serve", "--script", str(script), "--domains", "120"]) == 0
        out = capsys.readouterr().out
        assert "top-domains" in out
        assert "cached" in out  # the third line repeats the first query
        assert "answered 3/3" in out

    def test_serve_sweep_gates(self, capsys):
        assert (
            main(
                ["serve", "--sweep", "--queries", "60", "--domains", "150"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "clean" in out and "storm" in out
        assert "overload sweep passed" in out
