"""Tests for simulated time."""

import datetime

import pytest

from repro.clock import (
    SECONDS_PER_DAY,
    STUDY_END,
    STUDY_START,
    SimClock,
    date_to_epoch,
    days_between,
    epoch_to_date,
    month_key,
    month_range,
)


class TestConversions:
    def test_date_epoch_roundtrip(self):
        date = datetime.date(2019, 6, 15)
        assert epoch_to_date(date_to_epoch(date)) == date

    def test_month_key(self):
        assert month_key(date_to_epoch(datetime.date(2021, 3, 9))) == "2021-03"

    def test_month_range_spans_years(self):
        months = month_range(datetime.date(2014, 11, 1), datetime.date(2015, 2, 1))
        assert months == ["2014-11", "2014-12", "2015-01", "2015-02"]

    def test_study_window_has_108_months(self):
        assert len(month_range(STUDY_START, STUDY_END)) == 108

    def test_days_between(self):
        t0 = date_to_epoch(datetime.date(2020, 1, 1))
        t1 = t0 + 10 * SECONDS_PER_DAY
        assert days_between(t0, t1) == 10
        assert days_between(t1, t0) == -10


class TestSimClock:
    def test_starts_at_study_start(self):
        assert SimClock().date == STUDY_START

    def test_advance(self):
        clock = SimClock()
        clock.advance_days(31)
        assert clock.date == datetime.date(2014, 2, 1)

    def test_cannot_go_backwards(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.advance_days(-0.5)
        with pytest.raises(ValueError):
            clock.set_to(clock.now - 1)

    def test_set_to_forward(self):
        clock = SimClock()
        target = clock.now + 1000
        assert clock.set_to(target) == target
