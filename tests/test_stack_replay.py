"""Fast-path / full-stack consistency.

The 8-year trace writes aggregated rows straight into the database
(the SIE-style pre-aggregated path).  This test replays a sample of
the same per-domain activity through the *full* stack — clients →
recursive resolvers with negative caching → sensors → channel →
database — and checks the two paths agree on what they must agree on:

- every replayed domain appears in both stores;
- the stack sees at most the fast path's counts (negative caching can
  only suppress, never invent);
- with caching disabled and one client per query the two paths agree
  exactly.
"""

import pytest

from repro.clock import SECONDS_PER_DAY
from repro.passivedns.vantage import MultiVantageCollector
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig


@pytest.fixture(scope="module")
def trace():
    config = TraceConfig(total_domains=400, squat_count=16)
    return NxdomainTraceGenerator(seed=51, config=config).generate()


def replay_domain(collector, record, daily_counts, spread_clients):
    """Re-issue one domain's NX queries as client lookups."""
    client = 0
    for day, count in enumerate(daily_counts):
        day_start = record.became_nx_at + day * SECONDS_PER_DAY
        for i in range(int(count)):
            # Spread queries across the day (and optionally clients).
            timestamp = day_start + (i * SECONDS_PER_DAY) // max(int(count), 1)
            collector.query(
                client_id=client, qname=record.domain, now=timestamp
            )
            if spread_clients:
                client += 1


@pytest.fixture(scope="module")
def sample(trace):
    # A handful of modest-volume domains keeps the replay fast.
    records = []
    for record in trace.population:
        profile = trace.nx_db.profile(record.domain)
        if profile is None or not 5 <= profile.total_queries <= 120:
            continue
        records.append((record, profile))
        if len(records) == 8:
            break
    assert records, "trace produced no replayable domains"
    return records


class TestStackReplay:
    def test_no_cache_replay_matches_fast_path_exactly(self, trace, sample):
        collector = MultiVantageCollector(1, use_negative_cache=False)
        for record, profile in sample:
            series = trace.nx_db.daily_series_for(
                record.domain,
                record.became_nx_at,
                profile.last_seen + SECONDS_PER_DAY,
            )
            replay_domain(collector, record, series, spread_clients=False)
        for record, profile in sample:
            replayed = collector.database.profile(record.domain)
            assert replayed is not None, record.domain
            fast_path = trace.nx_db.daily_series_for(
                record.domain,
                record.became_nx_at,
                profile.last_seen + SECONDS_PER_DAY,
            ).sum()
            assert replayed.total_queries == fast_path, record.domain

    def test_cached_replay_only_suppresses(self, trace, sample):
        collector = MultiVantageCollector(1, use_negative_cache=True)
        for record, profile in sample:
            series = trace.nx_db.daily_series_for(
                record.domain,
                record.became_nx_at,
                profile.last_seen + SECONDS_PER_DAY,
            )
            replay_domain(collector, record, series, spread_clients=False)
        total_fast = 0
        total_stack = 0
        for record, profile in sample:
            replayed = collector.database.profile(record.domain)
            assert replayed is not None, record.domain
            fast_path = trace.nx_db.daily_series_for(
                record.domain,
                record.became_nx_at,
                profile.last_seen + SECONDS_PER_DAY,
            ).sum()
            assert replayed.total_queries <= fast_path
            total_fast += int(fast_path)
            total_stack += replayed.total_queries
        assert 0 < total_stack <= total_fast

    def test_every_replayed_domain_is_nxdomain(self, trace, sample):
        collector = MultiVantageCollector(2)
        record, _ = sample[0]
        result = collector.query(0, record.domain, now=record.became_nx_at)
        assert result.is_nxdomain
