"""Tests for database / WHOIS / trace persistence."""

import json

import pytest

from repro.dns.name import DomainName
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.io import load_database, save_database
from repro.whois.history import WhoisHistoryDatabase
from repro.whois.io import load_history, save_history
from repro.whois.record import WhoisRecord
from repro.workloads.persistence import load_trace, save_trace
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig

D1 = DomainName("alpha.com")
D2 = DomainName("beta.net")


class TestDatabaseIo:
    def test_roundtrip(self, tmp_path):
        db = PassiveDnsDatabase()
        db.add(D1, timestamp=0, count=10)
        db.add(D2, timestamp=86_400, count=3)
        path = tmp_path / "store.npz"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.total_responses() == 13
        assert loaded.unique_domains() == 2
        assert loaded.profile(D1).total_queries == 10
        assert loaded.monthly_response_series() == db.monthly_response_series()

    def test_roundtrip_empty(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_database(PassiveDnsDatabase(), path)
        assert load_database(path).total_responses() == 0

    def test_loaded_database_accepts_new_rows(self, tmp_path):
        db = PassiveDnsDatabase()
        db.add(D1, 0, 1)
        path = tmp_path / "s.npz"
        save_database(db, path)
        loaded = load_database(path)
        loaded.add(D1, 86_400, 2)
        loaded.add(D2, 0, 5)
        assert loaded.total_responses() == 8
        assert loaded.unique_domains() == 2

    def test_version_check(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            version=np.int64(99),
            domains=np.asarray([], dtype=object),
            first_seen=np.asarray([], dtype=np.int64),
            last_seen=np.asarray([], dtype=np.int64),
            totals=np.asarray([], dtype=np.int64),
            row_domain=np.asarray([], dtype=np.int64),
            row_time=np.asarray([], dtype=np.int64),
            row_count=np.asarray([], dtype=np.int64),
        )
        with pytest.raises(ValueError, match="version"):
            load_database(path)


class TestCorruptArchives:
    """Torn/damaged persistence artifacts surface as typed errors."""

    def test_truncated_npz_raises_typed_error(self, tmp_path):
        from repro.errors import CorruptArchiveError

        db = PassiveDnsDatabase()
        db.add(D1, timestamp=0, count=2)
        path = tmp_path / "store.npz"
        save_database(db, path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CorruptArchiveError) as excinfo:
            load_database(path)
        assert str(path) in excinfo.value.path

    def test_garbage_file_raises_typed_error(self, tmp_path):
        from repro.errors import CorruptArchiveError

        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CorruptArchiveError):
            load_database(path)

    def test_missing_file_still_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_database(tmp_path / "absent.npz")

    def test_save_database_is_atomic(self, tmp_path):
        db = PassiveDnsDatabase()
        db.add(D1, timestamp=0, count=1)
        path = tmp_path / "store.npz"
        save_database(db, path)
        save_database(db, path)  # overwrite goes through the temp file
        assert list(tmp_path.glob("*.tmp")) == []
        assert load_database(path).total_responses() == 1

    def test_corrupt_checkpoint_manifest_raises_typed_error(self, tmp_path):
        from repro.errors import CorruptArchiveError
        from repro.passivedns.io import load_checkpoint, save_checkpoint

        db = PassiveDnsDatabase()
        db.add(D1, timestamp=0, count=1)
        save_checkpoint(db, tmp_path, cursor=1)
        (tmp_path / "checkpoint.json").write_text("{ torn json")
        with pytest.raises(CorruptArchiveError):
            load_checkpoint(tmp_path)

    def test_checkpoint_fingerprint_mismatch_raises_typed_error(
        self, tmp_path
    ):
        from repro.errors import CorruptArchiveError
        from repro.passivedns.io import load_checkpoint, save_checkpoint

        db = PassiveDnsDatabase()
        db.add(D1, timestamp=0, count=1)
        save_checkpoint(db, tmp_path, cursor=1)
        other = PassiveDnsDatabase()
        other.add(D2, timestamp=0, count=5)
        save_database(other, tmp_path / "checkpoint.npz")
        with pytest.raises(CorruptArchiveError):
            load_checkpoint(tmp_path)


class TestWhoisIo:
    def test_roundtrip(self, tmp_path):
        history = WhoisHistoryDatabase()
        history.append(
            WhoisRecord(
                domain=D1,
                registrar="generic",
                registrant_handle="h-1",
                status="registered",
                created_at=0,
                expires_at=365 * 86_400,
                captured_at=0,
                nameservers=("ns1.alpha.com",),
            )
        )
        path = tmp_path / "whois.jsonl"
        assert save_history(history, path) == 1
        loaded = load_history(path)
        assert loaded.has_history(D1)
        record = loaded.latest(D1)
        assert record.registrar == "generic"
        assert record.nameservers == ("ns1.alpha.com",)

    def test_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"domain": "x.com"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_history(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "sparse.jsonl"
        path.write_text("\n\n")
        assert load_history(path).domain_count() == 0


class TestTraceIo:
    @pytest.fixture(scope="class")
    def trace(self):
        config = TraceConfig(total_domains=600, squat_count=25)
        return NxdomainTraceGenerator(seed=8, config=config).generate()

    def test_roundtrip(self, tmp_path, trace):
        root = save_trace(trace, tmp_path / "trace")
        loaded = load_trace(root)
        assert loaded.nx_db.total_responses() == trace.nx_db.total_responses()
        assert len(loaded.population) == len(trace.population)
        assert loaded.config == trace.config
        assert len(loaded.blocklist) == len(trace.blocklist)
        assert loaded.whois.domain_count() == trace.whois.domain_count()

    def test_ground_truth_survives(self, tmp_path, trace):
        root = save_trace(trace, tmp_path / "trace2")
        loaded = load_trace(root)
        for original, reloaded in zip(trace.population[:50], loaded.population[:50]):
            assert original.domain == reloaded.domain
            assert original.kind == reloaded.kind
            assert original.squat_type == reloaded.squat_type
            assert original.became_nx_at == reloaded.became_nx_at

    def test_analyses_agree_on_reload(self, tmp_path, trace):
        from repro.core.scale import monthly_response_series

        root = save_trace(trace, tmp_path / "trace3")
        loaded = load_trace(root)
        assert (
            monthly_response_series(loaded.nx_db).by_month
            == monthly_response_series(trace.nx_db).by_month
        )

    def test_manifest_mismatch_detected(self, tmp_path, trace):
        root = save_trace(trace, tmp_path / "trace4")
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["domains"] += 1
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="population count"):
            load_trace(root)

    def test_version_mismatch_detected(self, tmp_path, trace):
        root = save_trace(trace, tmp_path / "trace5")
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["version"] = 42
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="version"):
            load_trace(root)
