"""Tests for multi-vantage collection."""

import pytest

from repro.dns.name import DomainName
from repro.passivedns.vantage import (
    MultiVantageCollector,
    replay_clients,
)
from repro.rand import make_rng

GONE = DomainName("www.some-nx.com")


class TestCollector:
    def test_requires_vantage_points(self):
        with pytest.raises(ValueError):
            MultiVantageCollector(0)

    def test_stable_client_assignment(self):
        collector = MultiVantageCollector(4)
        assert collector.resolver_for(5) is collector.resolver_for(5)
        assert collector.resolver_for(1) is not collector.resolver_for(2)

    def test_single_vantage_suppresses_repeats(self):
        collector = MultiVantageCollector(1)
        for i in range(10):
            collector.query(client_id=i, qname=GONE, now=i * 10)
        stats = collector.stats()
        assert stats.client_queries == 10
        assert stats.channel_observations == 1
        assert stats.suppression == pytest.approx(0.9)

    def test_independent_caches_per_vantage(self):
        collector = MultiVantageCollector(5)
        for client in range(5):
            collector.query(client_id=client, qname=GONE, now=client)
        # Five clients behind five different resolvers: five cache
        # misses, five observations.
        assert collector.stats().channel_observations == 5

    def test_database_wired_to_channel(self):
        collector = MultiVantageCollector(2)
        collector.query(0, GONE, now=0)
        assert collector.database.total_responses() == 1
        assert collector.database.profile(GONE) is not None

    def test_no_negative_cache_sees_everything(self):
        collector = MultiVantageCollector(1, use_negative_cache=False)
        for i in range(10):
            collector.query(client_id=0, qname=GONE, now=i)
        assert collector.stats().suppression == 0.0


class TestReplay:
    def test_more_vantage_points_more_visibility(self):
        single = replay_clients(
            MultiVantageCollector(1), make_rng(4), clients=32, queries=600
        )
        many = replay_clients(
            MultiVantageCollector(16), make_rng(4), clients=32, queries=600
        )
        assert single.client_queries == many.client_queries == 600
        assert many.channel_observations > single.channel_observations

    def test_replay_deterministic(self):
        a = replay_clients(
            MultiVantageCollector(4), make_rng(9), clients=16, queries=300
        )
        b = replay_clients(
            MultiVantageCollector(4), make_rng(9), clients=16, queries=300
        )
        assert a.channel_observations == b.channel_observations
