"""Tests for observations, the SIE channel, and sensors."""

import pytest

from repro.dns.hierarchy import DnsHierarchy
from repro.dns.message import DnsMessage, RCode, RRType
from repro.dns.name import DomainName
from repro.dns.tld import TldRegistry
from repro.dns.wire import encode_message
from repro.passivedns.channel import SieChannel
from repro.passivedns.record import DnsObservation
from repro.passivedns.sensor import Sensor, SensorTappedResolver

GONE = DomainName("www.gone-domain.com")


def nx_observation(name="gone.com", ts=100, count=1):
    return DnsObservation(DomainName(name), RCode.NXDOMAIN, ts, count=count)


class TestObservation:
    def test_validation(self):
        with pytest.raises(ValueError):
            nx_observation(count=0)
        with pytest.raises(ValueError):
            nx_observation(ts=-1)

    def test_registered_domain_projection(self):
        obs = DnsObservation(GONE, RCode.NXDOMAIN, 0)
        assert obs.registered_domain == DomainName("gone-domain.com")
        assert obs.is_nxdomain


class TestChannel:
    def test_filters_non_nxdomain(self):
        channel = SieChannel()
        received = []
        channel.subscribe(received.append)
        assert channel.publish(nx_observation())
        assert not channel.publish(
            DnsObservation(DomainName("ok.com"), RCode.NOERROR, 0)
        )
        assert len(received) == 1
        assert channel.published == 1
        assert channel.dropped == 1

    def test_filters_reverse_lookups(self):
        channel = SieChannel()
        obs = DnsObservation(
            DomainName("1.2.3.4.in-addr.arpa"), RCode.NXDOMAIN, 0
        )
        assert not channel.publish(obs)

    def test_unfiltered_channel(self):
        channel = SieChannel(nxdomain_only=False, drop_reverse_lookups=False)
        assert channel.publish(DnsObservation(DomainName("ok.com"), RCode.NOERROR, 0))

    def test_multiple_subscribers(self):
        channel = SieChannel()
        a, b = [], []
        channel.subscribe(a.append)
        channel.subscribe(b.append)
        channel.publish(nx_observation())
        assert len(a) == len(b) == 1
        channel.unsubscribe(b.append)
        channel.publish(nx_observation())
        assert len(a) == 2 and len(b) == 1

    def test_subscriber_count(self):
        channel = SieChannel()
        assert channel.subscriber_count == 0
        channel.subscribe(lambda o: None)
        assert channel.subscriber_count == 1


class TestSensor:
    def test_wire_tap_decodes_and_publishes(self):
        channel = SieChannel()
        received = []
        channel.subscribe(received.append)
        sensor = Sensor("eu-west", channel)
        query = DnsMessage.make_query(GONE, msg_id=5)
        response = query.make_response(rcode=RCode.NXDOMAIN)
        obs = sensor.observe_wire(encode_message(response), now=50)
        assert obs is not None
        assert obs.qname == GONE
        assert obs.sensor_id == "eu-west"
        assert received == [obs]

    def test_malformed_wire_counted_not_raised(self):
        sensor = Sensor("s", SieChannel())
        assert sensor.observe_wire(b"\x00\x01", now=0) is None
        assert sensor.decode_errors == 1

    def test_queries_ignored(self):
        sensor = Sensor("s", SieChannel())
        query = DnsMessage.make_query(GONE)
        assert sensor.observe_message(query, now=0) is None

    def test_noerror_filtered_by_channel(self):
        sensor = Sensor("s", SieChannel())
        query = DnsMessage.make_query(GONE)
        assert sensor.observe_message(query.make_response(), now=0) is None
        assert sensor.observed == 1


class TestSensorTappedResolver:
    @pytest.fixture
    def tapped(self):
        hierarchy = DnsHierarchy.build(TldRegistry.default())
        hierarchy.register_domain(DomainName("alive.com"), "10.0.0.1")
        channel = SieChannel()
        received = []
        channel.subscribe(received.append)
        resolver = SensorTappedResolver(
            hierarchy.make_recursive_resolver(), Sensor("tap", channel)
        )
        return resolver, received

    def test_nxdomain_visible_once_then_cached(self, tapped):
        resolver, received = tapped
        gone = DomainName("www.gone.com")
        resolver.resolve(gone, now=0)
        resolver.resolve(gone, now=60)  # negative cache hit: invisible
        assert len(received) == 1

    def test_negative_cache_expiry_reappears(self, tapped):
        resolver, received = tapped
        gone = DomainName("www.gone.com")
        resolver.resolve(gone, now=0)
        resolver.resolve(gone, now=1000)  # TLD negative TTL is 900
        assert len(received) == 2

    def test_positive_answers_not_on_nx_channel(self, tapped):
        resolver, received = tapped
        resolver.resolve(DomainName("www.alive.com"), now=0)
        assert received == []
