"""Tests for the columnar passive DNS database."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clock import SECONDS_PER_DAY
from repro.dns.message import RCode
from repro.dns.name import DomainName
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.record import DnsObservation
from repro.passivedns.sampling import sample_domains, scale_up
from repro.rand import make_rng

DAY = SECONDS_PER_DAY
D1 = DomainName("alpha.com")
D2 = DomainName("beta.net")


@pytest.fixture
def db():
    database = PassiveDnsDatabase()
    database.add(D1, timestamp=0, count=10)
    database.add(D1, timestamp=5 * DAY, count=5)
    database.add(D2, timestamp=2 * DAY, count=3)
    return database


class TestIngestion:
    def test_totals(self, db):
        assert db.total_responses() == 18
        assert db.unique_domains() == 2
        assert db.row_count() == 3

    def test_ingest_filters_non_nx(self, db):
        db.ingest(DnsObservation(DomainName("x.org"), RCode.NOERROR, 0))
        assert db.unique_domains() == 2
        db.ingest(DnsObservation(DomainName("x.org"), RCode.NXDOMAIN, 0))
        assert db.unique_domains() == 3

    def test_subdomains_collapse_via_ingest(self, db):
        db.ingest(
            DnsObservation(DomainName("www.alpha.com"), RCode.NXDOMAIN, 9 * DAY)
        )
        assert db.profile(D1).total_queries == 16

    def test_count_validation(self, db):
        with pytest.raises(ValueError):
            db.add(D1, timestamp=0, count=0)


class TestProfiles:
    def test_profile_aggregates(self, db):
        profile = db.profile(D1)
        assert profile.first_seen == 0
        assert profile.last_seen == 5 * DAY
        assert profile.total_queries == 15
        assert profile.lifespan_days() == 5
        assert profile.tld == "com"

    def test_profile_missing(self, db):
        assert db.profile(DomainName("nope.org")) is None

    def test_profile_by_subdomain(self, db):
        assert db.profile(DomainName("www.alpha.com")).domain == D1

    def test_monthly_rate(self, db):
        # 15 queries over 5 days -> one-month floor -> 15/month... wait:
        # months = max(5,1)/30 = 1/6; max(1/6, 1.0) = 1.0 -> 15.0.
        assert db.profile(D1).monthly_rate() == pytest.approx(15.0)

    def test_high_traffic_selection(self, db):
        assert {p.domain for p in db.high_traffic_domains(10)} == {D1}
        assert {p.domain for p in db.high_traffic_domains(1)} == {D1, D2}


class TestSeries:
    def test_monthly_series(self, db):
        series = db.monthly_response_series()
        assert series == {"2014-01": 18} or sum(series.values()) == 18

    def test_monthly_series_spans_months(self):
        db = PassiveDnsDatabase()
        db.add(D1, timestamp=0, count=1)           # 1970-01
        db.add(D1, timestamp=40 * DAY, count=2)    # 1970-02
        series = db.monthly_response_series()
        assert series["1970-01"] == 1
        assert series["1970-02"] == 2

    def test_empty_series(self):
        assert PassiveDnsDatabase().monthly_response_series() == {}

    def test_daily_series(self, db):
        series = db.daily_series_for(D1, start=0, end=7 * DAY)
        assert series[0] == 10
        assert series[5] == 5
        assert series.sum() == 15

    def test_daily_series_window_clips(self, db):
        series = db.daily_series_for(D1, start=DAY, end=6 * DAY)
        assert series.sum() == 5

    def test_daily_series_unknown_domain(self, db):
        assert db.daily_series_for(DomainName("nope.org"), 0, DAY).sum() == 0

    def test_timeline_around_pivot(self, db):
        timeline = db.timeline_around(D1, pivot=3 * DAY, days_before=3, days_after=4)
        assert len(timeline) == 7
        assert timeline[0] == 10  # day -3 = t0
        assert timeline[5] == 5   # day +2 = t5


class TestTlds:
    def test_tld_histogram(self, db):
        histogram = db.tld_histogram()
        assert histogram["com"] == (1, 15)
        assert histogram["net"] == (1, 3)

    def test_top_tlds_order(self):
        db = PassiveDnsDatabase()
        for i in range(3):
            db.add(DomainName(f"a{i}.com"), 0)
        db.add(DomainName("b.net"), 0, count=100)
        top = db.top_tlds(2)
        assert top[0][0] == "com"  # ranked by unique domains
        assert top[0][1] == 3
        assert top[1] == ("net", 1, 100)


class TestLifespanDecay:
    def test_decay_shapes(self):
        db = PassiveDnsDatabase()
        # d1 queried on days 0,1,2; d2 only day 0.
        for day in range(3):
            db.add(D1, day * DAY, count=2)
        db.add(D2, 10 * DAY, count=1)  # its own day 0
        domains, queries = db.lifespan_decay(max_days=5)
        assert domains.tolist() == [2, 1, 1, 0, 0]
        assert queries.tolist() == [3, 2, 2, 0, 0]

    def test_decay_window_bound(self):
        db = PassiveDnsDatabase()
        db.add(D1, 0)
        db.add(D1, 100 * DAY)
        domains, queries = db.lifespan_decay(max_days=10)
        assert queries.sum() == 1  # the day-100 row falls outside

    def test_empty_decay(self):
        domains, queries = PassiveDnsDatabase().lifespan_decay(5)
        assert domains.sum() == 0 and queries.sum() == 0

    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 30)), min_size=1, max_size=50))
    def test_decay_conserves_queries(self, rows):
        db = PassiveDnsDatabase()
        for domain_index, day in rows:
            db.add(DomainName(f"d{domain_index}.com"), day * DAY)
        _, queries = db.lifespan_decay(max_days=31)
        assert queries.sum() == len(rows)


class TestSampling:
    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            sample_domains([D1], ratio=0.0, rng=make_rng(1))
        with pytest.raises(ValueError):
            sample_domains([D1], ratio=1.5, rng=make_rng(1))

    def test_sample_size(self):
        population = [DomainName(f"d{i}.com") for i in range(1000)]
        sample = sample_domains(population, 0.1, make_rng(2))
        assert len(sample) == 100
        assert len(set(sample)) == 100  # without replacement

    def test_at_least_one(self):
        sample = sample_domains([D1, D2], 0.001, make_rng(1))
        assert len(sample) == 1
        assert sample_domains([D1, D2], 0.001, make_rng(1), at_least_one=False) == []

    def test_empty_population(self):
        assert sample_domains([], 0.5, make_rng(1)) == []

    def test_deterministic(self):
        population = [DomainName(f"d{i}.com") for i in range(100)]
        assert sample_domains(population, 0.2, make_rng(5)) == sample_domains(
            population, 0.2, make_rng(5)
        )

    def test_scale_up(self):
        assert scale_up(146, 1 / 1000) == pytest.approx(146_000)
        with pytest.raises(ValueError):
            scale_up(1, 0)
