"""Tests for the columnar passive DNS database."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clock import SECONDS_PER_DAY
from repro.dns.message import RCode
from repro.dns.name import DomainName
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.record import DnsObservation
from repro.passivedns.sampling import sample_domains, scale_up
from repro.rand import make_rng

DAY = SECONDS_PER_DAY
D1 = DomainName("alpha.com")
D2 = DomainName("beta.net")


@pytest.fixture
def db():
    database = PassiveDnsDatabase()
    database.add(D1, timestamp=0, count=10)
    database.add(D1, timestamp=5 * DAY, count=5)
    database.add(D2, timestamp=2 * DAY, count=3)
    return database


class TestIngestion:
    def test_totals(self, db):
        assert db.total_responses() == 18
        assert db.unique_domains() == 2
        assert db.row_count() == 3

    def test_ingest_filters_non_nx(self, db):
        db.ingest(DnsObservation(DomainName("x.org"), RCode.NOERROR, 0))
        assert db.unique_domains() == 2
        db.ingest(DnsObservation(DomainName("x.org"), RCode.NXDOMAIN, 0))
        assert db.unique_domains() == 3

    def test_subdomains_collapse_via_ingest(self, db):
        db.ingest(
            DnsObservation(DomainName("www.alpha.com"), RCode.NXDOMAIN, 9 * DAY)
        )
        assert db.profile(D1).total_queries == 16

    def test_count_validation(self, db):
        with pytest.raises(ValueError):
            db.add(D1, timestamp=0, count=0)


class TestProfiles:
    def test_profile_aggregates(self, db):
        profile = db.profile(D1)
        assert profile.first_seen == 0
        assert profile.last_seen == 5 * DAY
        assert profile.total_queries == 15
        assert profile.lifespan_days() == 5
        assert profile.tld == "com"

    def test_profile_missing(self, db):
        assert db.profile(DomainName("nope.org")) is None

    def test_profile_by_subdomain(self, db):
        assert db.profile(DomainName("www.alpha.com")).domain == D1

    def test_monthly_rate(self, db):
        # 15 queries over 5 days -> months = max(5,1)/30 = 1/6 -> 90/month.
        # A sub-month lifespan is *not* clamped up to a full month: the
        # rate is a true per-month extrapolation, so short-lived bursts
        # rank above slow drips of the same total volume.
        assert db.profile(D1).monthly_rate() == pytest.approx(90.0)

    def test_monthly_rate_single_day(self, db):
        # Zero-day lifespans use the one-day floor: 3 / (1/30) = 90.
        assert db.profile(D2).monthly_rate() == pytest.approx(90.0)

    def test_high_traffic_selection(self, db):
        # Both fixtures extrapolate to 90/month, so thresholds select on
        # the unclamped rate.  100 excludes both; 90 keeps both; the §3.3
        # study-set selection is unaffected because it also requires a
        # >=180-day NX window, where the old clamp never bound.
        assert db.high_traffic_domains(100) == []
        assert {p.domain for p in db.high_traffic_domains(90)} == {D1, D2}
        assert {p.domain for p in db.high_traffic_domains(1)} == {D1, D2}


class TestSeries:
    def test_monthly_series(self, db):
        series = db.monthly_response_series()
        assert series == {"2014-01": 18} or sum(series.values()) == 18

    def test_monthly_series_spans_months(self):
        db = PassiveDnsDatabase()
        db.add(D1, timestamp=0, count=1)           # 1970-01
        db.add(D1, timestamp=40 * DAY, count=2)    # 1970-02
        series = db.monthly_response_series()
        assert series["1970-01"] == 1
        assert series["1970-02"] == 2

    def test_empty_series(self):
        assert PassiveDnsDatabase().monthly_response_series() == {}

    def test_daily_series(self, db):
        series = db.daily_series_for(D1, start=0, end=7 * DAY)
        assert series[0] == 10
        assert series[5] == 5
        assert series.sum() == 15

    def test_daily_series_window_clips(self, db):
        series = db.daily_series_for(D1, start=DAY, end=6 * DAY)
        assert series.sum() == 5

    def test_daily_series_unknown_domain(self, db):
        assert db.daily_series_for(DomainName("nope.org"), 0, DAY).sum() == 0

    def test_timeline_around_pivot(self, db):
        timeline = db.timeline_around(D1, pivot=3 * DAY, days_before=3, days_after=4)
        assert len(timeline) == 7
        assert timeline[0] == 10  # day -3 = t0
        assert timeline[5] == 5   # day +2 = t5


class TestTlds:
    def test_tld_histogram(self, db):
        histogram = db.tld_histogram()
        assert histogram["com"] == (1, 15)
        assert histogram["net"] == (1, 3)

    def test_top_tlds_order(self):
        db = PassiveDnsDatabase()
        for i in range(3):
            db.add(DomainName(f"a{i}.com"), 0)
        db.add(DomainName("b.net"), 0, count=100)
        top = db.top_tlds(2)
        assert top[0][0] == "com"  # ranked by unique domains
        assert top[0][1] == 3
        assert top[1] == ("net", 1, 100)


class TestLifespanDecay:
    def test_decay_shapes(self):
        db = PassiveDnsDatabase()
        # d1 queried on days 0,1,2; d2 only day 0.
        for day in range(3):
            db.add(D1, day * DAY, count=2)
        db.add(D2, 10 * DAY, count=1)  # its own day 0
        domains, queries = db.lifespan_decay(max_days=5)
        assert domains.tolist() == [2, 1, 1, 0, 0]
        assert queries.tolist() == [3, 2, 2, 0, 0]

    def test_decay_window_bound(self):
        db = PassiveDnsDatabase()
        db.add(D1, 0)
        db.add(D1, 100 * DAY)
        domains, queries = db.lifespan_decay(max_days=10)
        assert queries.sum() == 1  # the day-100 row falls outside

    def test_empty_decay(self):
        domains, queries = PassiveDnsDatabase().lifespan_decay(5)
        assert domains.sum() == 0 and queries.sum() == 0

    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 30)), min_size=1, max_size=50))
    def test_decay_conserves_queries(self, rows):
        db = PassiveDnsDatabase()
        for domain_index, day in rows:
            db.add(DomainName(f"d{domain_index}.com"), day * DAY)
        _, queries = db.lifespan_decay(max_days=31)
        assert queries.sum() == len(rows)


class TestBatchIngest:
    def test_batch_matches_scalar(self):
        """add_batch lands the same store as row-by-row add."""
        rng = make_rng(7)
        domains = [DomainName(f"d{i}.com") for i in range(20)]
        rows = [
            (domains[int(rng.integers(0, 20))],
             int(rng.integers(0, 400)) * DAY,
             int(rng.integers(1, 9)))
            for _ in range(500)
        ]
        scalar = PassiveDnsDatabase()
        for domain, timestamp, count in rows:
            scalar.add(domain, timestamp, count)
        batched = PassiveDnsDatabase()
        ids = batched.intern_many(domain for domain, _, _ in rows)
        batched.add_batch(
            ids,
            np.asarray([t for _, t, _ in rows], dtype=np.int64),
            np.asarray([c for _, _, c in rows], dtype=np.int64),
        )
        assert batched.fingerprint() == scalar.fingerprint()
        assert batched.total_responses() == scalar.total_responses()
        assert batched.monthly_response_series() == scalar.monthly_response_series()
        assert batched.tld_histogram() == scalar.tld_histogram()
        for domain in domains:
            a, b = batched.profile(domain), scalar.profile(domain)
            assert (a is None) == (b is None)
            if a is not None:
                assert (a.first_seen, a.last_seen, a.total_queries) == (
                    b.first_seen, b.last_seen, b.total_queries
                )

    def test_add_rows_matches_scalar(self):
        scalar = PassiveDnsDatabase()
        batched = PassiveDnsDatabase()
        times = [0, 3 * DAY, 3 * DAY, 9 * DAY]
        counts = [2, 1, 4, 1]
        for t, c in zip(times, counts):
            scalar.add(D1, t, c)
        batched.add_rows(D1, times, counts)
        assert batched.fingerprint() == scalar.fingerprint()
        assert batched.row_count() == scalar.row_count() == 4

    def test_batch_validation(self):
        db = PassiveDnsDatabase()
        ids = db.intern_many([D1])
        with pytest.raises(ValueError):
            db.add_batch(ids, np.asarray([0, DAY]), np.asarray([1, 1]))
        with pytest.raises(ValueError):
            db.add_batch(ids, np.asarray([0]), np.asarray([0]))
        with pytest.raises(ValueError):
            db.add_batch(np.asarray([5]), np.asarray([0]), np.asarray([1]))

    def test_empty_batch_is_noop(self, db):
        before = db.fingerprint()
        db.add_batch(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        db.add_rows(D1, [], [])
        assert db.fingerprint() == before

    def test_chunk_sealing_preserves_contents(self):
        """Rows straddling multiple sealed chunks read back intact."""
        db = PassiveDnsDatabase()
        db._CHUNK = 64  # instance-level override: seal early
        rng = make_rng(11)
        total = 0
        for i in range(300):
            count = int(rng.integers(1, 5))
            total += count
            db.add(DomainName(f"d{i % 7}.com"), i * DAY, count)
        assert db.row_count() == 300
        assert db.total_responses() == total
        series = db.daily_series_for(DomainName("d0.com"), 0, 300 * DAY)
        assert series.sum() == db.profile(DomainName("d0.com")).total_queries

    def test_snapshot_immune_to_later_appends(self):
        """Column snapshots must not alias the mutable tail buffer."""
        db = PassiveDnsDatabase()
        db.add(D1, 0, count=10)
        ids, times, counts = db._columns()
        db.add(D2, 5 * DAY, count=3)
        assert counts.tolist() == [10]
        assert db._columns()[2].tolist() == [10, 3]


class TestAggregateCache:
    def test_cache_invalidated_by_add(self, db):
        """Aggregates recompute after a post-aggregation mutation."""
        assert db.monthly_response_series()  # prime the cache
        first_fp = db.fingerprint()
        histogram = db.tld_histogram()
        assert histogram["com"] == (1, 15)
        db.add(DomainName("gamma.org"), 7 * DAY, count=4)
        assert db.total_responses() == 22
        assert db.tld_histogram()["org"] == (1, 4)
        assert sum(db.monthly_response_series().values()) == 22
        assert db.fingerprint() != first_fp
        decay_before = db.lifespan_decay(5)[1].sum()
        db.add(DomainName("gamma.org"), 7 * DAY, count=1)
        assert db.lifespan_decay(5)[1].sum() == decay_before + 1

    def test_cached_results_are_copies(self, db):
        db.monthly_response_series()["2014-01"] = -1
        assert -1 not in db.monthly_response_series().values()
        db.lifespan_decay(5)[0][:] = -1
        assert (db.lifespan_decay(5)[0] >= 0).all()

    def test_fingerprint_order_insensitive(self):
        forward = PassiveDnsDatabase()
        backward = PassiveDnsDatabase()
        rows = [(D1, 0, 1), (D2, DAY, 2), (D1, 2 * DAY, 3)]
        for domain, t, c in rows:
            forward.add(domain, t, c)
        for domain, t, c in reversed(rows):
            backward.add(domain, t, c)
        assert forward.fingerprint() == backward.fingerprint()


class TestIndexedSeries:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5), st.integers(0, 120), st.integers(1, 6)
            ),
            min_size=1,
            max_size=80,
        ),
        st.integers(0, 60),
        st.integers(0, 70),
    )
    def test_indexed_matches_scan(self, rows, start_day, span_days):
        """The CSR-indexed series equals the reference masked scan."""
        db = PassiveDnsDatabase()
        for domain_index, day, count in rows:
            db.add(DomainName(f"d{domain_index}.com"), day * DAY, count)
        start = start_day * DAY
        end = (start_day + span_days) * DAY
        for domain_index in range(6):
            domain = DomainName(f"d{domain_index}.com")
            np.testing.assert_array_equal(
                db.daily_series_for(domain, start, end),
                db._daily_series_scan(domain, start, end),
            )


class TestDedupWindow:
    def test_restore_trims_to_window(self):
        db = PassiveDnsDatabase(deduplicate=True)
        oversized = [("sensor", i, 0) for i in range(db.DEDUP_WINDOW + 100)]
        db.restore_recent_keys(oversized)
        restored = db.recent_keys()
        assert len(restored) == db.DEDUP_WINDOW
        # The newest keys survive; the oldest 100 are dropped.
        assert restored[0] == ("sensor", 100, 0)
        assert restored[-1] == ("sensor", db.DEDUP_WINDOW + 99, 0)

    def test_restore_roundtrip_under_window(self):
        db = PassiveDnsDatabase(deduplicate=True)
        keys = [("sensor", i, 0) for i in range(10)]
        db.restore_recent_keys(keys)
        assert db.recent_keys() == keys


class TestSampling:
    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            sample_domains([D1], ratio=0.0, rng=make_rng(1))
        with pytest.raises(ValueError):
            sample_domains([D1], ratio=1.5, rng=make_rng(1))

    def test_sample_size(self):
        population = [DomainName(f"d{i}.com") for i in range(1000)]
        sample = sample_domains(population, 0.1, make_rng(2))
        assert len(sample) == 100
        assert len(set(sample)) == 100  # without replacement

    def test_at_least_one(self):
        sample = sample_domains([D1, D2], 0.001, make_rng(1))
        assert len(sample) == 1
        assert sample_domains([D1, D2], 0.001, make_rng(1), at_least_one=False) == []

    def test_empty_population(self):
        assert sample_domains([], 0.5, make_rng(1)) == []

    def test_deterministic(self):
        population = [DomainName(f"d{i}.com") for i in range(100)]
        assert sample_domains(population, 0.2, make_rng(5)) == sample_domains(
            population, 0.2, make_rng(5)
        )

    def test_scale_up(self):
        assert scale_up(146, 1 / 1000) == pytest.approx(146_000)
        with pytest.raises(ValueError):
            scale_up(1, 0)
