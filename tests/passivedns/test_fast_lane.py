"""The vectorized ingest fast lane ≡ the record-at-a-time path.

The fast lane batches clean stretches through ``add_batch`` but must
stay *observably identical* to record-at-a-time ingestion: same store
fingerprint, same dedup counters, same pipeline stats, same domain
intern order — under every fault family the schedule can throw at it,
and across a checkpoint/crash/resume cut landing mid-stretch.
"""

import dataclasses

import pytest

from repro.clock import STUDY_START, date_to_epoch
from repro.dns.message import RCode
from repro.dns.name import DomainName
from repro.faults import FaultPlan
from repro.passivedns.pipeline import ResilientIngestPipeline
from repro.passivedns.record import DnsObservation
from repro.resilience import RetryPolicy

T0 = date_to_epoch(STUDY_START)


def _observations(count=300):
    return [
        DnsObservation(
            qname=DomainName(f"host{i % 80}.example{i % 11}.com"),
            rcode=RCode.NXDOMAIN,
            timestamp=T0 + i * 3_600,
            sensor_id="s1",
            count=1 + i % 3,
        )
        for i in range(count)
    ]


def _run(observations, plan, seed, fast_lane):
    pipeline = ResilientIngestPipeline(
        schedule=plan.schedule(seed) if plan is not None else None,
        retry_policy=RetryPolicy(max_attempts=2),
        fast_lane=fast_lane,
    )
    pipeline.ingest_many(observations)
    pipeline.finish()
    return pipeline


def _observable_state(pipeline):
    db = pipeline.database
    return (
        db.fingerprint(),
        db.duplicates_suppressed,
        db.total_responses(),
        [str(d) for d in db.all_domains()],  # intern order, not just set
        dataclasses.asdict(pipeline.stats),
    )


FAULT_MATRIX = [
    pytest.param(None, id="clean"),
    pytest.param(FaultPlan(drop_rate=0.15), id="drops"),
    pytest.param(FaultPlan(duplicate_rate=0.3), id="duplicates"),
    pytest.param(FaultPlan(reorder_rate=0.4, reorder_depth=5), id="reorder"),
    pytest.param(FaultPlan(store_failure_rate=0.25), id="store-faults"),
    pytest.param(FaultPlan(subscriber_crash_rate=0.2), id="crashes"),
    pytest.param(
        FaultPlan(burst_episodes=2, burst_days=40.0, burst_multiplier=4),
        id="bursts",
    ),
    pytest.param(
        FaultPlan(
            drop_rate=0.05,
            duplicate_rate=0.1,
            reorder_rate=0.2,
            reorder_depth=4,
            store_failure_rate=0.1,
            subscriber_crash_rate=0.05,
            burst_episodes=1,
            burst_days=30.0,
            burst_multiplier=3,
        ),
        id="everything-at-once",
    ),
]


@pytest.mark.parametrize("plan", FAULT_MATRIX)
@pytest.mark.parametrize("seed", [0, 7])
def test_fast_lane_matches_record_path(plan, seed):
    observations = _observations()
    fast = _run(observations, plan, seed, fast_lane=True)
    record = _run(observations, plan, seed, fast_lane=False)
    assert _observable_state(fast) == _observable_state(record)


def test_fast_lane_with_dedup_store():
    """Dedup-window suppression happens at admit time (arrival order),
    so buffering the accepted rows cannot change what gets suppressed."""
    observations = _observations(200)
    doubled = [o for o in observations for _ in range(2)]
    plan = FaultPlan(reorder_rate=0.3, reorder_depth=3)
    fast = _run(doubled, plan, seed=3, fast_lane=True)
    record = _run(doubled, plan, seed=3, fast_lane=False)
    assert fast.database.duplicates_suppressed > 0
    assert _observable_state(fast) == _observable_state(record)


def _store_state(pipeline):
    """Observable state minus the recovery-bookkeeping counters.

    Checkpointing legitimately shifts *when* the dead-letter queue is
    replayed (``store_retries``/``replay_recovered``/``checkpoints``
    differ from an uninterrupted run by design — same as the original
    checkpoint test), so the cross-checkpoint assertions compare the
    store content plus the schedule-determined counters only.
    """
    db = pipeline.database
    return (
        db.fingerprint(),
        db.duplicates_suppressed,
        db.total_responses(),
        [str(d) for d in db.all_domains()],
        pipeline.stats.offered,
        pipeline.stats.dropped,
        pipeline.stats.duplicates_delivered,
    )


# -- checkpoint / resume across a fast-lane stretch --------------------------


def test_checkpoint_mid_stretch_resume_matches_uninterrupted(tmp_path):
    """A checkpoint can land mid-stretch (pending rows buffered but not
    yet flushed); the snapshot must include them and the resumed run
    must continue byte-identically."""
    observations = _observations(400)
    plan = FaultPlan.loss(0.1)

    uninterrupted = _run(observations, plan, seed=7, fast_lane=True)

    first = ResilientIngestPipeline(
        schedule=plan.schedule(7),
        checkpoint_dir=tmp_path,
        checkpoint_every=100,
        fast_lane=True,
    )
    # 250 is not a checkpoint boundary, so rows sit in the pending
    # buffers when the explicit checkpoint below fires.
    for observation in observations[:250]:
        first.ingest(observation)
    first.checkpoint()

    second = ResilientIngestPipeline(
        schedule=plan.schedule(7),
        checkpoint_dir=tmp_path,
        checkpoint_every=100,
        fast_lane=True,
    )
    cursor = second.resume()
    assert cursor == 250
    for observation in observations[cursor:]:
        second.ingest(observation)
    second.finish()

    assert _store_state(second) == _store_state(uninterrupted)


def test_fast_lane_resume_matches_record_path_resume(tmp_path):
    """The two lanes agree even when both runs cross a crash/resume."""
    observations = _observations(300)
    plan = FaultPlan(store_failure_rate=0.2, duplicate_rate=0.1)
    states = []
    for lane, subdir in ((True, "fast"), (False, "record")):
        checkpoint_dir = tmp_path / subdir
        checkpoint_dir.mkdir()
        first = ResilientIngestPipeline(
            schedule=plan.schedule(5),
            retry_policy=RetryPolicy(max_attempts=2),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=64,
            fast_lane=lane,
        )
        for observation in observations[:171]:
            first.ingest(observation)
        first.checkpoint()
        second = ResilientIngestPipeline(
            schedule=plan.schedule(5),
            retry_policy=RetryPolicy(max_attempts=2),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=64,
            fast_lane=lane,
        )
        cursor = second.resume()
        assert cursor == 171
        for observation in observations[cursor:]:
            second.ingest(observation)
        second.finish()
        states.append(_store_state(second))
    assert states[0] == states[1]
