"""Chunk-parallel aggregates ≡ serial, byte for byte.

The tentpole contract: every generation-keyed aggregate the store
builds (monthly series, TLD histogram, lifespan decay, multiset row
digest, canonical fingerprint) must be *bit-identical* at any
``aggregate_jobs`` value, over both the in-memory chunk list and the
spill-backed segment store.  Each case builds fresh stores per worker
count — the caches are generation-keyed, so reusing one store would
just serve the serial build back.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.dns.name import DomainName
from repro.errors import ConfigError
from repro.parallel import map_shards, shard_bounds
from repro.passivedns.database import PassiveDnsDatabase

_DOMAINS = [
    DomainName(f"host{i}.zone{i % 7}.tld{i % 5}.com") for i in range(48)
]


def _fill(db, seed, rows):
    """Append ``rows`` seeded rows in three batches (forces several
    tail states: sealed chunk boundaries in-memory, multiple segments
    once spilled)."""
    rng = np.random.default_rng(seed)
    ids = db.intern_many(_DOMAINS)
    picks = rng.integers(0, len(_DOMAINS), rows)
    times = np.sort(rng.integers(0, 300 * 86_400, rows)).astype(np.int64)
    counts = rng.integers(1, 6, rows).astype(np.int64)
    third = max(rows // 3, 1)
    for lo in range(0, rows, third):
        hi = min(lo + third, rows)
        db.add_batch(ids[picks[lo:hi]], times[lo:hi], counts[lo:hi])


def _aggregates(db):
    domains_series, queries_series = db.lifespan_decay(45)
    return (
        db.monthly_response_series(),
        db.tld_histogram(),
        domains_series.tobytes(),
        queries_series.tobytes(),
        db.digest(),
        db.fingerprint(),
    )


def _build(seed, rows, jobs, spill_dir=None):
    db = PassiveDnsDatabase(aggregate_jobs=jobs, spill_dir=spill_dir)
    _fill(db, seed, rows)
    if spill_dir is not None:
        db.spill_commit({"source": "parallel-aggregate-test"})
    return db


# -- property: parallel ≡ serial ---------------------------------------------


@settings(deadline=None, max_examples=8)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    jobs=st.sampled_from([2, 3, 4]),
    rows=st.integers(min_value=0, max_value=400),
)
def test_parallel_aggregates_match_serial_in_memory(seed, jobs, rows):
    serial = _aggregates(_build(seed, rows, jobs=1))
    parallel = _aggregates(_build(seed, rows, jobs=jobs))
    assert parallel == serial


@pytest.mark.parametrize("seed", [0, 7])
@pytest.mark.parametrize("jobs", [2, 4])
def test_parallel_aggregates_match_serial_spilled(tmp_path, seed, jobs):
    serial = _aggregates(_build(seed, 350, jobs=1, spill_dir=tmp_path / "s"))
    parallel = _aggregates(
        _build(seed, 350, jobs=jobs, spill_dir=tmp_path / f"p{jobs}")
    )
    assert parallel == serial


def test_spill_and_memory_backends_agree_under_parallelism(tmp_path):
    in_memory = _aggregates(_build(3, 300, jobs=4))
    spilled = _aggregates(_build(3, 300, jobs=4, spill_dir=tmp_path / "d"))
    assert spilled == in_memory


def test_reopened_spill_store_serves_identical_parallel_aggregates(tmp_path):
    committed = _build(11, 300, jobs=1, spill_dir=tmp_path / "d")
    expected = _aggregates(committed)
    reopened = PassiveDnsDatabase(
        spill_dir=tmp_path / "d", spill_read_only=True, aggregate_jobs=4
    )
    assert _aggregates(reopened) == expected


# -- edges -------------------------------------------------------------------


def test_empty_store_parallel_aggregates():
    assert _aggregates(_build(0, 0, jobs=4)) == _aggregates(_build(0, 0, jobs=1))


def test_overshard_more_jobs_than_rows():
    """jobs far beyond the row count degrades to fewer shards, not an
    error, and stays identical."""
    serial = _aggregates(_build(5, 7, jobs=1))
    assert _aggregates(_build(5, 7, jobs=16)) == serial


def test_aggregate_jobs_validation():
    with pytest.raises(ConfigError):
        PassiveDnsDatabase(aggregate_jobs=0)
    with pytest.raises(ConfigError):
        PassiveDnsDatabase(aggregate_jobs=-2)


def test_aggregate_jobs_is_not_part_of_identity():
    """The knob changes scheduling only: same rows, different jobs,
    same digest *and* same fingerprint — so fault-sweep comparisons
    may mix worker counts freely."""
    a = _build(9, 200, jobs=1)
    b = _build(9, 200, jobs=4)
    assert a.digest() == b.digest()
    assert a.fingerprint() == b.fingerprint()


# -- shard helper contracts --------------------------------------------------


def test_shard_bounds_partition_exactly():
    for total in (0, 1, 7, 100):
        for jobs in (1, 2, 3, 8):
            bounds = shard_bounds(total, jobs)
            assert bounds[0][0] == 0 and bounds[-1][1] == total
            for (_, a_hi), (b_lo, _) in zip(bounds, bounds[1:]):
                assert a_hi == b_lo


def test_shard_bounds_validation():
    with pytest.raises(ConfigError):
        shard_bounds(10, 0)
    with pytest.raises(ConfigError):
        shard_bounds(-1, 2)


def test_map_shards_preserves_task_order():
    tasks = list(range(11))
    assert map_shards(lambda x: x * x, tasks, jobs=3) == [
        x * x for x in tasks
    ]
    assert map_shards(lambda x: x + 1, tasks, jobs=1) == [
        x + 1 for x in tasks
    ]
