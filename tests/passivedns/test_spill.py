"""Crash-safety tests for the on-disk spill store.

Three layers:

- unit tests of :class:`SpillStore` (commit protocol, recovery scan,
  quarantine semantics) and of the spill-backed
  :class:`PassiveDnsDatabase` mode (every aggregate byte-identical to
  the in-memory path);
- the deterministic **crash-at-every-write-boundary matrix**: a probe
  run enumerates every durability boundary of a workload that commits
  two generations *and compacts them* (so every ``compact()`` boundary
  — merged-segment write, superseding manifest, CURRENT swap,
  retirement unlinks and dirsyncs — is in the enumeration), then the
  workload is re-run once per (boundary, injector) pair — torn write,
  bit flip, lost fsync — and reopening the store must either recover a
  digest-consistent prior generation or quarantine the damage with a
  precise report, never serve silently wrong data or a hybrid of two
  generations;
- compaction, incremental-recovery (verified-at cache), read-only
  open, quarantine-reclamation, and concurrent-reader suites;
- hypothesis properties drawing random boundaries/injectors/seeds and
  random interleavings of ingest/commit/compact over the same
  invariant, and pipeline checkpoint/resume surviving an injected
  mid-ingest crash.
"""

import numpy as np
import pytest

from repro.dns.name import DomainName
from repro.errors import (
    ConfigError,
    CorruptArchiveError,
    InjectedCrashError,
    WorkloadError,
)
from repro.faults.injectors import (
    BitFlipInjector,
    FsyncLossInjector,
    InjectionLog,
    StorageFaultInjector,
    TornWriteInjector,
)
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.io import load_checkpoint, save_checkpoint
from repro.passivedns.pipeline import ResilientIngestPipeline
from repro.passivedns.spill import SpillStore
from repro.rand import derive_seed, make_rng
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig

INJECTOR_CLASSES = (TornWriteInjector, BitFlipInjector, FsyncLossInjector)


def _injector(cls, at, seed=0):
    return cls(
        make_rng(derive_seed(seed, f"{cls.name}-{at}")), InjectionLog(), at=at
    )


def _fill(db, data_seed=7, rounds=2, batches=2, rows=200):
    """Deterministic batched rows; commits once per round when spilled.

    Returns {generation: fingerprint} for every committed generation.
    """
    recorded = {}
    rng = make_rng(derive_seed(data_seed, "spill-data"))
    for round_index in range(rounds):
        for batch in range(batches):
            domains = [
                DomainName(f"d{round_index}-{batch}-{i}.example.com")
                for i in range(25)
            ]
            ids = np.repeat(db.intern_many(domains), rows // 25)
            times = np.sort(
                rng.integers(1_400_000_000, 1_600_000_000, len(ids))
            )
            counts = rng.integers(1, 5, len(ids))
            db.add_batch(ids, times, counts)
        if db.spill is not None:
            generation = db.spill_commit({"round": round_index})
            recorded[generation] = db.fingerprint()
    return recorded


def _check_recovery(root, recorded, completed):
    """The matrix invariant: recovered-and-consistent, or quarantined.

    Reopening must succeed and serve a store whose mergeable row
    digest matches the digest its own manifest committed (so a
    compaction crash can never leave a hybrid of two generations) and
    — when the harness saw that generation commit — the fingerprint
    recorded at commit time; any silent rollback of a completed
    workload must come with a non-clean recovery report naming what
    was damaged.
    """
    db = PassiveDnsDatabase(spill_dir=root)
    report = db.spill.last_recovery
    generation = db.spill.generation
    assert generation == report.generation
    if generation > 0:
        expected = db.spill.meta.get("store_digest")
        assert expected is not None and db.digest() == expected
        if generation in recorded:
            assert db.fingerprint() == recorded[generation]
    else:
        assert db.row_count() == 0
    if completed and generation < max(recorded, default=0):
        assert not report.clean()
        assert report.quarantined or report.rejected_generations
    return db, report


class TestSpillStoreBasics:
    def test_fresh_directory_opens_empty(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        assert store.generation == 0
        assert store.segments() == []
        assert store.last_recovery.clean()

    def test_commit_and_reopen(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(10, dtype=np.int64)
        store.append_segment(ids, ids * 7, ids + 1)
        assert store.commit({"tag": "first"}) == 1
        again = SpillStore.open(tmp_path / "s")
        assert again.generation == 1
        assert again.meta["tag"] == "first"
        assert again.row_count() == 10
        got_ids, got_times, got_counts = again.mmap_segment(again.segments()[0])
        assert np.array_equal(got_ids, ids)
        assert np.array_equal(got_times, ids * 7)
        assert np.array_equal(got_counts, ids + 1)

    def test_uncommitted_segment_is_quarantined_on_reopen(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(5, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)
        store.commit()
        store.append_segment(ids, ids, ids + 2)  # staged, never committed
        again = SpillStore.open(tmp_path / "s")
        assert again.generation == 1
        assert again.row_count() == 5
        kinds = {entry.kind for entry in again.last_recovery.quarantined}
        assert kinds == {"orphan-segment"}

    def test_damaged_segment_falls_back_a_generation(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(6, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)
        store.commit()
        info = store.append_segment(ids, ids * 3, ids + 1)
        store.commit()
        victim = tmp_path / "s" / "segments" / info.name
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        again = SpillStore.open(tmp_path / "s")
        assert again.generation == 1
        assert again.last_recovery.rejected_generations == [2]
        entries = {
            entry.path: entry.kind for entry in again.last_recovery.quarantined
        }
        assert entries == {f"segments/{info.name}": "damaged-segment"}

    def test_torn_manifest_is_quarantined(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(4, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)
        store.commit()
        manifest = tmp_path / "s" / "manifest-0000001.json"
        manifest.write_bytes(manifest.read_bytes()[:-20])
        again = SpillStore.open(tmp_path / "s")
        assert again.generation == 0
        kinds = {entry.kind for entry in again.last_recovery.quarantined}
        assert "torn-manifest" in kinds

    def test_open_on_file_raises_typed_error(self, tmp_path):
        victim = tmp_path / "not-a-dir"
        victim.write_text("hello")
        with pytest.raises(CorruptArchiveError):
            SpillStore.open(victim)

    def test_empty_segment_rejected(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        empty = np.empty(0, dtype=np.int64)
        with pytest.raises(ConfigError):
            store.append_segment(empty, empty, empty)

    def test_sidecar_roundtrip_and_kind_validation(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        with pytest.raises(ConfigError):
            store.write_sidecar("Bad-Kind", b"x")
        store.write_sidecar("domains", b"payload")
        ids = np.arange(3, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)
        store.commit()
        again = SpillStore.open(tmp_path / "s")
        assert again.read_sidecar("domains") == b"payload"
        assert again.read_sidecar("missing") is None

    def test_segment_names_never_reused_after_quarantine(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(3, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)  # uncommitted -> quarantined
        again = SpillStore.open(tmp_path / "s")
        info = again.append_segment(ids, ids, ids + 1)
        assert info.name == "seg-0000002.npy"


class TestSpillBackedDatabase:
    @pytest.fixture(scope="class")
    def trace(self):
        config = TraceConfig(total_domains=400, squat_count=16)
        return NxdomainTraceGenerator(seed=11, config=config).generate()

    def test_aggregates_byte_identical_to_in_memory(self, trace, tmp_path):
        spilled = trace.spilled(tmp_path / "spill")
        memory = trace.nx_db
        disk = spilled.nx_db
        assert disk.fingerprint() == memory.fingerprint()
        assert disk.tld_histogram() == memory.tld_histogram()
        assert disk.monthly_response_series() == memory.monthly_response_series()
        mem_decay = memory.lifespan_decay()
        disk_decay = disk.lifespan_decay()
        assert np.array_equal(mem_decay[0], disk_decay[0])
        assert np.array_equal(mem_decay[1], disk_decay[1])
        for domain in memory.all_domains()[:30]:
            profile = memory.profile(domain)
            assert np.array_equal(
                memory.daily_series_for(domain, profile.first_seen, 90),
                disk.daily_series_for(domain, profile.first_seen, 90),
            )

    def test_reopen_restores_and_verifies_fingerprint(self, trace, tmp_path):
        trace.spilled(tmp_path / "spill")
        reopened = PassiveDnsDatabase(spill_dir=tmp_path / "spill")
        assert reopened.fingerprint() == trace.nx_db.fingerprint()
        assert reopened.unique_domains() == trace.nx_db.unique_domains()

    def test_spilled_reuses_matching_directory(self, trace, tmp_path):
        first = trace.spilled(tmp_path / "spill")
        again = trace.spilled(tmp_path / "spill")
        assert again.nx_db.fingerprint() == first.nx_db.fingerprint()

    def test_spilled_rejects_foreign_directory(self, trace, tmp_path):
        foreign = PassiveDnsDatabase(spill_dir=tmp_path / "spill")
        foreign.add(DomainName("other.example"), timestamp=0, count=1)
        foreign.spill_commit()
        with pytest.raises(WorkloadError):
            trace.spilled(tmp_path / "spill")

    def test_spill_commit_requires_spill_mode(self):
        with pytest.raises(ConfigError):
            PassiveDnsDatabase().spill_commit()

    def test_copy_rows_into_preserves_fingerprint(self, trace):
        clone = PassiveDnsDatabase()
        trace.nx_db.copy_rows_into(clone)
        assert clone.fingerprint() == trace.nx_db.fingerprint()
        assert clone.tld_histogram() == trace.nx_db.tld_histogram()

    def test_appends_after_reopen_extend_the_store(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=1)
        reopened = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        reopened.add(DomainName("late.example.com"), timestamp=1_500_000_000)
        reopened.spill_commit()
        final = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        assert final.row_count() == db.row_count() + 1
        assert final.fingerprint() == reopened.fingerprint()


class _OpCountingProbe(StorageFaultInjector):
    """A never-firing probe that also records each boundary's op."""

    def __init__(self):
        super().__init__(make_rng(0), InjectionLog(), at=None)
        self.ops = []

    def decide(self, op, path, size=0):
        self.ops.append(op)
        return super().decide(op, path, size)


def _count_boundaries(tmp_path):
    """Probe run: every durability boundary of the matrix workload.

    With ``spill_compact_threshold=2`` the second commit triggers a
    compaction, so the enumeration covers every ``compact()`` boundary
    — merged-segment write, superseding manifest, CURRENT swap,
    retirement ``unlink``/``dirsync`` — on top of the commit protocol.
    """
    probe = StorageFaultInjector(make_rng(0), InjectionLog(), at=None)
    recorded = _fill(
        PassiveDnsDatabase(
            spill_dir=tmp_path / "probe",
            spill_faults=probe,
            spill_compact_threshold=2,
        )
    )
    assert not probe.fired
    return probe.decisions, recorded


def _run_matrix_point(root, cls, at, seed=0):
    """One matrix cell: inject, reopen, assert the recovery invariant."""
    injector = _injector(cls, at, seed)
    recorded, completed = {}, False
    try:
        recorded = _fill(
            PassiveDnsDatabase(
                spill_dir=root,
                spill_faults=injector,
                spill_compact_threshold=2,
            ),
            data_seed=7,
        )
        completed = True
    except InjectedCrashError:
        pass  # the writer died at the pinned boundary
    except CorruptArchiveError:
        pass  # post-write verification caught in-flight corruption
    assert injector.at is None or injector.fired or completed
    return _check_recovery(root, recorded, completed)


class TestCrashAtEveryBoundary:
    """The deterministic torn-write/bit-flip/fsync-loss matrix."""

    def test_matrix(self, tmp_path):
        boundaries, clean_recorded = _count_boundaries(tmp_path)
        assert boundaries > 40  # commits + a full compaction cycle
        assert len(clean_recorded) == 2
        # The clean workload must actually have compacted: generation 3
        # is the superseding compaction commit, so the boundary range
        # provably spans every compact() durability point.
        assert max(clean_recorded) == 3
        quarantines = 0
        for cls in INJECTOR_CLASSES:
            for at in range(boundaries):
                root = tmp_path / f"{cls.name}-{at}"
                _, report = _run_matrix_point(root, cls, at)
                quarantines += len(report.quarantined)
        probe = _OpCountingProbe()
        _fill(
            PassiveDnsDatabase(
                spill_dir=tmp_path / "unlink-probe",
                spill_faults=probe,
                spill_compact_threshold=2,
            )
        )
        # Retirement must be part of the enumerated matrix, and the
        # matrix must actually exercise the quarantine machinery, not
        # pass vacuously because nothing ever got damaged.
        assert probe.ops.count("unlink") >= 2  # manifests + segments
        assert quarantines > 0

    def test_boundary_counts_are_deterministic(self, tmp_path):
        first, _ = _count_boundaries(tmp_path / "a")
        second, _ = _count_boundaries(tmp_path / "b")
        assert first == second


def _three_generation_store(root):
    """A store with three committed single-segment generations."""
    store = SpillStore.open(root)
    for round_index in range(3):
        ids = np.arange(8, dtype=np.int64) + round_index * 100
        store.append_segment(ids, ids * 3, ids % 5 + 1)
        store.commit({"round": round_index})
    return store


class TestCompaction:
    def test_compact_merges_and_supersedes(self, tmp_path):
        store = _three_generation_store(tmp_path / "s")
        rows_before = store.row_count()
        old_names = [info.name for info in store.segments()]
        generation = store.compact()
        assert generation == 4
        assert len(store.segments()) == 1
        assert store.row_count() == rows_before
        assert store.meta["compacted"]["inputs"] == old_names
        # Superseded files are gone: one manifest, one segment remain.
        manifests = sorted(
            p.name for p in (tmp_path / "s").glob("manifest-*.json")
        )
        assert manifests == ["manifest-0000004.json"]
        segments = sorted(
            p.name for p in (tmp_path / "s" / "segments").glob("seg-*.npy")
        )
        assert segments == [store.segments()[0].name]

    def test_compacted_store_reopens_clean_with_same_rows(self, tmp_path):
        store = _three_generation_store(tmp_path / "s")
        expected = [
            np.concatenate(parts)
            for parts in zip(
                *(store.mmap_segment(info) for info in store.segments())
            )
        ]
        store.compact()
        again = SpillStore.open(tmp_path / "s")
        assert again.last_recovery.clean()
        assert again.generation == 4
        got = again.mmap_segment(again.segments()[0])
        for want, have in zip(expected, got):
            assert np.array_equal(want, have)

    def test_compact_below_min_segments_is_a_noop(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(4, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)
        store.commit()
        assert store.compact() is None
        assert store.generation == 1

    def test_compact_rejects_staged_segments(self, tmp_path):
        store = _three_generation_store(tmp_path / "s")
        ids = np.arange(4, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)
        with pytest.raises(ConfigError):
            store.compact()

    def test_compact_rejects_min_segments_below_two(self, tmp_path):
        store = _three_generation_store(tmp_path / "s")
        with pytest.raises(ConfigError):
            store.compact(min_segments=1)

    def test_merged_digest_is_sum_of_inputs(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(5, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1, digest=17)
        store.commit()
        store.append_segment(ids, ids * 2, ids + 1, digest=(1 << 128) - 9)
        store.commit()
        store.compact()
        merged = store.segments()[0]
        assert merged.digest == (17 + (1 << 128) - 9) & ((1 << 128) - 1)

    def test_merged_digest_none_when_any_input_lacks_one(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(5, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1, digest=17)
        store.commit()
        store.append_segment(ids, ids * 2, ids + 1)  # pre-digest era
        store.commit()
        store.compact()
        assert store.segments()[0].digest is None

    def test_database_compaction_preserves_everything(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=3)
        fingerprint = db.fingerprint()
        digest = db.digest()
        histogram = db.tld_histogram()
        generation = db.spill_compact()
        assert generation is not None
        assert db.fingerprint() == fingerprint
        assert db.digest() == digest
        assert db.tld_histogram() == histogram
        reopened = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        assert reopened.spill.last_recovery.clean()
        assert reopened.fingerprint() == fingerprint
        assert reopened.digest() == digest

    def test_database_compact_requires_committed_tail(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=2)
        db.add(DomainName("tail.example.com"), timestamp=1_500_000_000)
        with pytest.raises(ConfigError):
            db.spill_compact()

    def test_auto_compaction_at_threshold(self, tmp_path):
        db = PassiveDnsDatabase(
            spill_dir=tmp_path / "s", spill_compact_threshold=2
        )
        recorded = _fill(db, rounds=2)
        # Commit 1 -> generation 1; commit 2 -> generation 2, then the
        # threshold trips and compaction supersedes it as generation 3.
        assert sorted(recorded) == [1, 3]
        assert len(db.spill.segments()) == 1
        assert db.spill.generation == 3
        reopened = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        assert reopened.fingerprint() == recorded[3]

    def test_compact_threshold_validation(self, tmp_path):
        with pytest.raises(ConfigError):
            PassiveDnsDatabase(
                spill_dir=tmp_path / "s", spill_compact_threshold=1
            )
        with pytest.raises(ConfigError):
            PassiveDnsDatabase(
                spill_dir=tmp_path / "s2", spill_compact_threshold=-3
            )


class TestIncrementalRecovery:
    def test_warm_reopen_streams_zero_segments(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=2)
        reopened = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        report = reopened.spill.last_recovery
        assert report.clean()
        assert report.verified_cache == "loaded"
        # The acceptance gate: an unchanged committed store reopens
        # with ZERO segment CRC streams — every verification is a
        # stat+CRC cache hit.
        assert report.segments_crc_streamed == 0
        assert report.cache_hits >= len(reopened.spill.segments())
        assert reopened.fingerprint() == db.fingerprint()

    def test_paranoid_reopen_streams_everything(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=2)
        reopened = PassiveDnsDatabase(
            spill_dir=tmp_path / "s", spill_paranoid=True
        )
        report = reopened.spill.last_recovery
        assert report.clean()
        assert report.verified_cache == "paranoid"
        assert report.cache_hits == 0
        assert report.segments_crc_streamed == len(reopened.spill.segments())
        assert reopened.fingerprint() == db.fingerprint()

    def test_missing_cache_falls_back_to_full_scan(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=2)
        (tmp_path / "s" / "verified.json").unlink()
        reopened = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        report = reopened.spill.last_recovery
        assert report.clean()
        assert report.verified_cache == "missing"
        assert report.segments_crc_streamed == len(reopened.spill.segments())
        # The full scan re-records what it proved: the next open is
        # warm again.
        warm = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        assert warm.spill.last_recovery.segments_crc_streamed == 0

    def test_damaged_cache_is_quarantined_and_scan_is_full(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=2)
        cache_path = tmp_path / "s" / "verified.json"
        cache_path.write_bytes(cache_path.read_bytes()[:-30] + b"garbage")
        reopened = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        report = reopened.spill.last_recovery
        assert report.verified_cache == "damaged"
        assert report.segments_crc_streamed == len(reopened.spill.segments())
        kinds = {entry.kind for entry in report.quarantined}
        assert kinds == {"damaged-cache"}
        assert reopened.fingerprint() == db.fingerprint()

    def test_tampered_segment_is_caught(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        recorded = _fill(db, rounds=2)
        victim = sorted((tmp_path / "s" / "segments").glob("seg-*.npy"))[-1]
        raw = bytearray(victim.read_bytes())
        raw[-9] ^= 0x40
        victim.write_bytes(bytes(raw))
        reopened = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        report = reopened.spill.last_recovery
        assert not report.clean()
        assert report.rejected_generations
        assert any(
            entry.kind == "damaged-segment" for entry in report.quarantined
        )
        assert reopened.fingerprint() == recorded[min(recorded)]

    def test_paranoid_catches_stat_forging_tamper(self, tmp_path):
        """In-place tampering that forges mtime+size beats the cache's
        trust model by construction — paranoid mode exists for it."""
        import os as _os

        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=2)
        victim = sorted((tmp_path / "s" / "segments").glob("seg-*.npy"))[-1]
        stat = victim.stat()
        raw = bytearray(victim.read_bytes())
        raw[-9] ^= 0x40  # same size, different bytes
        victim.write_bytes(bytes(raw))
        _os.utime(victim, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        cached = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        # The stat-based cache cannot see this (documented limitation)...
        assert cached.spill.last_recovery.verified_cache == "loaded"
        # ...but the full scan still does.
        paranoid = PassiveDnsDatabase(
            spill_dir=tmp_path / "s", spill_paranoid=True
        )
        assert not paranoid.spill.last_recovery.clean()


class TestReadOnlyOpen:
    def _listing(self, root):
        return sorted(
            (
                path.relative_to(root).as_posix(),
                path.stat().st_size,
                path.stat().st_mtime_ns,
            )
            for path in root.rglob("*")
            if path.is_file()
        )

    def test_read_only_creates_and_mutates_nothing(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=2)
        # Strip everything optional so creation would be observable.
        (tmp_path / "s" / "verified.json").unlink()
        (tmp_path / "s" / "quarantine").rmdir()
        before = self._listing(tmp_path / "s")
        reader = PassiveDnsDatabase(
            spill_dir=tmp_path / "s", spill_read_only=True
        )
        assert reader.fingerprint() == db.fingerprint()
        assert not (tmp_path / "s" / "quarantine").exists()
        assert not (tmp_path / "s" / "verified.json").exists()
        assert self._listing(tmp_path / "s") == before

    def test_read_only_reports_damage_without_moving_it(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(5, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)
        store.commit()
        store.append_segment(ids, ids, ids + 2)  # staged, uncommitted
        before = self._listing(tmp_path / "s")
        reader = SpillStore.open(tmp_path / "s", read_only=True)
        kinds = {e.kind for e in reader.last_recovery.quarantined}
        assert kinds == {"orphan-segment"}
        assert self._listing(tmp_path / "s") == before

    def test_read_only_rejects_writes(self, tmp_path):
        store = _three_generation_store(tmp_path / "s")
        reader = SpillStore.open(tmp_path / "s", read_only=True)
        ids = np.arange(3, dtype=np.int64)
        with pytest.raises(ConfigError):
            reader.append_segment(ids, ids, ids + 1)
        with pytest.raises(ConfigError):
            reader.write_sidecar("domains", b"x")
        with pytest.raises(ConfigError):
            reader.commit()
        with pytest.raises(ConfigError):
            reader.compact()
        with pytest.raises(ConfigError):
            reader.purge_quarantine()
        assert store.generation == reader.generation

    def test_read_only_database_rejects_spill_commit(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=1)
        reader = PassiveDnsDatabase(
            spill_dir=tmp_path / "s", spill_read_only=True
        )
        with pytest.raises(ConfigError):
            reader.spill_commit()
        with pytest.raises(ConfigError):
            reader.spill_compact()

    def test_read_only_requires_existing_directory(self, tmp_path):
        with pytest.raises(ConfigError):
            SpillStore.open(tmp_path / "absent", read_only=True)

    def test_read_only_rejects_fault_injection(self, tmp_path):
        _three_generation_store(tmp_path / "s")
        with pytest.raises(ConfigError):
            SpillStore.open(
                tmp_path / "s",
                faults=_injector(TornWriteInjector, 0),
                read_only=True,
            )


class TestQuarantineReclamation:
    def _store_with_orphans(self, root, orphans=2):
        store = SpillStore.open(root)
        ids = np.arange(6, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)
        store.commit()
        for _ in range(orphans):
            store.append_segment(ids, ids, ids + 2)  # never committed
        return SpillStore.open(root)  # quarantines the orphans

    def test_entries_are_typed_and_indexed(self, tmp_path):
        store = self._store_with_orphans(tmp_path / "s")
        entries = store.quarantine_entries()
        assert len(entries) == 2
        assert {e.kind for e in entries} == {"orphan-segment"}
        assert all(e.generation == store.generation for e in entries)
        # The labels survive a further reopen (they live in the index).
        again = SpillStore.open(tmp_path / "s")
        assert {e.kind for e in again.quarantine_entries()} == {
            "orphan-segment"
        }

    def test_purge_everything(self, tmp_path):
        store = self._store_with_orphans(tmp_path / "s")
        removed, freed = store.purge_quarantine()
        assert removed == 2 and freed > 0
        assert store.quarantine_entries() == []
        assert SpillStore.open(tmp_path / "s").last_recovery.clean()

    def test_purge_is_typed(self, tmp_path):
        store = self._store_with_orphans(tmp_path / "s")
        removed, _ = store.purge_quarantine(kinds={"damaged-segment"})
        assert removed == 0
        removed, _ = store.purge_quarantine(kinds={"orphan-segment"})
        assert removed == 2

    def test_purge_retention_by_generation(self, tmp_path):
        store = self._store_with_orphans(tmp_path / "s")
        generation = store.quarantine_entries()[0].generation
        kept, _ = store.purge_quarantine(before_generation=generation)
        assert kept == 0  # quarantined AT that generation -> retained
        removed, _ = store.purge_quarantine(
            before_generation=generation + 1
        )
        assert removed == 2

    def test_damaged_index_lists_unknown_but_keeps_evidence(self, tmp_path):
        store = self._store_with_orphans(tmp_path / "s")
        index = tmp_path / "s" / "quarantine" / "index.json"
        index.write_bytes(b"{not json")
        entries = store.quarantine_entries()
        assert len(entries) == 2
        assert {e.kind for e in entries} == {"unknown"}
        removed, _ = store.purge_quarantine()
        assert removed == 2

    def test_read_only_lists_but_cannot_purge(self, tmp_path):
        self._store_with_orphans(tmp_path / "s")
        reader = SpillStore.open(tmp_path / "s", read_only=True)
        assert len(reader.quarantine_entries()) == 2
        with pytest.raises(ConfigError):
            reader.purge_quarantine()


class TestConcurrentReaders:
    """A read-only open mid-commit / mid-compact of another handle.

    ``CURRENT`` is advisory and read-only opens move nothing, so a
    reader racing a writer — modelled deterministically by killing the
    writer at every boundary of the operation and opening the
    directory it left behind — must always observe a complete,
    digest-consistent committed generation and leave the writer's
    staged files exactly where they were.
    """

    def _listing(self, root):
        return sorted(
            (path.relative_to(root).as_posix(), path.stat().st_size)
            for path in root.rglob("*")
            if path.is_file()
        )

    def _reader_invariant(self, root, recorded):
        before = self._listing(root)
        reader = PassiveDnsDatabase(
            spill_dir=root, spill_read_only=True
        )
        store = reader.spill
        assert store.read_only
        if store.generation > 0:
            expected = store.meta.get("store_digest")
            assert expected is not None and reader.digest() == expected
            if store.generation in recorded:
                assert reader.fingerprint() == recorded[store.generation]
        assert self._listing(root) == before

    def test_reader_mid_commit_and_mid_compact_at_every_boundary(
        self, tmp_path
    ):
        boundaries, _ = _count_boundaries(tmp_path)
        for at in range(0, boundaries, 3):
            for cls in (TornWriteInjector, FsyncLossInjector):
                root = tmp_path / f"reader-{cls.name}-{at}"
                injector = _injector(cls, at)
                recorded = {}
                try:
                    recorded = _fill(
                        PassiveDnsDatabase(
                            spill_dir=root,
                            spill_faults=injector,
                            spill_compact_threshold=2,
                        )
                    )
                except (InjectedCrashError, CorruptArchiveError):
                    pass
                self._reader_invariant(root, recorded)


try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    class TestCrashRecoveryProperty:
        """Random (injector, boundary, seed) draws over the invariant."""

        @settings(deadline=None, max_examples=25)
        @given(
            cls=st.sampled_from(INJECTOR_CLASSES),
            at=st.integers(min_value=0, max_value=220),
            seed=st.integers(min_value=0, max_value=2**31 - 1),
        )
        def test_recovery_never_serves_wrong_data(
            self, tmp_path_factory, cls, at, seed
        ):
            root = tmp_path_factory.mktemp("spill-prop")
            _run_matrix_point(root / "store", cls, at, seed=seed)

        @settings(deadline=None, max_examples=20)
        @given(
            ops=st.lists(
                st.sampled_from(["ingest", "commit", "compact"]),
                min_size=1,
                max_size=8,
            ),
            cls=st.sampled_from(INJECTOR_CLASSES),
            at=st.integers(min_value=0, max_value=400),
            seed=st.integers(min_value=0, max_value=2**31 - 1),
        )
        def test_interleaved_ingest_commit_compact(
            self, tmp_path_factory, ops, cls, at, seed
        ):
            """Random ingest/commit/compact programs, crashed anywhere.

            Whatever prefix of the program the injected crash allows,
            reopening must serve a committed generation whose digest
            matches its manifest — never a hybrid, never silent loss.
            """
            root = tmp_path_factory.mktemp("spill-interleave") / "store"
            injector = _injector(cls, at, seed)
            rng = make_rng(derive_seed(seed, "interleave-data"))
            recorded, completed, dirty = {}, False, False
            try:
                db = PassiveDnsDatabase(
                    spill_dir=root, spill_faults=injector
                )
                for step, op in enumerate(ops):
                    if op == "ingest":
                        domains = [
                            DomainName(f"i{step}-{i}.example.com")
                            for i in range(10)
                        ]
                        ids = np.repeat(db.intern_many(domains), 4)
                        times = np.sort(
                            rng.integers(1_400_000_000, 1_600_000_000, len(ids))
                        )
                        counts = rng.integers(1, 5, len(ids))
                        db.add_batch(ids, times, counts)
                        dirty = True
                        continue
                    if op == "compact" and dirty:
                        generation = db.spill_commit({"step": step})
                        recorded[generation] = db.fingerprint()
                        dirty = False
                    if op == "commit" or dirty:
                        generation = db.spill_commit({"step": step})
                        recorded[generation] = db.fingerprint()
                        dirty = False
                    if op == "compact":
                        generation = db.spill_compact()
                        if generation is not None:
                            recorded[generation] = db.fingerprint()
                completed = True
            except InjectedCrashError:
                pass
            except CorruptArchiveError:
                pass
            assert injector.at is None or injector.fired or completed
            _check_recovery(root, recorded, completed)


class TestPipelineCrashResume:
    def _observations(self):
        db = PassiveDnsDatabase()
        _fill(db, data_seed=3, rounds=1, batches=1, rows=150)
        return list(db.iter_observations())

    def _clean_fingerprint(self, observations):
        db = PassiveDnsDatabase()
        for observation in observations:
            db.ingest(observation)
        return db.fingerprint()

    def test_checkpoint_resume_survives_injected_crash(self, tmp_path):
        observations = self._observations()
        expected = self._clean_fingerprint(observations)
        for at in (3, 9, 15):
            root = tmp_path / f"crash-{at}"
            injector = _injector(TornWriteInjector, at)
            pipeline = ResilientIngestPipeline(
                spill_dir=root, checkpoint_every=40, spill_faults=injector
            )
            try:
                pipeline.ingest_many(observations)
                pipeline.finish()
            except InjectedCrashError:
                pass
            resumed = ResilientIngestPipeline(
                spill_dir=root, checkpoint_every=40
            )
            cursor = resumed.resume()
            assert 0 <= cursor <= len(observations)
            resumed.ingest_many(observations[cursor:])
            resumed.finish()
            assert resumed.database.fingerprint() == expected

    def test_spill_checkpoint_roundtrip_without_faults(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=1)
        save_checkpoint(db, tmp_path / "s", cursor=123, extra={"offered": 123})
        state = load_checkpoint(tmp_path / "s")
        assert state is not None
        assert state.cursor == 123
        assert state.database.fingerprint() == db.fingerprint()

    def test_spill_checkpoint_rejects_other_directory(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=1)
        with pytest.raises(ConfigError):
            save_checkpoint(db, tmp_path / "elsewhere", cursor=1)

    def test_pipeline_rejects_conflicting_directories(self, tmp_path):
        with pytest.raises(ConfigError):
            ResilientIngestPipeline(
                spill_dir=tmp_path / "a", checkpoint_dir=tmp_path / "b"
            )
