"""Crash-safety tests for the on-disk spill store.

Three layers:

- unit tests of :class:`SpillStore` (commit protocol, recovery scan,
  quarantine semantics) and of the spill-backed
  :class:`PassiveDnsDatabase` mode (every aggregate byte-identical to
  the in-memory path);
- the deterministic **crash-at-every-write-boundary matrix**: a probe
  run enumerates every durability boundary of a two-generation
  workload, then the workload is re-run once per (boundary, injector)
  pair — torn write, bit flip, lost fsync — and reopening the store
  must either recover a fingerprint-consistent prior generation or
  quarantine the damage with a precise report, never serve silently
  wrong data;
- a hypothesis property drawing random boundaries/injectors/seeds over
  the same invariant, and pipeline checkpoint/resume surviving an
  injected mid-ingest crash.
"""

import numpy as np
import pytest

from repro.dns.name import DomainName
from repro.errors import (
    ConfigError,
    CorruptArchiveError,
    InjectedCrashError,
    WorkloadError,
)
from repro.faults.injectors import (
    BitFlipInjector,
    FsyncLossInjector,
    InjectionLog,
    StorageFaultInjector,
    TornWriteInjector,
)
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.io import load_checkpoint, save_checkpoint
from repro.passivedns.pipeline import ResilientIngestPipeline
from repro.passivedns.spill import SpillStore
from repro.rand import derive_seed, make_rng
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig

INJECTOR_CLASSES = (TornWriteInjector, BitFlipInjector, FsyncLossInjector)


def _injector(cls, at, seed=0):
    return cls(
        make_rng(derive_seed(seed, f"{cls.name}-{at}")), InjectionLog(), at=at
    )


def _fill(db, data_seed=7, rounds=2, batches=2, rows=200):
    """Deterministic batched rows; commits once per round when spilled.

    Returns {generation: fingerprint} for every committed generation.
    """
    recorded = {}
    rng = make_rng(derive_seed(data_seed, "spill-data"))
    for round_index in range(rounds):
        for batch in range(batches):
            domains = [
                DomainName(f"d{round_index}-{batch}-{i}.example.com")
                for i in range(25)
            ]
            ids = np.repeat(db.intern_many(domains), rows // 25)
            times = np.sort(
                rng.integers(1_400_000_000, 1_600_000_000, len(ids))
            )
            counts = rng.integers(1, 5, len(ids))
            db.add_batch(ids, times, counts)
        if db.spill is not None:
            generation = db.spill_commit({"round": round_index})
            recorded[generation] = db.fingerprint()
    return recorded


def _check_recovery(root, recorded, completed):
    """The matrix invariant: recovered-and-consistent, or quarantined.

    Reopening must succeed, serve a store whose fingerprint matches
    both the manifest's own record and (when the harness saw that
    generation commit) the fingerprint recorded at commit time — and
    any silent rollback of a completed workload must come with a
    non-clean recovery report naming what was damaged.
    """
    db = PassiveDnsDatabase(spill_dir=root)
    report = db.spill.last_recovery
    generation = db.spill.generation
    assert generation == report.generation
    if generation > 0:
        expected = db.spill.meta.get("store_fingerprint")
        assert expected is not None and db.fingerprint() == expected
        if generation in recorded:
            assert db.fingerprint() == recorded[generation]
    else:
        assert db.row_count() == 0
    if completed and generation < max(recorded, default=0):
        assert not report.clean()
        assert report.quarantined or report.rejected_generations
    return db, report


class TestSpillStoreBasics:
    def test_fresh_directory_opens_empty(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        assert store.generation == 0
        assert store.segments() == []
        assert store.last_recovery.clean()

    def test_commit_and_reopen(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(10, dtype=np.int64)
        store.append_segment(ids, ids * 7, ids + 1)
        assert store.commit({"tag": "first"}) == 1
        again = SpillStore.open(tmp_path / "s")
        assert again.generation == 1
        assert again.meta["tag"] == "first"
        assert again.row_count() == 10
        got_ids, got_times, got_counts = again.mmap_segment(again.segments()[0])
        assert np.array_equal(got_ids, ids)
        assert np.array_equal(got_times, ids * 7)
        assert np.array_equal(got_counts, ids + 1)

    def test_uncommitted_segment_is_quarantined_on_reopen(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(5, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)
        store.commit()
        store.append_segment(ids, ids, ids + 2)  # staged, never committed
        again = SpillStore.open(tmp_path / "s")
        assert again.generation == 1
        assert again.row_count() == 5
        kinds = {entry.kind for entry in again.last_recovery.quarantined}
        assert kinds == {"orphan-segment"}

    def test_damaged_segment_falls_back_a_generation(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(6, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)
        store.commit()
        info = store.append_segment(ids, ids * 3, ids + 1)
        store.commit()
        victim = tmp_path / "s" / "segments" / info.name
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        again = SpillStore.open(tmp_path / "s")
        assert again.generation == 1
        assert again.last_recovery.rejected_generations == [2]
        entries = {
            entry.path: entry.kind for entry in again.last_recovery.quarantined
        }
        assert entries == {f"segments/{info.name}": "damaged-segment"}

    def test_torn_manifest_is_quarantined(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(4, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)
        store.commit()
        manifest = tmp_path / "s" / "manifest-0000001.json"
        manifest.write_bytes(manifest.read_bytes()[:-20])
        again = SpillStore.open(tmp_path / "s")
        assert again.generation == 0
        kinds = {entry.kind for entry in again.last_recovery.quarantined}
        assert "torn-manifest" in kinds

    def test_open_on_file_raises_typed_error(self, tmp_path):
        victim = tmp_path / "not-a-dir"
        victim.write_text("hello")
        with pytest.raises(CorruptArchiveError):
            SpillStore.open(victim)

    def test_empty_segment_rejected(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        empty = np.empty(0, dtype=np.int64)
        with pytest.raises(ConfigError):
            store.append_segment(empty, empty, empty)

    def test_sidecar_roundtrip_and_kind_validation(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        with pytest.raises(ConfigError):
            store.write_sidecar("Bad-Kind", b"x")
        store.write_sidecar("domains", b"payload")
        ids = np.arange(3, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)
        store.commit()
        again = SpillStore.open(tmp_path / "s")
        assert again.read_sidecar("domains") == b"payload"
        assert again.read_sidecar("missing") is None

    def test_segment_names_never_reused_after_quarantine(self, tmp_path):
        store = SpillStore.open(tmp_path / "s")
        ids = np.arange(3, dtype=np.int64)
        store.append_segment(ids, ids, ids + 1)  # uncommitted -> quarantined
        again = SpillStore.open(tmp_path / "s")
        info = again.append_segment(ids, ids, ids + 1)
        assert info.name == "seg-0000002.npy"


class TestSpillBackedDatabase:
    @pytest.fixture(scope="class")
    def trace(self):
        config = TraceConfig(total_domains=400, squat_count=16)
        return NxdomainTraceGenerator(seed=11, config=config).generate()

    def test_aggregates_byte_identical_to_in_memory(self, trace, tmp_path):
        spilled = trace.spilled(tmp_path / "spill")
        memory = trace.nx_db
        disk = spilled.nx_db
        assert disk.fingerprint() == memory.fingerprint()
        assert disk.tld_histogram() == memory.tld_histogram()
        assert disk.monthly_response_series() == memory.monthly_response_series()
        mem_decay = memory.lifespan_decay()
        disk_decay = disk.lifespan_decay()
        assert np.array_equal(mem_decay[0], disk_decay[0])
        assert np.array_equal(mem_decay[1], disk_decay[1])
        for domain in memory.all_domains()[:30]:
            profile = memory.profile(domain)
            assert np.array_equal(
                memory.daily_series_for(domain, profile.first_seen, 90),
                disk.daily_series_for(domain, profile.first_seen, 90),
            )

    def test_reopen_restores_and_verifies_fingerprint(self, trace, tmp_path):
        trace.spilled(tmp_path / "spill")
        reopened = PassiveDnsDatabase(spill_dir=tmp_path / "spill")
        assert reopened.fingerprint() == trace.nx_db.fingerprint()
        assert reopened.unique_domains() == trace.nx_db.unique_domains()

    def test_spilled_reuses_matching_directory(self, trace, tmp_path):
        first = trace.spilled(tmp_path / "spill")
        again = trace.spilled(tmp_path / "spill")
        assert again.nx_db.fingerprint() == first.nx_db.fingerprint()

    def test_spilled_rejects_foreign_directory(self, trace, tmp_path):
        foreign = PassiveDnsDatabase(spill_dir=tmp_path / "spill")
        foreign.add(DomainName("other.example"), timestamp=0, count=1)
        foreign.spill_commit()
        with pytest.raises(WorkloadError):
            trace.spilled(tmp_path / "spill")

    def test_spill_commit_requires_spill_mode(self):
        with pytest.raises(ConfigError):
            PassiveDnsDatabase().spill_commit()

    def test_copy_rows_into_preserves_fingerprint(self, trace):
        clone = PassiveDnsDatabase()
        trace.nx_db.copy_rows_into(clone)
        assert clone.fingerprint() == trace.nx_db.fingerprint()
        assert clone.tld_histogram() == trace.nx_db.tld_histogram()

    def test_appends_after_reopen_extend_the_store(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=1)
        reopened = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        reopened.add(DomainName("late.example.com"), timestamp=1_500_000_000)
        reopened.spill_commit()
        final = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        assert final.row_count() == db.row_count() + 1
        assert final.fingerprint() == reopened.fingerprint()


def _count_boundaries(tmp_path):
    probe = StorageFaultInjector(make_rng(0), InjectionLog(), at=None)
    recorded = _fill(
        PassiveDnsDatabase(spill_dir=tmp_path / "probe", spill_faults=probe)
    )
    assert not probe.fired
    return probe.decisions, recorded


def _run_matrix_point(root, cls, at, seed=0):
    """One matrix cell: inject, reopen, assert the recovery invariant."""
    injector = _injector(cls, at, seed)
    recorded, completed = {}, False
    try:
        recorded = _fill(
            PassiveDnsDatabase(spill_dir=root, spill_faults=injector),
            data_seed=7,
        )
        completed = True
    except InjectedCrashError:
        pass  # the writer died at the pinned boundary
    except CorruptArchiveError:
        pass  # post-write verification caught in-flight corruption
    assert injector.at is None or injector.fired or completed
    return _check_recovery(root, recorded, completed)


class TestCrashAtEveryBoundary:
    """The deterministic torn-write/bit-flip/fsync-loss matrix."""

    def test_matrix(self, tmp_path):
        boundaries, clean_recorded = _count_boundaries(tmp_path)
        assert boundaries > 20  # the workload crosses many sync points
        assert len(clean_recorded) == 2
        quarantines = 0
        for cls in INJECTOR_CLASSES:
            for at in range(boundaries):
                root = tmp_path / f"{cls.name}-{at}"
                _, report = _run_matrix_point(root, cls, at)
                quarantines += len(report.quarantined)
        # The matrix must actually exercise the quarantine machinery,
        # not pass vacuously because nothing ever got damaged.
        assert quarantines > 0

    def test_boundary_counts_are_deterministic(self, tmp_path):
        first, _ = _count_boundaries(tmp_path / "a")
        second, _ = _count_boundaries(tmp_path / "b")
        assert first == second


try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    class TestCrashRecoveryProperty:
        """Random (injector, boundary, seed) draws over the invariant."""

        @settings(deadline=None, max_examples=25)
        @given(
            cls=st.sampled_from(INJECTOR_CLASSES),
            at=st.integers(min_value=0, max_value=120),
            seed=st.integers(min_value=0, max_value=2**31 - 1),
        )
        def test_recovery_never_serves_wrong_data(
            self, tmp_path_factory, cls, at, seed
        ):
            root = tmp_path_factory.mktemp("spill-prop")
            _run_matrix_point(root / "store", cls, at, seed=seed)


class TestPipelineCrashResume:
    def _observations(self):
        db = PassiveDnsDatabase()
        _fill(db, data_seed=3, rounds=1, batches=1, rows=150)
        return list(db.iter_observations())

    def _clean_fingerprint(self, observations):
        db = PassiveDnsDatabase()
        for observation in observations:
            db.ingest(observation)
        return db.fingerprint()

    def test_checkpoint_resume_survives_injected_crash(self, tmp_path):
        observations = self._observations()
        expected = self._clean_fingerprint(observations)
        for at in (3, 9, 15):
            root = tmp_path / f"crash-{at}"
            injector = _injector(TornWriteInjector, at)
            pipeline = ResilientIngestPipeline(
                spill_dir=root, checkpoint_every=40, spill_faults=injector
            )
            try:
                pipeline.ingest_many(observations)
                pipeline.finish()
            except InjectedCrashError:
                pass
            resumed = ResilientIngestPipeline(
                spill_dir=root, checkpoint_every=40
            )
            cursor = resumed.resume()
            assert 0 <= cursor <= len(observations)
            resumed.ingest_many(observations[cursor:])
            resumed.finish()
            assert resumed.database.fingerprint() == expected

    def test_spill_checkpoint_roundtrip_without_faults(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=1)
        save_checkpoint(db, tmp_path / "s", cursor=123, extra={"offered": 123})
        state = load_checkpoint(tmp_path / "s")
        assert state is not None
        assert state.cursor == 123
        assert state.database.fingerprint() == db.fingerprint()

    def test_spill_checkpoint_rejects_other_directory(self, tmp_path):
        db = PassiveDnsDatabase(spill_dir=tmp_path / "s")
        _fill(db, rounds=1)
        with pytest.raises(ConfigError):
            save_checkpoint(db, tmp_path / "elsewhere", cursor=1)

    def test_pipeline_rejects_conflicting_directories(self, tmp_path):
        with pytest.raises(ConfigError):
            ResilientIngestPipeline(
                spill_dir=tmp_path / "a", checkpoint_dir=tmp_path / "b"
            )
