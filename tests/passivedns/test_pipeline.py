"""ResilientIngestPipeline: fault absorption, identity, checkpointing."""

import pytest

from repro.clock import SECONDS_PER_DAY, STUDY_START, date_to_epoch
from repro.dns.message import RCode
from repro.dns.name import DomainName
from repro.errors import ConfigError, UnknownKeyError, WorkloadError
from repro.faults import FaultPlan
from repro.passivedns.channel import DeliveryErrorPolicy, SieChannel
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.pipeline import ResilientIngestPipeline
from repro.passivedns.record import DnsObservation
from repro.resilience import DeadLetterQueue, RetryPolicy

T0 = date_to_epoch(STUDY_START)


def _observations(count=300):
    return [
        DnsObservation(
            qname=DomainName(f"host{i}.example.com"),
            rcode=RCode.NXDOMAIN,
            timestamp=T0 + i * 3_600,
            sensor_id="s1",
        )
        for i in range(count)
    ]


def _plain_store(observations):
    db = PassiveDnsDatabase()
    for observation in observations:
        db.ingest(observation)
    return db


# -- identity ----------------------------------------------------------------


def test_no_schedule_is_byte_identical_to_plain_ingest():
    observations = _observations()
    pipeline = ResilientIngestPipeline()
    pipeline.ingest_many(observations)
    pipeline.finish()
    assert pipeline.database.fingerprint() == _plain_store(observations).fingerprint()


def test_null_plan_is_byte_identical_to_plain_ingest():
    observations = _observations()
    pipeline = ResilientIngestPipeline(schedule=FaultPlan().schedule(3))
    pipeline.ingest_many(observations)
    pipeline.finish()
    assert pipeline.database.fingerprint() == _plain_store(observations).fingerprint()
    assert len(pipeline.schedule.log) == 0


def test_same_seed_same_faulted_output():
    observations = _observations()
    fingerprints = set()
    logs = set()
    for _ in range(2):
        pipeline = ResilientIngestPipeline(
            schedule=FaultPlan.loss(0.1).schedule(7)
        )
        pipeline.ingest_many(observations)
        pipeline.finish()
        fingerprints.add(pipeline.database.fingerprint())
        logs.add(pipeline.schedule.fingerprint())
    assert len(fingerprints) == 1
    assert len(logs) == 1


# -- fault absorption --------------------------------------------------------


def test_total_drop_loses_everything():
    pipeline = ResilientIngestPipeline(
        schedule=FaultPlan(drop_rate=1.0).schedule(1)
    )
    pipeline.ingest_many(_observations(50))
    pipeline.finish()
    assert pipeline.database.row_count() == 0
    assert pipeline.stats.dropped == 50


def test_duplicates_are_suppressed_by_dedup():
    observations = _observations(200)
    pipeline = ResilientIngestPipeline(
        schedule=FaultPlan(duplicate_rate=1.0).schedule(1)
    )
    pipeline.ingest_many(observations)
    pipeline.finish()
    assert pipeline.stats.duplicates_delivered == 200
    assert pipeline.database.duplicates_suppressed == 200
    assert pipeline.database.fingerprint() == _plain_store(observations).fingerprint()


def test_reorder_changes_arrival_not_content():
    observations = _observations(200)
    pipeline = ResilientIngestPipeline(
        schedule=FaultPlan(reorder_rate=0.5, reorder_depth=4).schedule(2)
    )
    pipeline.ingest_many(observations)
    pipeline.finish()
    assert pipeline.database.fingerprint() == _plain_store(observations).fingerprint()


def test_store_faults_are_fully_recovered():
    """Retries plus dead-letter replay mean store faults lose nothing."""
    observations = _observations(300)
    pipeline = ResilientIngestPipeline(
        schedule=FaultPlan(store_failure_rate=0.4).schedule(5),
        retry_policy=RetryPolicy(max_attempts=2),
    )
    pipeline.ingest_many(observations)
    assert pipeline.stats.store_retries > 0
    pipeline.finish()
    assert pipeline.database.fingerprint() == _plain_store(observations).fingerprint()


def test_subscriber_crashes_do_not_lose_stored_rows():
    observations = _observations(200)
    pipeline = ResilientIngestPipeline(
        schedule=FaultPlan(subscriber_crash_rate=0.3).schedule(4)
    )
    pipeline.ingest_many(observations)
    pipeline.finish()
    # The crashing tap dead-letters observations, but the store
    # subscriber already ingested them; replay dedups them away.
    assert pipeline.database.fingerprint() == _plain_store(observations).fingerprint()


def test_burst_amplifies_counts_inside_windows():
    plan = FaultPlan(burst_episodes=1, burst_days=30.0, burst_multiplier=5)
    schedule = plan.schedule(3)
    (window,) = schedule.burst_windows
    observation = DnsObservation(
        qname=DomainName("burst.example.com"),
        rcode=RCode.NXDOMAIN,
        timestamp=window.start + 10,
        sensor_id="s1",
        count=2,
    )
    pipeline = ResilientIngestPipeline(schedule=schedule)
    pipeline.ingest(observation)
    pipeline.finish()
    assert pipeline.database.total_responses() == 10
    assert pipeline.stats.burst_amplified == 1


# -- checkpoint / resume -----------------------------------------------------


def test_checkpoint_resume_matches_uninterrupted_run(tmp_path):
    observations = _observations(400)
    plan = FaultPlan.loss(0.1)

    uninterrupted = ResilientIngestPipeline(schedule=plan.schedule(7))
    uninterrupted.ingest_many(observations)
    uninterrupted.finish()

    # Interrupted run: ingest 250, checkpoint, "crash", resume fresh.
    first = ResilientIngestPipeline(
        schedule=plan.schedule(7),
        checkpoint_dir=tmp_path,
        checkpoint_every=100,
    )
    for observation in observations[:250]:
        first.ingest(observation)
    first.checkpoint()

    second = ResilientIngestPipeline(
        schedule=plan.schedule(7),
        checkpoint_dir=tmp_path,
        checkpoint_every=100,
    )
    cursor = second.resume()
    assert cursor == 250
    for observation in observations[cursor:]:
        second.ingest(observation)
    second.finish()

    assert (
        second.database.fingerprint() == uninterrupted.database.fingerprint()
    )
    assert second.stats.offered == uninterrupted.stats.offered
    assert second.stats.dropped == uninterrupted.stats.dropped


def test_resume_without_checkpoint_returns_zero(tmp_path):
    pipeline = ResilientIngestPipeline(checkpoint_dir=tmp_path)
    assert pipeline.resume() == 0


def test_checkpoint_config_validation(tmp_path):
    with pytest.raises(ConfigError):
        ResilientIngestPipeline(checkpoint_every=10)
    with pytest.raises(ConfigError):
        ResilientIngestPipeline(checkpoint_every=-1)
    pipeline = ResilientIngestPipeline()
    with pytest.raises(ConfigError):
        pipeline.checkpoint()
    with pytest.raises(ConfigError):
        pipeline.resume()


# -- channel policies --------------------------------------------------------


def _failing_subscriber(observation):
    raise WorkloadError("analysis tap bug")


def test_channel_raise_policy_still_delivers_to_everyone():
    channel = SieChannel()
    seen = []
    channel.subscribe(_failing_subscriber)
    channel.subscribe(seen.append)
    observation = _observations(1)[0]
    with pytest.raises(WorkloadError):
        channel.publish(observation)
    # The crash no longer starves later subscribers.
    assert seen == [observation]
    assert channel.subscriber_errors == 1


def test_channel_count_policy_swallows_and_counts():
    channel = SieChannel(error_policy=DeliveryErrorPolicy.COUNT)
    channel.subscribe(_failing_subscriber)
    assert channel.publish(_observations(1)[0])
    assert channel.subscriber_errors == 1


def test_channel_dead_letter_policy_quarantines():
    queue = DeadLetterQueue(capacity=4)
    channel = SieChannel(
        error_policy=DeliveryErrorPolicy.DEAD_LETTER, dead_letters=queue
    )
    channel.subscribe(_failing_subscriber)
    observation = _observations(1)[0]
    channel.publish(observation)
    (letter,) = queue.letters()
    assert letter.item is observation
    assert "analysis tap bug" in letter.reason


def test_channel_dead_letter_policy_requires_queue():
    with pytest.raises(ConfigError):
        SieChannel(error_policy=DeliveryErrorPolicy.DEAD_LETTER)


def test_unsubscribe_unknown_raises_library_error():
    channel = SieChannel()
    with pytest.raises(UnknownKeyError):
        channel.unsubscribe(_failing_subscriber)
    channel.subscribe(_failing_subscriber)
    channel.unsubscribe(_failing_subscriber)
    assert channel.subscriber_count == 0
