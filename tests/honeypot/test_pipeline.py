"""Tests for recorder, filtering, categorizer, and the honeypot server."""

import pytest

from repro.honeypot.categorize import (
    Category,
    Subcategory,
    TrafficCategorizer,
    category_counts,
    subcategory_counts,
)
from repro.honeypot.filtering import TwoStageFilter
from repro.honeypot.http import HttpRequest, PacketRecord, Transport
from repro.honeypot.recorder import TrafficRecorder
from repro.honeypot.reverse_ip import ReverseIpTable
from repro.honeypot.server import LANDING_PAGE, NxdHoneypot
from repro.honeypot.webfilter import WebFilter, WebPage

CHROME = (
    "Mozilla/5.0 (Windows NT 10.0) AppleWebKit/537.36 (KHTML, like Gecko) "
    "Chrome/100.0 Safari/537.36"
)


def req(**overrides):
    defaults = dict(timestamp=0, src_ip="198.51.100.1", host="resheba.online")
    defaults.update(overrides)
    return HttpRequest(**defaults)


class TestRecorder:
    def test_port_histogram_and_top_ports(self):
        recorder = TrafficRecorder()
        for port, n in ((80, 5), (443, 3), (22, 1)):
            for i in range(n):
                recorder.record_packet(PacketRecord(i, "1.1.1.1", port))
        assert recorder.port_histogram()[80] == 5
        assert recorder.top_ports(2) == [(80, 5), (443, 3)]

    def test_request_recording_creates_packet(self):
        recorder = TrafficRecorder()
        recorder.record_request(req(port=443))
        assert recorder.request_count == 1
        assert recorder.packet_count == 1
        assert recorder.port_histogram() == {443: 1}

    def test_http_share(self):
        recorder = TrafficRecorder()
        recorder.record_packet(PacketRecord(0, "1.1.1.1", 80))
        recorder.record_packet(PacketRecord(0, "1.1.1.1", 22))
        assert recorder.http_share() == 0.5
        assert TrafficRecorder().http_share() == 0.0

    def test_window_and_host_filter(self):
        recorder = TrafficRecorder()
        recorder.record_request(req(timestamp=10))
        recorder.record_request(req(timestamp=20, host="other.com"))
        view = recorder.window(0, 15)
        assert view.request_count == 1
        assert len(recorder.requests_for_host("OTHER.com")) == 1

    def test_source_ips(self):
        recorder = TrafficRecorder()
        recorder.record_packet(PacketRecord(0, "1.1.1.1", 80))
        recorder.record_request(req(src_ip="2.2.2.2"))
        assert recorder.source_ips() == {"1.1.1.1", "2.2.2.2"}


class TestTwoStageFilter:
    @pytest.fixture
    def noise_filter(self):
        f = TwoStageFilter()
        f.learn_no_hosting_baseline(
            [PacketRecord(0, "203.0.113.50", 22), PacketRecord(0, "203.0.113.51", 80)]
        )
        f.learn_control_group(
            [
                req(src_ip="198.18.0.1", path="/.well-known/acme-challenge/tok"),
                req(src_ip="198.18.0.2", path="/"),
            ]
        )
        return f

    def test_scanner_ips_dropped(self, noise_filter):
        kept, stats = noise_filter.apply([req(src_ip="203.0.113.50")])
        assert kept == []
        assert stats.dropped_by_ip_baseline == 1

    def test_control_ips_dropped(self, noise_filter):
        kept, stats = noise_filter.apply([req(src_ip="198.18.0.1")])
        assert kept == []
        assert stats.dropped_by_control_group == 1

    def test_well_known_uri_dropped_even_from_new_ip(self, noise_filter):
        request = req(src_ip="9.9.9.9", path="/.well-known/acme-challenge/tok")
        kept, _ = noise_filter.apply([request])
        assert kept == []

    def test_shared_benign_uri_kept_from_new_ip(self, noise_filter):
        kept, _ = noise_filter.apply([req(src_ip="9.9.9.9", path="/")])
        assert len(kept) == 1

    def test_stats_roll_up(self, noise_filter):
        requests = [
            req(src_ip="203.0.113.50"),
            req(src_ip="198.18.0.1"),
            req(src_ip="9.9.9.9"),
        ]
        kept, stats = noise_filter.apply(requests)
        assert stats.input_requests == 3
        assert stats.kept == 1
        assert stats.dropped == 2
        assert stats.drop_fraction() == pytest.approx(2 / 3)

    def test_learning_counters(self, noise_filter):
        assert noise_filter.scanner_ip_count == 2
        assert noise_filter.control_signature_count >= 3


class TestCategorizer:
    @pytest.fixture
    def categorizer(self):
        webfilter = WebFilter()
        webfilter.register_page(
            WebPage(
                "https://blog.example.org/post",
                linked_domains={"resheba.online"},
            )
        )
        reverse = ReverseIpTable()
        reverse.register("66.249.66.1", "crawl-1.googlebot.com")
        return TrafficCategorizer(reverse_ip=reverse, web_filter=webfilter)

    def test_referral_search(self, categorizer):
        item = categorizer.categorize(
            req(referer="https://www.google.com/search?q=resheba")
        )
        assert item.category == Category.REFERRAL
        assert item.subcategory == Subcategory.REFERRAL_SEARCH

    def test_referral_embedded(self, categorizer):
        item = categorizer.categorize(req(referer="https://blog.example.org/post"))
        assert item.subcategory == Subcategory.REFERRAL_EMBEDDED

    def test_referral_malicious(self, categorizer):
        item = categorizer.categorize(req(referer="https://fake.example.net/x"))
        assert item.subcategory == Subcategory.REFERRAL_MALICIOUS

    def test_referral_takes_precedence_over_ua(self, categorizer):
        item = categorizer.categorize(
            req(user_agent=CHROME, referer="https://www.google.com/search")
        )
        assert item.category == Category.REFERRAL

    def test_search_engine_crawler(self, categorizer):
        item = categorizer.categorize(
            req(user_agent="Mozilla/5.0 (compatible; Googlebot/2.1)", path="/index.html")
        )
        assert item.category == Category.WEB_CRAWLER
        assert item.subcategory == Subcategory.SEARCH_ENGINE
        assert item.agent_name == "Google"

    def test_file_grabber_crawler(self, categorizer):
        item = categorizer.categorize(
            req(user_agent="Mozilla/5.0 (compatible; Googlebot-Image/1.0 crawler)",
                path="/img/banner.jpeg")
        )
        assert item.subcategory == Subcategory.FILE_GRABBER

    def test_email_crawler_is_file_grabber(self, categorizer):
        item = categorizer.categorize(
            req(user_agent="Mozilla/5.0 (via ggpht.com GoogleImageProxy)",
                path="/newsletter/pixel.png")
        )
        assert item.category == Category.WEB_CRAWLER
        assert item.subcategory == Subcategory.FILE_GRABBER

    def test_crawler_attested_by_reverse_ip(self, categorizer):
        item = categorizer.categorize(
            req(src_ip="66.249.66.1", user_agent="", path="/page.html")
        )
        assert item.category == Category.WEB_CRAWLER

    def test_user_visit_pc(self, categorizer):
        item = categorizer.categorize(req(user_agent=CHROME))
        assert item.category == Category.USER_VISIT
        assert item.subcategory == Subcategory.PC_MOBILE

    def test_user_visit_inapp(self, categorizer):
        item = categorizer.categorize(
            req(user_agent="Mozilla/5.0 (iPhone) WhatsApp/2.21")
        )
        assert item.subcategory == Subcategory.INAPP
        assert item.agent_name == "WhatsApp"

    def test_script_benign(self, categorizer):
        item = categorizer.categorize(
            req(user_agent="curl/7.85.0", path="/status.json")
        )
        assert item.category == Category.AUTOMATED
        assert item.subcategory == Subcategory.SCRIPT_SOFTWARE

    def test_script_hitting_sensitive_uri_is_malicious(self, categorizer):
        item = categorizer.categorize(
            req(user_agent="python-requests/2.28", path="/wp-login.php")
        )
        assert item.subcategory == Subcategory.MALICIOUS_REQUEST

    def test_unknown_ua_sensitive_uri_malicious(self, categorizer):
        item = categorizer.categorize(req(user_agent="", path="/wp-login.php"))
        assert item.category == Category.AUTOMATED
        assert item.subcategory == Subcategory.MALICIOUS_REQUEST

    def test_unknown_ua_suspicious_query_malicious(self, categorizer):
        item = categorizer.categorize(
            req(
                user_agent="Apache-HttpClient/UNAVAILABLE (java 1.4)",
                path="/getTask.php",
                query="imei=A-1&balance=0&country=us",
            )
        )
        assert item.subcategory == Subcategory.MALICIOUS_REQUEST

    def test_unknown_ua_file_path_is_script(self, categorizer):
        item = categorizer.categorize(req(user_agent="", path="/data/feed.xml"))
        assert item.subcategory == Subcategory.SCRIPT_SOFTWARE

    def test_bare_probe_is_others(self, categorizer):
        item = categorizer.categorize(req(user_agent="", path="/"))
        assert item.category == Category.OTHERS

    def test_count_helpers(self, categorizer):
        items = categorizer.categorize_many(
            [req(user_agent=CHROME), req(user_agent="curl/7.0", path="/x.json")]
        )
        assert category_counts(items)[Category.USER_VISIT] == 1
        assert subcategory_counts(items)[Subcategory.SCRIPT_SOFTWARE] == 1


class TestHoneypotServer:
    def test_serves_landing_page(self):
        honeypot = NxdHoneypot(["resheba.online"])
        body = honeypot.accept_request(req())
        assert body == LANDING_PAGE
        assert "measurement study" in body
        assert honeypot.pages_served == 1

    def test_unfiltered_report_without_calibration(self):
        honeypot = NxdHoneypot(["resheba.online"])
        honeypot.accept_request(req(user_agent=CHROME))
        report = honeypot.report_for("resheba.online")
        assert report.total == 1
        assert report.count(Subcategory.PC_MOBILE) == 1

    def test_calibrated_filtering(self):
        honeypot = NxdHoneypot(["resheba.online"])
        honeypot.accept_request(req(src_ip="203.0.113.50", user_agent=CHROME))
        honeypot.accept_request(req(src_ip="7.7.7.7", user_agent=CHROME))

        no_hosting = TrafficRecorder("no-hosting")
        no_hosting.record_packet(PacketRecord(0, "203.0.113.50", 22))
        control = TrafficRecorder("control")
        honeypot.calibrate(no_hosting, control)

        kept, stats = honeypot.filtered_requests()
        assert stats.dropped_by_ip_baseline == 1
        assert len(kept) == 1

    def test_reports_sorted_by_volume(self):
        honeypot = NxdHoneypot(["a.com", "b.com"])
        for _ in range(3):
            honeypot.accept_request(req(host="b.com", user_agent=CHROME))
        honeypot.accept_request(req(host="a.com", user_agent=CHROME))
        reports = honeypot.reports()
        assert [r.domain for r in reports] == ["b.com", "a.com"]
        assert reports[0].total == 3

    def test_unhosted_domain_traffic_excluded_from_reports(self):
        honeypot = NxdHoneypot(["a.com"])
        honeypot.accept_request(req(host="stranger.com", user_agent=CHROME))
        assert honeypot.reports()[0].total == 0
