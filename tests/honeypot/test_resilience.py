"""Honeypot survival of recorder failures.

The §6 deployment must keep serving its landing page even when the
capture side wedges — a visibly broken host would perturb the very
traffic being measured — and quarantined traffic must be recoverable
once the recorder comes back.
"""

import pytest

from repro.errors import TransientStoreError
from repro.faults import FaultPlan
from repro.honeypot.http import HttpRequest, PacketRecord
from repro.honeypot.server import LANDING_PAGE, NxdHoneypot
from repro.resilience import DeadLetterQueue


def _request(i=0):
    return HttpRequest(timestamp=1_000 + i, src_ip="203.0.113.9", host="x.com")


def _packet(i=0):
    return PacketRecord(timestamp=1_000 + i, src_ip="203.0.113.9", dst_port=22)


def _always_fail(context):
    raise TransientStoreError(f"disk full ({context})")


def test_recorder_failure_still_serves_the_landing_page():
    honeypot = NxdHoneypot(["x.com"])
    honeypot.recorder.fault_hook = _always_fail
    assert honeypot.accept_request(_request()) == LANDING_PAGE
    honeypot.accept_packet(_packet())
    assert honeypot.recorder_errors == 2
    assert honeypot.recorder.request_count == 0
    assert honeypot.pages_served == 1


def test_dead_lettered_traffic_replays_after_recovery():
    queue = DeadLetterQueue(capacity=16)
    honeypot = NxdHoneypot(["x.com"], dead_letters=queue)
    honeypot.recorder.fault_hook = _always_fail
    honeypot.accept_request(_request(0))
    honeypot.accept_packet(_packet(1))
    assert len(queue) == 2
    honeypot.recorder.fault_hook = None  # the recorder recovers
    stats = honeypot.replay_dead_letters()
    assert stats.succeeded == 2
    assert honeypot.recorder.request_count == 1
    # The replayed request also re-creates its transport-level shadow.
    assert honeypot.recorder.packet_count == 2


def test_replay_without_queue_is_a_noop():
    honeypot = NxdHoneypot(["x.com"])
    assert honeypot.replay_dead_letters().replayed == 0


def test_store_injector_drives_the_recorder_hook():
    """The fault schedule's store injector plugs straight in."""
    schedule = FaultPlan(store_failure_rate=1.0).schedule(3)
    honeypot = NxdHoneypot(["x.com"])
    honeypot.recorder.fault_hook = schedule.store.check
    assert honeypot.accept_request(_request()) == LANDING_PAGE
    assert honeypot.recorder_errors == 1
    assert schedule.store.injected == 1


def test_healthy_capture_path_is_unchanged():
    honeypot = NxdHoneypot(["x.com"])
    assert honeypot.accept_request(_request()) == LANDING_PAGE
    honeypot.accept_packet(_packet())
    assert honeypot.recorder.request_count == 1
    assert honeypot.recorder.packet_count == 2
    assert honeypot.recorder_errors == 0
