"""Tests for the interactive honeypot (§7 future work)."""

import pytest

from repro.honeypot.http import HttpRequest
from repro.honeypot.interactive import (
    EMPTY_JSON,
    EMPTY_TASK_RESPONSE,
    InteractiveHoneypot,
    NOT_FOUND_BODY,
)
from repro.honeypot.server import LANDING_PAGE


def req(path="/", src_ip="198.51.100.9", ts=0, **overrides):
    defaults = dict(timestamp=ts, src_ip=src_ip, host="resheba.online", path=path)
    defaults.update(overrides)
    return HttpRequest(**defaults)


@pytest.fixture
def honeypot():
    return InteractiveHoneypot(["resheba.online", "gpclick.com"])


class TestInteractionPolicy:
    def test_pages_get_landing_page(self, honeypot):
        response = honeypot.interact(req("/index.html"))
        assert response.status == 200
        assert response.body == LANDING_PAGE

    def test_json_pollers_get_empty_document(self, honeypot):
        response = honeypot.interact(req("/status.json"))
        assert response.status == 200
        assert response.content_type == "application/json"
        assert response.body == EMPTY_JSON

    def test_xml_gets_empty_feed(self, honeypot):
        response = honeypot.interact(req("/feed.xml"))
        assert "<feed/>" in response.body

    def test_bots_get_empty_task_list(self, honeypot):
        response = honeypot.interact(
            req("/getTask.php", host="gpclick.com", query="imei=1")
        )
        assert response.body == EMPTY_TASK_RESPONSE

    def test_probes_get_404_never_fake_vulnerability(self, honeypot):
        for probe in ("/wp-login.php", "/.env", "/phpmyadmin/index.php"):
            response = honeypot.interact(req(probe))
            assert response.status == 404
            assert response.body == NOT_FOUND_BODY

    def test_images_get_placeholder(self, honeypot):
        response = honeypot.interact(req("/img/banner.jpeg"))
        assert response.content_type == "image/png"

    def test_status_accounting(self, honeypot):
        honeypot.interact(req("/index.html"))
        honeypot.interact(req("/wp-login.php"))
        assert honeypot.responses_by_status == {200: 1, 404: 1}

    def test_requests_still_recorded_for_categorization(self, honeypot):
        honeypot.interact(req("/index.html"))
        assert honeypot.recorder.request_count == 1


class TestSessions:
    def test_single_shot_visitor(self, honeypot):
        honeypot.interact(req("/a.html"))
        session = honeypot.session_of("198.51.100.9")
        assert session.requests == 1
        assert not session.is_returning
        assert session.mean_interarrival() is None

    def test_returning_visitor_interarrivals(self, honeypot):
        for ts in (0, 100, 200):
            honeypot.interact(req("/a.html", ts=ts))
        session = honeypot.session_of("198.51.100.9")
        assert session.is_returning
        assert session.interarrivals == [100, 100]
        assert session.mean_interarrival() == 100

    def test_periodic_poller_detected(self, honeypot):
        for i in range(6):
            honeypot.interact(req("/status.json", ts=i * 300))
        assert honeypot.session_of("198.51.100.9").is_periodic

    def test_irregular_visitor_not_periodic(self, honeypot):
        for ts in (0, 10, 500, 520, 9_000, 9_010):
            honeypot.interact(req("/x.html", ts=ts))
        assert not honeypot.session_of("198.51.100.9").is_periodic

    def test_summary_and_top_visitors(self, honeypot):
        for i in range(5):
            honeypot.interact(req("/s.json", src_ip="10.0.0.1", ts=i * 60))
        honeypot.interact(req("/once.html", src_ip="10.0.0.2"))
        summary = honeypot.session_summary()
        assert summary["visitors"] == 2
        assert summary["returning"] == 1
        assert summary["single-shot"] == 1
        assert honeypot.top_visitors(1) == [("10.0.0.1", 5)]

    def test_distinct_uris_tracked(self, honeypot):
        honeypot.interact(req("/a.html"))
        honeypot.interact(req("/b.html"))
        assert honeypot.session_of("198.51.100.9").distinct_uris == {
            "/a.html",
            "/b.html",
        }
