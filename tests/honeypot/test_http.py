"""Tests for the HTTP request / packet models."""

import pytest

from repro.honeypot.http import HttpRequest, PacketRecord, Transport


def request(**overrides):
    defaults = dict(timestamp=0, src_ip="198.51.100.7", host="example.com")
    defaults.update(overrides)
    return HttpRequest(**defaults)


class TestPacketRecord:
    def test_valid(self):
        packet = PacketRecord(0, "1.2.3.4", 443, Transport.UDP, 100)
        assert packet.transport == Transport.UDP

    def test_port_bounds(self):
        with pytest.raises(ValueError):
            PacketRecord(0, "1.2.3.4", 70000)
        with pytest.raises(ValueError):
            PacketRecord(0, "1.2.3.4", -1)

    def test_payload_bounds(self):
        with pytest.raises(ValueError):
            PacketRecord(0, "1.2.3.4", 80, payload_size=-5)


class TestHttpRequest:
    def test_defaults(self):
        r = request()
        assert r.path == "/"
        assert not r.is_tls
        assert r.uri == "/"
        assert not r.has_query_string

    def test_path_validation(self):
        with pytest.raises(ValueError):
            request(path="no-slash")

    def test_port_validation(self):
        with pytest.raises(ValueError):
            request(port=8080)

    def test_tls(self):
        assert request(port=443).is_tls

    def test_uri_with_query(self):
        r = request(path="/getTask.php", query="imei=1&balance=0")
        assert r.uri == "/getTask.php?imei=1&balance=0"
        assert r.has_query_string

    def test_filename_and_extension(self):
        assert request(path="/a/b/status.json").filename == "status.json"
        assert request(path="/a/b/status.json").extension == "json"
        assert request(path="/dir/").filename == ""
        assert request(path="/README").extension == ""
        assert request(path="/pic.JPEG").extension == "jpeg"

    def test_query_parameters(self):
        r = request(query="imei=A-1&country=us&os=23&empty")
        params = r.query_parameters()
        assert params["imei"] == "A-1"
        assert params["country"] == "us"
        assert params["empty"] == ""
        assert request().query_parameters() == {}

    def test_to_packet(self):
        packet = request(port=443).to_packet()
        assert packet.dst_port == 443
        assert packet.src_ip == "198.51.100.7"
        assert packet.payload_size > 0
