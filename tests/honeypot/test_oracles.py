"""Tests for the NVD, reverse-IP, and web-filter oracles."""

import pytest

from repro.honeypot.nvd import Severity, VulnerabilityDatabase
from repro.honeypot.reverse_ip import ReverseIpTable
from repro.honeypot.webfilter import ReferralKind, WebFilter, WebPage


class TestNvd:
    @pytest.fixture
    def nvd(self):
        return VulnerabilityDatabase()

    def test_paper_examples_sensitive(self, nvd):
        assert nvd.is_sensitive("/wp-login.php")
        assert nvd.is_sensitive("/accounts/changepassword.php")

    def test_critical_files(self, nvd):
        assert nvd.severity_of("/.env") == Severity.CRITICAL
        assert nvd.severity_of("/backup/shell.php") == Severity.CRITICAL

    def test_benign_paths(self, nvd):
        assert nvd.severity_of("/index.html") == Severity.NONE
        assert not nvd.is_sensitive("/images/logo.png")
        assert not nvd.is_sensitive("/getTask.php")

    def test_sensitive_segments(self, nvd):
        assert nvd.is_sensitive("/phpmyadmin/index.php")
        assert nvd.is_sensitive("/cgi-bin/test.sh")
        assert nvd.is_sensitive("/.git/config")

    def test_minimum_threshold(self, nvd):
        nvd.add("weak.php", Severity.LOW)
        assert not nvd.is_sensitive("/weak.php")
        assert nvd.is_sensitive("/weak.php", minimum=Severity.LOW)

    def test_suspicious_query(self, nvd):
        assert nvd.has_suspicious_query({"cmd": "ls"})
        assert nvd.has_suspicious_query({"imei": "A-1", "os": "23"})
        assert not nvd.has_suspicious_query({"page": "2"})
        assert not nvd.has_suspicious_query({})

    def test_add_extends(self, nvd):
        before = len(nvd)
        nvd.add("newprobe.php", Severity.HIGH)
        assert len(nvd) == before + 1
        assert nvd.is_sensitive("/newprobe.php")


class TestReverseIp:
    @pytest.fixture
    def table(self):
        t = ReverseIpTable()
        t.register("66.249.66.1", "crawl-66-249-66-1.googlebot.com")
        t.register("40.77.167.10", "msnbot-40-77-167-10.search.msn.com")
        t.register("74.125.0.5", "rate-limited-proxy-74-125-0-5.googleusercontent.com")
        t.register("3.88.1.2", "ec2-3-88-1-2.compute-1.amazonaws.com")
        return t

    def test_lookup(self, table):
        assert table.lookup("66.249.66.1").endswith("googlebot.com")
        assert table.lookup("9.9.9.9") is None

    def test_service_attribution(self, table):
        assert table.service_of("66.249.66.1") == "Google crawler"
        assert table.service_of("40.77.167.10") == "Bing crawler"
        assert table.service_of("74.125.0.5") == "google-proxy"
        assert table.service_of("3.88.1.2") == "Amazon AWS"
        assert table.service_of("9.9.9.9") is None

    def test_known_crawler(self, table):
        assert table.is_known_crawler("66.249.66.1")
        assert not table.is_known_crawler("74.125.0.5")  # proxy, not crawler
        assert not table.is_known_crawler("9.9.9.9")

    def test_hostname_histogram(self, table):
        histogram = table.hostname_histogram(
            ["74.125.0.5", "74.125.0.5", "3.88.1.2", "9.9.9.9"]
        )
        assert histogram["google-proxy"] == 2
        assert histogram["Amazon AWS"] == 1
        assert histogram["unresolved"] == 1

    def test_unknown_suffix_is_other_hosting(self, table):
        table.register("5.5.5.5", "server.random-isp.example")
        histogram = table.hostname_histogram(["5.5.5.5"])
        assert histogram == {"other-hosting": 1}


class TestWebFilter:
    @pytest.fixture
    def webfilter(self):
        wf = WebFilter()
        wf.register_page(
            WebPage(
                "https://forum.example.org/thread/42",
                category="forums-blogs",
                linked_domains={"resheba.online"},
            )
        )
        return wf

    def test_search_engine_referers(self, webfilter):
        for url in (
            "https://www.google.com/search?q=x",
            "https://go.mail.ru/search?q=y",
            "https://yandex.ru/search",
        ):
            assert webfilter.classify(url, "any.com") == ReferralKind.SEARCH_ENGINE

    def test_embedded_link(self, webfilter):
        kind = webfilter.classify(
            "https://forum.example.org/thread/42", "resheba.online"
        )
        assert kind == ReferralKind.EMBEDDED

    def test_page_without_our_link_is_malicious(self, webfilter):
        kind = webfilter.classify(
            "https://forum.example.org/thread/42", "other.com"
        )
        assert kind == ReferralKind.MALICIOUS_LINK

    def test_unreachable_page_is_malicious(self, webfilter):
        kind = webfilter.classify("https://gone.example.net/x", "resheba.online")
        assert kind == ReferralKind.MALICIOUS_LINK

    def test_fetch_normalizes_scheme_and_slash(self, webfilter):
        assert webfilter.fetch("http://forum.example.org/thread/42/") is not None

    def test_page_category(self, webfilter):
        assert webfilter.page_category("https://forum.example.org/thread/42") == (
            "forums-blogs"
        )
        assert webfilter.page_category("https://nope.example") is None
