"""TrafficRecorder query layout: bisected windows and the host index.

The recorder serves :meth:`window` with two bisections while its
streams arrive time-ordered (how the generators emit) and falls back
to a full scan the moment an out-of-order record lands — both paths
must return the same records.  ``requests_for_host`` reads a lazily
built host index that every append invalidates.
"""

from repro.honeypot.http import HttpRequest, PacketRecord
from repro.honeypot.recorder import TrafficRecorder


def _packet(ts, port=80, src="10.0.0.1"):
    return PacketRecord(timestamp=ts, src_ip=src, dst_port=port)


def _request(ts, host="a.example", src="10.0.0.2"):
    return HttpRequest(timestamp=ts, src_ip=src, host=host)


def _fill_sorted(recorder, n=50):
    for i in range(n):
        recorder.record_packet(_packet(100 + i, port=22 + i % 3))
        recorder.record_request(_request(100 + i, host=f"h{i % 4}.example"))
    return recorder


def _window_contents(view):
    return (
        [(p.timestamp, p.dst_port) for p in view.packets()],
        [(r.timestamp, r.host) for r in view.requests()],
    )


def test_window_bisected_matches_linear_scan():
    recorder = _fill_sorted(TrafficRecorder())
    for start, end in [(100, 150), (110, 120), (0, 99), (149, 1_000), (5, 5)]:
        packets, requests = _window_contents(recorder.window(start, end))
        assert requests == [
            (r.timestamp, r.host)
            for r in recorder.requests()
            if start <= r.timestamp < end
        ]
        assert packets == [
            (p.timestamp, p.dst_port)
            for p in recorder.packets()
            if start <= p.timestamp < end
        ]


def test_out_of_order_append_falls_back_to_scan():
    recorder = _fill_sorted(TrafficRecorder())
    recorder.record_packet(_packet(50))  # before everything: unsorted now
    recorder.record_request(_request(60, host="late.example"))
    view = recorder.window(40, 115)
    timestamps = [p.timestamp for p in view.packets()]
    assert 50 in timestamps and 60 in timestamps
    assert [r.timestamp for r in view.requests()] == [
        r.timestamp for r in recorder.requests() if 40 <= r.timestamp < 115
    ]


def test_nested_windows_keep_bisecting():
    recorder = _fill_sorted(TrafficRecorder(), n=80)
    outer = recorder.window(110, 170)
    inner = outer.window(120, 130)
    assert _window_contents(inner) == (
        [
            (p.timestamp, p.dst_port)
            for p in recorder.packets()
            if 120 <= p.timestamp < 130
        ],
        [
            (r.timestamp, r.host)
            for r in recorder.requests()
            if 120 <= r.timestamp < 130
        ],
    )


def test_window_of_unsorted_view_resorts_when_filtered_sorted():
    """A scan-built view whose surviving records happen to be sorted
    regains the bisection path for its own nested windows."""
    recorder = TrafficRecorder()
    for ts in (10, 30, 20, 40, 50):
        recorder.record_packet(_packet(ts))
    view = recorder.window(35, 60)  # survivors 40, 50: sorted again
    nested = view.window(45, 60)
    assert [p.timestamp for p in nested.packets()] == [50]


def test_requests_for_host_matches_filter_and_preserves_order():
    recorder = _fill_sorted(TrafficRecorder())
    for host in ("h0.example", "h3.example", "H1.EXAMPLE", "missing.example"):
        assert recorder.requests_for_host(host) == [
            r
            for r in recorder.requests()
            if r.host.lower() == host.lower()
        ]


def test_host_index_invalidated_by_append():
    recorder = TrafficRecorder()
    recorder.record_request(_request(1, host="a.example"))
    assert len(recorder.requests_for_host("a.example")) == 1
    # The next query must see the post-index append.
    recorder.record_request(_request(2, host="a.example"))
    assert len(recorder.requests_for_host("a.example")) == 2
    recorder.record_request(_request(3, host="b.example"))
    assert len(recorder.requests_for_host("b.example")) == 1
