"""Tests for User-Agent classification."""

import pytest

from repro.honeypot.useragent import AgentKind, parse_user_agent

CHROME_WIN = (
    "Mozilla/5.0 (Windows NT 6.3; WOW64) AppleWebKit/537.36 "
    "(KHTML, like Gecko) Chrome/41.0.2272.118 Safari/537.36"
)


class TestCrawlers:
    def test_googlebot(self):
        info = parse_user_agent(
            "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)"
        )
        assert info.kind == AgentKind.CRAWLER
        assert info.name == "Google"

    def test_mailru_bot(self):
        info = parse_user_agent("Mozilla/5.0 (compatible; Mail.RU_Bot/2.0)")
        assert info.kind == AgentKind.CRAWLER
        assert info.name == "Mail.Ru"

    def test_email_crawlers(self):
        info = parse_user_agent(
            "Mozilla/5.0 (Windows NT 5.1; rv:11.0) Gecko Firefox/11.0 "
            "(via ggpht.com GoogleImageProxy)"
        )
        assert info.kind == AgentKind.EMAIL_CRAWLER
        assert info.name == "GmailImageProxy"

    def test_crawler_beats_browser_tokens(self):
        # Crawler UAs embed Mozilla/Chrome tokens; crawler must win.
        info = parse_user_agent(
            "Mozilla/5.0 AppleWebKit/537.36 (KHTML, like Gecko; compatible; "
            "bingbot/2.0) Chrome/103.0 Safari/537.36"
        )
        assert info.kind == AgentKind.CRAWLER


class TestScripts:
    @pytest.mark.parametrize(
        "ua,name",
        [
            ("python-requests/2.28.1", "python-requests"),
            ("curl/7.85.0", "curl"),
            ("Wget/1.21", "wget"),
            ("Apache-HttpClient/UNAVAILABLE (java 1.4)", "Apache-HttpClient"),
            ("Java/1.8.0_271", "Java"),
            ("Go-http-client/1.1", "Go-http-client"),
        ],
    )
    def test_script_tools(self, ua, name):
        info = parse_user_agent(ua)
        assert info.kind == AgentKind.SCRIPT
        assert info.name == name
        assert info.is_automated


class TestBrowsers:
    def test_chrome_windows(self):
        info = parse_user_agent(CHROME_WIN)
        assert info.kind == AgentKind.BROWSER
        assert info.name == "Chrome"
        assert info.device == "Windows PC"

    def test_safari_iphone(self):
        info = parse_user_agent(
            "Mozilla/5.0 (iPhone; CPU iPhone OS 15_0 like Mac OS X) "
            "AppleWebKit/605.1.15 Version/15.0 Mobile/15E148 Safari/604.1"
        )
        assert info.kind == AgentKind.BROWSER
        assert info.device == "iPhone"

    def test_bare_mozilla_is_browser(self):
        assert parse_user_agent("Mozilla/4.0").kind == AgentKind.BROWSER


class TestInApp:
    @pytest.mark.parametrize(
        "ua,name",
        [
            ("Mozilla/5.0 (iPhone) WhatsApp/2.21.1", "WhatsApp"),
            (
                "Mozilla/5.0 (Linux; Android 10) MicroMessenger/8.0.1",
                "WeChat",
            ),
            (
                "Mozilla/5.0 (iPhone) [FB_IAB/FB4A;FBAV/350.0;]",
                "Facebook",
            ),
            ("Mozilla/5.0 (Linux; Android 11) Instagram 200.0", "Instagram"),
            ("Mozilla/5.0 (Linux; Android 9) DingTalk/6.0", "DingTalk"),
        ],
    )
    def test_inapp_browsers(self, ua, name):
        info = parse_user_agent(ua)
        assert info.kind == AgentKind.INAPP_BROWSER
        assert info.name == name

    def test_inapp_beats_host_browser(self):
        info = parse_user_agent(CHROME_WIN + " WhatsApp/2.0")
        assert info.kind == AgentKind.INAPP_BROWSER


class TestUnknown:
    def test_empty(self):
        assert parse_user_agent("").kind == AgentKind.UNKNOWN
        assert parse_user_agent("   ").kind == AgentKind.UNKNOWN

    def test_gibberish(self):
        assert parse_user_agent("x").kind == AgentKind.UNKNOWN
