"""Smoke tests: every example script runs green end to end.

These guard the examples against API drift; each runs at the smallest
population that still exercises its full code path.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "0", "1200")
        assert result.returncode == 0, result.stderr
        assert "Figure 3" in result.stdout
        assert "Table 1" in result.stdout

    def test_domain_lifecycle(self):
        result = run_example("domain_lifecycle.py")
        assert result.returncode == 0, result.stderr
        assert "NXDOMAIN" in result.stdout
        assert "drop-catch wins: 1" in result.stdout

    def test_squatting_sweep(self):
        result = run_example("squatting_sweep.py")
        assert result.returncode == 0, result.stderr
        assert "typosquatting" in result.stdout

    def test_dga_hunting(self):
        result = run_example("dga_hunting.py", "1")
        assert result.returncode == 0, result.stderr
        assert "per-family recall" in result.stdout
        assert "threshold sweep" in result.stdout

    def test_botnet_takeover(self):
        result = run_example("botnet_takeover.py", "3")
        assert result.returncode == 0, result.stderr
        assert "getTask.php" in result.stdout
        assert "google-proxy" in result.stdout

    def test_sinkhole_monitor(self):
        result = run_example("sinkhole_monitor.py", "1")
        assert result.returncode == 0, result.stderr
        assert "periodic pollers" in result.stdout
        assert "defensive registration" in result.stdout
