"""The extracted token bucket (repro.resilience.ratelimit)."""

import pytest

from repro.errors import ConfigError, RateLimitExceeded
from repro.resilience.ratelimit import RateLimit, TokenBucket


def test_rate_limit_validation():
    with pytest.raises(ConfigError):
        RateLimit(capacity=0)
    with pytest.raises(ConfigError):
        RateLimit(window_seconds=0)


def test_bucket_grants_until_capacity_then_refuses():
    bucket = TokenBucket(RateLimit(capacity=3, window_seconds=100))
    assert all(bucket.try_acquire(now=10) for _ in range(3))
    assert not bucket.try_acquire(now=20)
    assert bucket.granted == 3
    assert bucket.rejected == 1


def test_window_reset_restores_budget():
    bucket = TokenBucket(RateLimit(capacity=2, window_seconds=100))
    assert bucket.try_acquire(now=10)
    assert bucket.try_acquire(now=10)
    assert not bucket.try_acquire(now=50)
    # The window opened at the first acquire; it resets 100s later.
    assert bucket.try_acquire(now=110)
    assert bucket.remaining(now=110) == 1


def test_retry_after_counts_down_to_window_reset():
    bucket = TokenBucket(RateLimit(capacity=1, window_seconds=100))
    assert bucket.retry_after(now=0) == 0  # window not yet open
    assert bucket.try_acquire(now=10)
    assert bucket.retry_after(now=30) == 80
    assert bucket.retry_after(now=110) == 0


def test_acquire_raises_with_retry_after():
    bucket = TokenBucket(RateLimit(capacity=1, window_seconds=60))
    bucket.acquire(now=5)
    with pytest.raises(RateLimitExceeded) as excinfo:
        bucket.acquire(now=20)
    assert excinfo.value.retry_after == 45


def test_multi_token_acquire_and_validation():
    bucket = TokenBucket(RateLimit(capacity=5, window_seconds=100))
    assert bucket.try_acquire(now=0, tokens=4)
    assert not bucket.try_acquire(now=1, tokens=2)
    assert bucket.try_acquire(now=1, tokens=1)
    with pytest.raises(ConfigError):
        bucket.try_acquire(now=2, tokens=0)


def test_blocklist_store_reexports_the_extracted_limiter():
    # The limiter grew up and moved; the old import path must keep
    # working for existing callers.
    from repro.blocklist.store import RateLimit as ReexportedLimit
    from repro.blocklist.store import TokenBucket as ReexportedBucket

    assert ReexportedLimit is RateLimit
    assert ReexportedBucket is TokenBucket
