"""DeadLetterQueue: bounded quarantine with replay semantics."""

import pytest

from repro.errors import ConfigError, TransientStoreError, WorkloadError
from repro.resilience import DeadLetterQueue


def test_push_and_replay_success():
    queue = DeadLetterQueue(capacity=8)
    queue.push("a", reason="store down", timestamp=10)
    queue.push("b", reason="store down", timestamp=11)
    delivered = []
    stats = queue.replay(delivered.append)
    assert delivered == ["a", "b"]
    assert stats.replayed == 2
    assert stats.succeeded == 2
    assert len(queue) == 0


def test_capacity_evicts_oldest():
    queue = DeadLetterQueue(capacity=2)
    for index in range(4):
        queue.push(index, reason="r", timestamp=index)
    assert queue.evicted == 2
    assert [letter.item for letter in queue.letters()] == [2, 3]
    assert queue.pushed == 4


def test_transient_replay_failures_requeue_with_attempt_bump():
    queue = DeadLetterQueue(capacity=8, max_attempts=3)
    queue.push("x", reason="first failure", timestamp=0)

    def always_fails(item):
        raise TransientStoreError("still down")

    stats = queue.replay(always_fails)
    assert stats.requeued == 1
    (letter,) = queue.letters()
    assert letter.attempts == 2
    assert "replay failed" in letter.reason


def test_abandon_after_max_attempts():
    queue = DeadLetterQueue(capacity=8, max_attempts=2)
    queue.push("x", reason="r", timestamp=0)

    def always_fails(item):
        raise TransientStoreError("still down")

    first = queue.replay(always_fails)
    assert first.requeued == 1
    second = queue.replay(always_fails)
    assert second.abandoned == 1
    assert len(queue) == 0


def test_replay_processes_each_letter_once_per_pass():
    """A requeued letter is not retried again within the same pass."""
    queue = DeadLetterQueue(capacity=8, max_attempts=5)
    queue.push("x", reason="r", timestamp=0)
    calls = []

    def always_fails(item):
        calls.append(item)
        raise TransientStoreError("down")

    queue.replay(always_fails)
    assert calls == ["x"]
    assert len(queue) == 1


def test_non_transient_replay_errors_propagate():
    queue = DeadLetterQueue(capacity=8)
    queue.push("x", reason="r", timestamp=0)

    def broken(item):
        raise WorkloadError("handler bug")

    with pytest.raises(WorkloadError):
        queue.replay(broken)


def test_clear_and_validation():
    queue = DeadLetterQueue(capacity=4)
    queue.push("x", reason="r", timestamp=0)
    assert queue.clear() == 1
    assert len(queue) == 0
    with pytest.raises(ConfigError):
        DeadLetterQueue(capacity=0)
    with pytest.raises(ConfigError):
        DeadLetterQueue(max_attempts=0)
