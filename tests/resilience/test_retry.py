"""RetryPolicy: attempt counting, backoff timing, jitter determinism."""

import pytest

from repro.clock import SimClock
from repro.errors import (
    ConfigError,
    ResolutionError,
    TransientError,
    TransientStoreError,
)
from repro.rand import make_rng
from repro.resilience import RetryPolicy


class Flaky:
    """Fails ``failures`` times with ``error``, then succeeds."""

    def __init__(self, failures, error=TransientStoreError):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"boom {self.calls}")
        return "ok"


def test_succeeds_first_try_without_waiting():
    clock = SimClock(now=1_000)
    assert RetryPolicy().run(Flaky(0), clock=clock) == "ok"
    assert clock.now == 1_000


def test_retries_then_succeeds():
    operation = Flaky(2)
    assert RetryPolicy(max_attempts=3).run(operation) == "ok"
    assert operation.calls == 3


def test_exhaustion_reraises_the_underlying_error():
    operation = Flaky(5)
    with pytest.raises(TransientStoreError):
        RetryPolicy(max_attempts=3).run(operation)
    assert operation.calls == 3


def test_non_transient_errors_are_not_retried():
    operation = Flaky(1, error=ResolutionError)
    with pytest.raises(ResolutionError):
        RetryPolicy(max_attempts=5).run(operation)
    assert operation.calls == 1


def test_backoff_advances_the_simulated_clock():
    clock = SimClock(now=0)
    policy = RetryPolicy(
        max_attempts=4, base_delay=1.0, multiplier=2.0, max_delay=60.0
    )
    policy.run(Flaky(3), clock=clock)
    # Waits of 1, 2, and 4 seconds between the four attempts.
    assert clock.now == 7


def test_max_delay_caps_the_backoff():
    policy = RetryPolicy(base_delay=10.0, multiplier=10.0, max_delay=25.0)
    assert policy.delay_for(0) == 10.0
    assert policy.delay_for(1) == 25.0
    assert policy.delay_for(5) == 25.0


def test_jitter_is_deterministic_for_a_seeded_generator():
    policy = RetryPolicy(base_delay=10.0, jitter=0.5)
    first = [policy.delay_for(0, make_rng(42)) for _ in range(5)]
    assert len(set(first)) == 1
    assert 5.0 <= first[0] <= 15.0
    assert first[0] != 10.0  # jitter actually applied


def test_jittered_backoff_timing_is_reproducible_on_the_clock():
    def run_once():
        clock = SimClock(now=0)
        RetryPolicy(max_attempts=3, base_delay=5.0, jitter=0.4).run(
            Flaky(2), clock=clock, rng=make_rng(7)
        )
        return clock.now

    assert run_once() == run_once()


def test_on_retry_sees_each_transient_failure():
    seen = []
    RetryPolicy(max_attempts=3).run(
        Flaky(2), on_retry=lambda attempt, exc: seen.append(attempt)
    )
    assert seen == [0, 1]


def test_retry_on_narrows_the_caught_classes():
    operation = Flaky(1, error=TransientStoreError)
    with pytest.raises(TransientStoreError):
        RetryPolicy(max_attempts=3).run(
            operation, retry_on=(ConfigError,)
        )
    assert operation.calls == 1


def test_policy_validation():
    with pytest.raises(ConfigError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ConfigError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ConfigError):
        RetryPolicy().delay_for(-1)


def test_transient_hierarchy():
    assert issubclass(TransientStoreError, TransientError)
