"""CircuitBreaker state machine over simulated time."""

import pytest

from repro.errors import CircuitOpenError, ConfigError, TransientStoreError
from repro.resilience import BreakerState, CircuitBreaker


def _failing():
    raise TransientStoreError("down")


def test_opens_after_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=60)
    for now in range(3):
        with pytest.raises(TransientStoreError):
            breaker.call(_failing, now=now)
    assert breaker.state is BreakerState.OPEN
    assert breaker.times_opened == 1


def test_open_breaker_rejects_without_calling():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60)
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=0)
    calls = []
    with pytest.raises(CircuitOpenError):
        breaker.call(lambda: calls.append(1), now=30)
    assert calls == []
    assert breaker.rejected == 1


def test_half_open_probe_closes_on_success():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60)
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=0)
    assert breaker.call(lambda: "ok", now=61) == "ok"
    assert breaker.state is BreakerState.CLOSED


def test_half_open_probe_failure_reopens():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60)
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=0)
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=61)
    assert breaker.state is BreakerState.OPEN
    assert breaker.times_opened == 2
    # The cooldown restarts from the probe failure.
    assert not breaker.allow(now=100)
    assert breaker.allow(now=121)


def test_success_resets_the_failure_streak():
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60)
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=0)
    assert breaker.call(lambda: "ok", now=1) == "ok"
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=2)
    # One failure after a success: streak is 1, breaker still closed.
    assert breaker.state is BreakerState.CLOSED


def test_multi_probe_half_open():
    breaker = CircuitBreaker(
        failure_threshold=1, reset_timeout=10, probe_successes=2
    )
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=0)
    assert breaker.call(lambda: "a", now=11) == "a"
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.call(lambda: "b", now=12) == "b"
    assert breaker.state is BreakerState.CLOSED


def test_programming_errors_still_count_and_propagate():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60)

    def broken():
        raise ValueError("bug")  # repro: noqa[REP003] - simulating a bug

    with pytest.raises(ValueError):
        breaker.call(broken, now=0)
    assert breaker.state is BreakerState.OPEN


def test_validation():
    with pytest.raises(ConfigError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ConfigError):
        CircuitBreaker(reset_timeout=0)
    with pytest.raises(ConfigError):
        CircuitBreaker(probe_successes=0)
