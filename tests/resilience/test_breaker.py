"""CircuitBreaker state machine over simulated time."""

import pytest

from repro.errors import CircuitOpenError, ConfigError, TransientStoreError
from repro.resilience import BreakerState, CircuitBreaker


def _failing():
    raise TransientStoreError("down")


def test_opens_after_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=60)
    for now in range(3):
        with pytest.raises(TransientStoreError):
            breaker.call(_failing, now=now)
    assert breaker.state is BreakerState.OPEN
    assert breaker.times_opened == 1


def test_open_breaker_rejects_without_calling():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60)
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=0)
    calls = []
    with pytest.raises(CircuitOpenError):
        breaker.call(lambda: calls.append(1), now=30)
    assert calls == []
    assert breaker.rejected == 1


def test_half_open_probe_closes_on_success():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60)
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=0)
    assert breaker.call(lambda: "ok", now=61) == "ok"
    assert breaker.state is BreakerState.CLOSED


def test_half_open_probe_failure_reopens():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60)
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=0)
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=61)
    assert breaker.state is BreakerState.OPEN
    assert breaker.times_opened == 2
    # The cooldown restarts from the probe failure.
    assert not breaker.allow(now=100)
    assert breaker.allow(now=121)


def test_success_resets_the_failure_streak():
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60)
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=0)
    assert breaker.call(lambda: "ok", now=1) == "ok"
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=2)
    # One failure after a success: streak is 1, breaker still closed.
    assert breaker.state is BreakerState.CLOSED


def test_multi_probe_half_open():
    breaker = CircuitBreaker(
        failure_threshold=1, reset_timeout=10, probe_successes=2
    )
    with pytest.raises(TransientStoreError):
        breaker.call(_failing, now=0)
    assert breaker.call(lambda: "a", now=11) == "a"
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.call(lambda: "b", now=12) == "b"
    assert breaker.state is BreakerState.CLOSED


def test_programming_errors_still_count_and_propagate():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60)

    def broken():
        raise ValueError("bug")  # repro: noqa[REP003] - simulating a bug

    with pytest.raises(ValueError):
        breaker.call(broken, now=0)
    assert breaker.state is BreakerState.OPEN


def test_validation():
    with pytest.raises(ConfigError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ConfigError):
        CircuitBreaker(reset_timeout=0)
    with pytest.raises(ConfigError):
        CircuitBreaker(probe_successes=0)


# -- half-open concurrency: the single-probe claim -------------------------


def test_half_open_admits_exactly_one_probe():
    """allow() claims the probe slot; every other caller is refused."""
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10)
    breaker.record_failure(now=0)
    assert breaker.state is BreakerState.OPEN
    # Cooldown elapsed: the first allow() transitions to HALF_OPEN and
    # claims the probe; the rest must fail fast, not pile onto the
    # dependency the breaker just isolated.
    assert breaker.allow(now=11)
    assert breaker.state is BreakerState.HALF_OPEN
    assert not breaker.allow(now=11)
    assert not breaker.allow(now=12)
    with pytest.raises(CircuitOpenError, match="probe already in flight"):
        breaker.call(lambda: "x", now=12)
    # The probe reports back; success frees the slot (and here closes).
    breaker.record_success(now=13)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow(now=14)


def test_half_open_probe_slot_under_concurrent_callers():
    """A thundering herd at the cooldown boundary gets one probe total."""
    import threading

    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10)
    breaker.record_failure(now=0)
    admitted = []
    admitted_lock = threading.Lock()
    barrier = threading.Barrier(16)

    def caller():
        barrier.wait()
        if breaker.allow(now=11):
            with admitted_lock:
                admitted.append(threading.current_thread().name)

    herd = [threading.Thread(target=caller, name=f"c{i}") for i in range(16)]
    for thread in herd:
        thread.start()
    for thread in herd:
        thread.join()
    assert len(admitted) == 1
    assert breaker.state is BreakerState.HALF_OPEN
    # A failed probe re-opens and re-arms the cooldown; the next herd
    # after the new cooldown again admits exactly one.
    breaker.record_failure(now=12)
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow(now=13)
    assert breaker.allow(now=23)
    assert not breaker.allow(now=23)
