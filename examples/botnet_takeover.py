#!/usr/bin/env python3
"""Botnet takeover forensics on gpclick.com (§6.4, Figures 12/14/15).

Registers the study's 19 domains behind the NXD-Honeypot, collects six
months of traffic, and then digs into the gpclick.com stream: the
fixed Apache-HttpClient User-Agent, the getTask.php URI structure
leaking victim IMEIs/phones/models, the country-code spread of the
victims, and the cloud-proxy infrastructure the requests route through.

Usage::

    python examples/botnet_takeover.py [seed]
"""

import sys

from repro.core import reports
from repro.core.security import botnet_victim_analysis, run_security_experiment
from repro.rand import make_rng


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    print("deploying honeypot and collecting six months of traffic...")
    result = run_security_experiment(make_rng(seed), scale=0.004)

    analysis = botnet_victim_analysis(result)
    print(f"\ngpclick.com getTask.php requests : {analysis.request_count:,}")
    print(f"distinct victim phone numbers    : {analysis.distinct_phones:,}")
    print(f"user agents observed             : {list(analysis.user_agents)}")

    example = next(
        item.request
        for item in result.categorized
        if item.request.host == "gpclick.com" and item.request.path == "/getTask.php"
    )
    print("\nFigure 12 — one captured request (anonymized by generation):")
    print(f"  {example.method} {example.uri}")
    print(f"  User-Agent: {example.user_agent}")
    print(f"  Source: {example.src_ip} "
          f"({result.reverse_ip.lookup(example.src_ip) or 'no PTR'})")

    print("\nVictim phone models:")
    for model, count in sorted(
        analysis.model_histogram.items(), key=lambda kv: kv[1], reverse=True
    )[:6]:
        print(f"  {model:<24} {count:,}")

    print()
    print(reports.render_figure14(analysis.country_histogram))
    print()
    print(reports.render_figure15(analysis.hostname_histogram))

    checks = analysis.shape_checks()
    print(f"\nshape checks: {checks}")
    return 0 if all(checks.values()) else 1


if __name__ == "__main__":
    raise SystemExit(main())
