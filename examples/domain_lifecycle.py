#!/usr/bin/env python3
"""A domain's life, observed through live DNS resolution.

Wires the WHOIS registry to the DNS hierarchy and a sensor-tapped
resolver, then walks ``residual-traffic.com`` through the full ICANN
pipeline — registration, missed renewal notices, auto-renew grace,
redemption grace period, pending delete, release, and drop-catch
re-registration — resolving the domain at each stage to show exactly
when its queries start producing NXDOMAIN responses on the passive DNS
channel, and how negative caching hides repeat queries.

Usage::

    python examples/domain_lifecycle.py
"""

from repro.clock import SECONDS_PER_DAY
from repro.dns.hierarchy import DnsHierarchy
from repro.dns.name import DomainName
from repro.dns.tld import TldRegistry
from repro.passivedns.channel import SieChannel
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.sensor import Sensor, SensorTappedResolver
from repro.whois.registrar import DropCatchService
from repro.whois.registry import Registry

YEAR = 365 * SECONDS_PER_DAY
DAY = SECONDS_PER_DAY


def resolve_and_report(resolver, name, now, stage):
    result = resolver.resolve(name, now=now)
    origin = "cache" if result.from_cache else "authoritative walk"
    print(
        f"  [{stage:<28}] {name} -> {result.rcode.name:<8} via {origin} "
        f"({len(result.trace)} hops)"
    )
    return result


def main() -> int:
    hierarchy = DnsHierarchy.build(TldRegistry.default())
    dropcatch = DropCatchService()
    registry = Registry(hierarchy=hierarchy, dropcatch=dropcatch)

    channel = SieChannel()
    db = PassiveDnsDatabase()
    channel.subscribe(db.ingest)
    resolver = SensorTappedResolver(
        hierarchy.make_recursive_resolver(), Sensor("example-tap", channel)
    )

    domain = DomainName("residual-traffic.com")
    www = DomainName("www.residual-traffic.com")

    print("1) registration")
    registry.register(domain, owner="h-owner", at=0, address="203.0.113.80")
    resolve_and_report(resolver, www, now=0, stage="registered")

    print("\n2) the owner ignores the renewal notices")
    registry.tick(YEAR + 5 * DAY)
    lifecycle = registry.lifecycle_of(domain)
    print(f"  status: {lifecycle.status.value}, notices sent: {lifecycle.notices_sent}")
    resolve_and_report(resolver, www, now=YEAR + 5 * DAY, stage="auto-renew grace")

    print("\n3) the redemption grace period pulls the delegation")
    grace_end = registry.policy.grace_end(YEAR)
    registry.tick(grace_end + DAY)
    print(f"  status: {registry.status_of(domain).value}")
    resolve_and_report(resolver, www, now=grace_end + DAY, stage="redemption (now NX)")
    # Repeat queries are absorbed by the negative cache — invisible to
    # the sensor, exactly why passive DNS sits above resolver caches.
    resolve_and_report(
        resolver, www, now=grace_end + DAY + 60, stage="repeat query (neg cache)"
    )

    print("\n4) a speculator reserves the name at the drop-catcher")
    dropcatch.reserve(domain, customer="speculator-42", at=grace_end + 2 * DAY)
    release_at = registry.policy.delete_at(YEAR)
    registry.tick(release_at + DAY)
    lifecycle = registry.lifecycle_of(domain)
    print(
        f"  released and immediately re-registered by: {lifecycle.owner} "
        f"(drop-catch wins: {dropcatch.catches})"
    )
    resolve_and_report(
        resolver, www, now=release_at + 5 * DAY, stage="re-registered"
    )

    print("\n5) what the passive DNS channel saw")
    print(f"  NXDomain observations recorded: {db.total_responses()}")
    profile = db.profile(domain)
    if profile is not None:
        print(
            f"  {profile.domain}: first NX seen at day "
            f"{profile.first_seen // DAY}, {profile.total_queries} queries"
        )
    print("\nWHOIS history snapshots:")
    for record in registry.history.history(domain):
        print(f"  day {record.captured_at // DAY:>4}: {record.status}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
