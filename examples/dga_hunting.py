#!/usr/bin/env python3
"""DGA hunting: generate family streams, train the detector, evaluate.

Walks the §5.2 pipeline standalone: generate candidate domains from all
thirteen implemented DGA families, train the FANCI-style detector on
disjoint days, report per-family recall (dictionary families are the
known hard cases), and sweep the decision threshold to show the
precision/recall trade-off behind the paper's 3% operating point.

Usage::

    python examples/dga_hunting.py [seed]
"""

import sys

from repro.core.reports import render_table
from repro.dga.corpus import benign_domains
from repro.dga.detector import DgaDetector
from repro.dga.families import ALL_FAMILIES
from repro.rand import make_rng


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    print("training detector on generated samples from 13 families...")
    detector = DgaDetector.train_default(seed=seed, samples_per_family=300)

    print("\ntop feature weights:")
    for name, weight in detector.feature_importances()[:6]:
        print(f"  {name:<20} {weight:.2f}")

    # Per-family recall on held-out days the training never saw.
    rows = []
    for family_cls in ALL_FAMILIES:
        family = family_cls(seed=seed + 1000)
        holdout = [
            sample.domain
            for day in range(400, 404)
            for sample in family.domains_for_day(day)
        ]
        flags = detector.classify(holdout)
        recall = sum(flags) / len(flags)
        style = "dictionary" if family.name in ("suppobox", "matsnu") else "character"
        rows.append((family.name, style, len(holdout), f"{recall:.1%}"))
    print("\nper-family recall on held-out days:")
    print(render_table(["family", "style", "samples", "recall"], rows))

    # Threshold sweep against a benign holdout.
    benign = benign_domains(make_rng(seed + 2), 1_500)
    dga = [
        sample.domain
        for family_cls in ALL_FAMILIES
        for sample in family_cls(seed=seed + 1000).domains_for_day(500, count=40)
    ]
    print("\nthreshold sweep (the ablation behind the 3% operating point):")
    sweep_rows = []
    for threshold, metrics in detector.threshold_sweep(
        dga, benign, [0.1, 0.3, 0.5, 0.7, 0.9]
    ):
        sweep_rows.append(
            (
                threshold,
                f"{metrics.precision:.3f}",
                f"{metrics.recall:.3f}",
                f"{metrics.false_positive_rate:.3f}",
            )
        )
    print(render_table(["threshold", "precision", "recall", "fpr"], sweep_rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
