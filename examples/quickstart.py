#!/usr/bin/env python3
"""Quickstart: run the whole NXDomain study and print every figure.

This is the one-command reproduction: it generates the passive DNS
trace, runs the §4 scale analyses, the §5 origin analyses, the §6
honeypot experiment, and prints each of the paper's tables and figures
with its shape checks.

Usage::

    python examples/quickstart.py [seed] [domains]

A small population is used by default so the script finishes in well
under a minute; pass a larger domain count (e.g. 20000) for smoother
curves.
"""

import sys

from repro import NxdomainStudy, StudyConfig


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    domains = int(sys.argv[2]) if len(sys.argv) > 2 else 4_000
    config = StudyConfig(
        trace_domains=domains,
        squat_count=max(domains // 25, 50),
        honeypot_scale=0.003,
    )
    study = NxdomainStudy(seed=seed, config=config)
    print(study.full_report())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
