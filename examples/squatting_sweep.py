#!/usr/bin/env python3
"""Squatting sweep: enumerate and classify squatting candidates.

Shows the Figure 7 machinery standalone: for a handful of brands,
enumerate each attack type's variant space, then run the unified
detector over a mixed candidate stream (planted squats + clean names)
and print the resulting census with per-type precision.

Usage::

    python examples/squatting_sweep.py
"""

from repro.core.reports import render_table
from repro.dga.corpus import benign_domains
from repro.dns.name import DomainName
from repro.rand import make_rng
from repro.squatting import (
    PopularDomains,
    SquattingDetector,
    bitsquat_variants,
    combosquat_variants,
    dotsquat_variants,
    homosquat_variants,
    typosquat_variants,
)


def main() -> int:
    targets = PopularDomains.default()
    brands = [DomainName("google.com"), DomainName("paypal.com"), DomainName("mail.ru")]

    print("variant-space sizes per brand:")
    rows = []
    for brand in brands:
        rows.append(
            (
                str(brand),
                len(typosquat_variants(brand)),
                len(combosquat_variants(brand)),
                len(dotsquat_variants(brand)),
                len(bitsquat_variants(brand)),
                len(homosquat_variants(brand)),
            )
        )
    print(render_table(["brand", "typo", "combo", "dot", "bit", "homo"], rows))

    print("\nexample variants for paypal.com:")
    for label, variants in (
        ("typo", typosquat_variants(DomainName("paypal.com"))[:4]),
        ("combo", combosquat_variants(DomainName("paypal.com"))[:4]),
        ("dot", dotsquat_variants(DomainName("paypal.com"))[:3]),
        ("homo", homosquat_variants(DomainName("paypal.com"))[:3]),
    ):
        print(f"  {label:<6} {', '.join(str(v) for v in variants)}")

    # A mixed stream: planted squats plus clean background names.
    rng = make_rng(3)
    detector = SquattingDetector(targets)
    planted = (
        typosquat_variants(brands[0])[:40]
        + combosquat_variants(brands[1])[:30]
        + dotsquat_variants(brands[2])[:1]
        + bitsquat_variants(brands[0])[:3]
        + homosquat_variants(brands[1])[:2]
    )
    clean = benign_domains(rng, 300)
    stream = planted + clean

    census = detector.census(stream)
    clean_hits = sum(1 for d in clean if detector.is_squatting(d))
    print("\ncensus over mixed stream (76 planted squats, 300 clean names):")
    print(
        render_table(
            ["type", "detected"],
            [(t.value, n) for t, n in sorted(census.items(), key=lambda kv: -kv[1])],
        )
    )
    print(f"clean names flagged: {clean_hits} "
          f"({clean_hits / len(clean):.1%} false-positive rate)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
