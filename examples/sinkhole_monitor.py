#!/usr/bin/env python3
"""§7 future work, end to end: interactive honeypot + DNS-level sinkhole.

Two extensions the paper proposes, wired together:

1. an **interactive** NXD-Honeypot that answers visitors (empty JSON
   for pollers, an empty task list for bots, 404 for probes) and
   tracks per-visitor sessions, surfacing the periodic pollers that a
   passive recorder can only infer from headers;
2. a **sinkhole** that classifies NXDomain query streams at the DNS
   level — blocklist history, squatting, DGA — so high-risk NXDomains
   can be ranked for defensive registration without registering them.

Usage::

    python examples/sinkhole_monitor.py [seed]
"""

import sys

from repro.core.reports import render_table
from repro.core.sinkhole import NxdomainSinkhole
from repro.dga.detector import DgaDetector
from repro.honeypot.interactive import InteractiveHoneypot
from repro.rand import make_rng
from repro.workloads.domains import registered_domain_profiles
from repro.workloads.honeytraffic import HoneypotTrafficGenerator
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig


def run_interactive_honeypot(seed: int) -> None:
    print("== interactive honeypot: answering six months of visitors ==")
    generator = HoneypotTrafficGenerator(make_rng(seed), scale=0.002)
    honeypot = InteractiveHoneypot(
        [profile.domain for profile in registered_domain_profiles()]
    )
    for request in generator.generate(include_noise=False):
        honeypot.interact(request)

    summary = honeypot.session_summary()
    print(f"visitors: {summary['visitors']:,}  "
          f"returning: {summary['returning']:,}  "
          f"periodic pollers: {summary['periodic']:,}  "
          f"single-shot: {summary['single-shot']:,}")
    print(f"responses by status: {honeypot.responses_by_status}")
    print("\nbusiest visitors (periodic pollers float to the top):")
    rows = []
    for src_ip, count in honeypot.top_visitors(5):
        session = honeypot.session_of(src_ip)
        rows.append(
            (
                src_ip,
                count,
                len(session.distinct_uris),
                "periodic" if session.is_periodic else "irregular",
            )
        )
    print(render_table(["source", "requests", "uris", "pattern"], rows))


def run_sinkhole(seed: int) -> None:
    print("\n== DNS-level sinkhole over the passive DNS trace ==")
    trace = NxdomainTraceGenerator(
        seed=seed, config=TraceConfig(total_domains=3_000, squat_count=120)
    ).generate()
    detector = DgaDetector.train_default(
        seed=seed, samples_per_family=150, threshold=0.9
    )
    sinkhole = NxdomainSinkhole(detector, blocklist=trace.blocklist)
    for record in trace.population:
        profile = trace.nx_db.profile(record.domain)
        if profile is not None:
            sinkhole.observe(record.domain, profile.first_seen, profile.total_queries)

    report = sinkhole.report(top_n=8)
    print(
        render_table(
            ["verdict", "domains", "queries"],
            [
                (
                    verdict.value,
                    report.domains_by_verdict[verdict],
                    f"{report.queries_by_verdict[verdict]:,}",
                )
                for verdict in report.domains_by_verdict
            ],
        )
    )
    print("\ntop candidates for defensive registration:")
    print(
        render_table(
            ["domain", "verdict", "detail", "queries"],
            [
                (str(r.domain), r.verdict.value, r.detail, f"{r.queries:,}")
                for r in report.top_suspicious
            ],
        )
    )


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    run_interactive_honeypot(seed)
    run_sinkhole(seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
