"""Domain squatting: generators and detectors for five attack types.

The paper's Figure 7 splits 90,604 squatting NXDomains into
typosquatting (45,175), combosquatting (38,900), dotsquatting (6,090),
bitsquatting (313), and homosquatting (126).  This package implements
both directions for each type:

- *generators* produce squatting candidates for a target domain, used
  by the workload layer to seed the malicious NXDomain population with
  realistic proportions (typo >> combo >> dot >> bit >> homo, because
  the underlying mutation spaces have exactly that size ordering);
- the *detector* classifies an arbitrary domain against a target list,
  standing in for the commercial identification algorithm in §5.2.
"""

from repro.squatting.bit import bitsquat_variants, is_bitsquat
from repro.squatting.combo import combosquat_variants, is_combosquat
from repro.squatting.detector import SquattingDetector, SquattingType
from repro.squatting.dot import dotsquat_variants, is_dotsquat
from repro.squatting.homo import homosquat_variants, is_homosquat
from repro.squatting.targets import PopularDomains
from repro.squatting.typo import typosquat_variants, is_typosquat

__all__ = [
    "PopularDomains",
    "SquattingDetector",
    "SquattingType",
    "bitsquat_variants",
    "combosquat_variants",
    "dotsquat_variants",
    "homosquat_variants",
    "is_bitsquat",
    "is_combosquat",
    "is_dotsquat",
    "is_homosquat",
    "is_typosquat",
    "typosquat_variants",
]
