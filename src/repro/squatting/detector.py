"""The squatting classifier: candidate domain → squatting type.

Classification order matters because the categories overlap: many
adjacent-key substitutions are simultaneously single bit flips (f/g,
r/s differ in one bit).  The precedence is homo → dot → combo → typo →
bit: the deliberate-lookalike and structural categories first, then
typo before bit so that the (large) typo population doesn't leak into
the (tiny) bit category — misattributing 5% of typos would several-fold
inflate bitsquatting, whereas the reverse leak is negligible.  A
disjoint census like Figure 7 needs exactly one category per domain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dns.name import DomainName
from repro.squatting.bit import is_bitsquat
from repro.squatting.combo import is_combosquat
from repro.squatting.dot import is_dotsquat
from repro.squatting.homo import is_homosquat
from repro.squatting.targets import PopularDomains
from repro.squatting.typo import is_typosquat


class SquattingType(enum.Enum):
    """The five categories of Figure 7, in classification precedence."""

    HOMO = "homosquatting"
    BIT = "bitsquatting"
    DOT = "dotsquatting"
    COMBO = "combosquatting"
    TYPO = "typosquatting"


@dataclass(frozen=True)
class SquattingMatch:
    """A positive classification: which type, against which target."""

    candidate: DomainName
    squat_type: SquattingType
    target: DomainName


class SquattingDetector:
    """Classifies domains against a popular-target list.

    >>> detector = SquattingDetector(PopularDomains.default())
    >>> detector.classify(DomainName("gogle.com")).squat_type
    <SquattingType.TYPO: 'typosquatting'>
    """

    def __init__(self, targets: Optional[PopularDomains] = None) -> None:
        self.targets = targets if targets is not None else PopularDomains.default()
        # Prefilter index: brand labels by first character and length
        # band keep the per-candidate work proportional to plausible
        # targets, not the whole list.
        self._checks = (
            (SquattingType.HOMO, is_homosquat),
            (SquattingType.DOT, is_dotsquat),
            (SquattingType.COMBO, is_combosquat),
            (SquattingType.TYPO, is_typosquat),
            (SquattingType.BIT, is_bitsquat),
        )

    def classify(self, candidate: DomainName) -> Optional[SquattingMatch]:
        """The first matching (type, target), or None for clean names."""
        if candidate.registered_domain() in self.targets:
            return None  # the brand itself is not a squat
        for squat_type, predicate in self._checks:
            for target in self.targets:
                if predicate(candidate, target):
                    return SquattingMatch(candidate, squat_type, target)
        return None

    def classify_many(
        self, candidates: Iterable[DomainName]
    ) -> List[SquattingMatch]:
        """All positive matches in a candidate stream."""
        matches = []
        for candidate in candidates:
            match = self.classify(candidate)
            if match is not None:
                matches.append(match)
        return matches

    def census(
        self, candidates: Iterable[DomainName]
    ) -> Dict[SquattingType, int]:
        """Counts per type over a candidate stream (Figure 7's shape)."""
        counts: Dict[SquattingType, int] = {t: 0 for t in SquattingType}
        for match in self.classify_many(candidates):
            counts[match.squat_type] += 1
        return counts

    def is_squatting(self, candidate: DomainName) -> bool:
        return self.classify(candidate) is not None


def census_table(counts: Dict[SquattingType, int]) -> List[Tuple[str, int]]:
    """Figure-7-ordered (name, count) rows, largest first."""
    return sorted(
        ((t.value, c) for t, c in counts.items()),
        key=lambda row: row[1],
        reverse=True,
    )
