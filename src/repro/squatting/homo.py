"""Homosquatting: visually confusable substitutions.

IDN homograph attacks substitute lookalike characters.  Within the
LDH (ASCII) name space of this study the confusable pairs are the
classic digit/letter and multi-character swaps: ``0↔o``, ``1↔l``,
``rn→m``, ``vv→w``, ``cl→d``.  The space is minuscule — hence the
paper's 126 homosquatting domains, the smallest category in Figure 7.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.dns.name import DomainName
from repro.errors import DomainNameError

#: Single-character confusables, applied in both directions.
CHAR_CONFUSABLES: Tuple[Tuple[str, str], ...] = (
    ("0", "o"),
    ("1", "l"),
    ("1", "i"),
    ("5", "s"),
    ("g", "q"),
)

#: Multi-character confusables, applied in the written direction only
#: (the attacker substitutes the lookalike *for* the original).
SEQUENCE_CONFUSABLES: Tuple[Tuple[str, str], ...] = (
    ("m", "rn"),
    ("w", "vv"),
    ("d", "cl"),
)


def _substitutions(label: str) -> Set[str]:
    variants: Set[str] = set()
    for a, b in CHAR_CONFUSABLES:
        for original, replacement in ((a, b), (b, a)):
            start = 0
            while True:
                index = label.find(original, start)
                if index == -1:
                    break
                variants.add(label[:index] + replacement + label[index + 1 :])
                start = index + 1
    for original, replacement in SEQUENCE_CONFUSABLES:
        start = 0
        while True:
            index = label.find(original, start)
            if index == -1:
                break
            variants.add(
                label[:index] + replacement + label[index + len(original) :]
            )
            start = index + 1
        # And the reverse: collapsing the lookalike back to the original
        # also yields a confusable pair ("rnail" vs "mail").
        start = 0
        while True:
            index = label.find(replacement, start)
            if index == -1:
                break
            variants.add(
                label[:index] + original + label[index + len(replacement) :]
            )
            start = index + 1
    variants.discard(label)
    return variants


def homosquat_variants(target: DomainName) -> List[DomainName]:
    """All single-substitution confusable domains (same TLD)."""
    target = target.registered_domain()
    results = []
    for label in sorted(_substitutions(target.sld)):
        try:
            results.append(DomainName(f"{label}.{target.tld}"))
        except DomainNameError:
            continue
    return results


def is_homosquat(candidate: DomainName, target: DomainName) -> bool:
    """True when one confusable substitution maps candidate ↔ target."""
    candidate = candidate.registered_domain()
    target = target.registered_domain()
    if candidate.tld != target.tld or candidate == target:
        return False
    return candidate.sld in _substitutions(target.sld)
