"""Combosquatting: brand + keyword combinations.

Kintis et al. (CCS '17) showed combosquatting (``paypal-login.com``)
outnumbers typosquatting in the wild because the keyword space is
unbounded.  Generation combines the brand with a curated keyword list
in four syntactic shapes; detection tokenizes the candidate label and
looks for an exact brand token plus at least one extra token.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.dns.name import DomainName

#: Keywords observed in combosquatting campaigns (login/security bait,
#: commerce bait, and support-scam bait).
COMBO_KEYWORDS: Tuple[str, ...] = (
    "login", "signin", "account", "verify", "secure", "security", "update",
    "support", "help", "service", "services", "online", "official", "team",
    "mail", "web", "portal", "pay", "payment", "billing", "wallet", "bonus",
    "promo", "sale", "shop", "store", "deals", "free", "gift", "prize",
    "app", "apps", "mobile", "download", "install", "plugin", "center",
    "alert", "recovery", "unlock", "confirm", "auth", "id", "sup0rt",
)


def combosquat_variants(
    target: DomainName, keywords: Optional[Tuple[str, ...]] = None
) -> List[DomainName]:
    """Brand+keyword combinations for ``target`` (same TLD).

    Four shapes per keyword: ``brand-kw``, ``kw-brand``, ``brandkw``,
    ``kwbrand``.
    """
    target = target.registered_domain()
    brand = target.sld
    pool = keywords if keywords is not None else COMBO_KEYWORDS
    variants = []
    for keyword in pool:
        for label in (
            f"{brand}-{keyword}",
            f"{keyword}-{brand}",
            f"{brand}{keyword}",
            f"{keyword}{brand}",
        ):
            variants.append(DomainName(f"{label}.{target.tld}"))
    return variants


def is_combosquat(
    candidate: DomainName,
    target: DomainName,
    keywords: Optional[Tuple[str, ...]] = None,
) -> bool:
    """True when the candidate embeds the exact brand plus more.

    The brand must appear as a clean token: at a hyphen boundary or as
    a prefix/suffix of the label, with the remainder being a known
    keyword or any non-empty hyphen-delimited token.  TLD may differ —
    combosquatters frequently move TLDs (``paypal-login.net``).
    """
    candidate = candidate.registered_domain()
    target = target.registered_domain()
    brand = target.sld
    label = candidate.sld
    if label == brand:
        return False
    if brand not in label:
        return False
    tokens = [t for t in re.split(r"-", label) if t]
    if brand in tokens and len(tokens) > 1:
        return True
    pool = keywords if keywords is not None else COMBO_KEYWORDS
    if label.startswith(brand):
        remainder = label[len(brand) :].strip("-")
        return remainder in pool
    if label.endswith(brand):
        remainder = label[: -len(brand)].strip("-")
        return remainder in pool
    return False
