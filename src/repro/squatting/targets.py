"""Popular target domains for squatting analysis.

Squatting attacks target high-traffic brands; the detector needs the
target list as input (the paper's commercial classifier embeds one).
This synthetic top list mixes global platforms with the regional
services that show up in the paper's honeypot table (Russian search
and hosting properties, mail providers, CDNs).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.dns.name import DomainName

#: (label, tld) pairs, roughly by global popularity.
_TOP_SITES: Tuple[Tuple[str, str], ...] = (
    ("google", "com"),
    ("youtube", "com"),
    ("facebook", "com"),
    ("twitter", "com"),
    ("instagram", "com"),
    ("wikipedia", "org"),
    ("yahoo", "com"),
    ("amazon", "com"),
    ("whatsapp", "com"),
    ("netflix", "com"),
    ("live", "com"),
    ("office", "com"),
    ("linkedin", "com"),
    ("reddit", "com"),
    ("vk", "com"),
    ("mail", "ru"),
    ("yandex", "ru"),
    ("baidu", "com"),
    ("qq", "com"),
    ("taobao", "com"),
    ("ebay", "com"),
    ("paypal", "com"),
    ("apple", "com"),
    ("microsoft", "com"),
    ("github", "com"),
    ("akamai", "com"),
    ("cloudflare", "com"),
    ("dropbox", "com"),
    ("spotify", "com"),
    ("telegram", "org"),
    ("tiktok", "com"),
    ("zoom", "us"),
    ("wordpress", "com"),
    ("adobe", "com"),
    ("bing", "com"),
    ("twitch", "tv"),
    ("steam", "com"),
    ("booking", "com"),
    ("aliexpress", "com"),
    ("wechat", "com"),
)


class PopularDomains:
    """The target list a squatting detector defends.

    >>> targets = PopularDomains.default()
    >>> DomainName("google.com") in targets
    True
    """

    def __init__(self, domains: List[DomainName]) -> None:
        self._domains = list(domains)
        self._set = set(domains)
        self._labels = {d.sld: d for d in domains}

    @classmethod
    def default(cls) -> "PopularDomains":
        return cls([DomainName(f"{label}.{tld}") for label, tld in _TOP_SITES])

    def __contains__(self, domain: DomainName) -> bool:
        return domain.registered_domain() in self._set

    def __iter__(self) -> Iterator[DomainName]:
        return iter(self._domains)

    def __len__(self) -> int:
        return len(self._domains)

    def labels(self) -> List[str]:
        """The brand labels (SLDs) of all targets."""
        return [d.sld for d in self._domains]

    def by_label(self, label: str) -> DomainName:
        """The target domain carrying ``label`` (KeyError when absent)."""
        return self._labels[label]

    def has_label(self, label: str) -> bool:
        return label in self._labels
