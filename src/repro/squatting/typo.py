"""Typosquatting: registration of single-keystroke-error variants.

Implements the five classic typo models of Wang et al.'s Strider
Typo-Patrol and Agten et al. (NDSS '15):

1. character omission        (``gogle.com``)
2. adjacent-key substitution (``googke.com``)
3. character transposition   (``googel.com``)
4. character duplication     (``gooogle.com``)
5. adjacent-key insertion    (``googlke.com``)

Generation enumerates the full variant space for a target; detection
answers whether a candidate lies within it.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.dns.name import DomainName
from repro.errors import DomainNameError

#: QWERTY adjacency, lowercase letters and digits.
QWERTY_ADJACENT: Dict[str, str] = {
    "q": "wa1", "w": "qase2", "e": "wsdr3", "r": "edft4", "t": "rfgy5",
    "y": "tghu6", "u": "yhji7", "i": "ujko8", "o": "iklp9", "p": "ol0",
    "a": "qwsz", "s": "awedxz", "d": "serfcx", "f": "drtgvc", "g": "ftyhbv",
    "h": "gyujnb", "j": "huikmn", "k": "jiolm", "l": "kop",
    "z": "asx", "x": "zsdc", "c": "xdfv", "v": "cfgb", "b": "vghn",
    "n": "bhjm", "m": "njk",
    "1": "2q", "2": "13w", "3": "24e", "4": "35r", "5": "46t",
    "6": "57y", "7": "68u", "8": "79i", "9": "80o", "0": "9p",
}


def _variant_labels(label: str) -> Set[str]:
    variants: Set[str] = set()
    # 1. omission
    for i in range(len(label)):
        variants.add(label[:i] + label[i + 1 :])
    # 2. adjacent-key substitution
    for i, char in enumerate(label):
        for neighbour in QWERTY_ADJACENT.get(char, ""):
            variants.add(label[:i] + neighbour + label[i + 1 :])
    # 3. transposition
    for i in range(len(label) - 1):
        if label[i] != label[i + 1]:
            variants.add(
                label[:i] + label[i + 1] + label[i] + label[i + 2 :]
            )
    # 4. duplication
    for i, char in enumerate(label):
        variants.add(label[: i + 1] + char + label[i + 1 :])
    # 5. adjacent-key insertion (before and after each character)
    for i, char in enumerate(label):
        for neighbour in QWERTY_ADJACENT.get(char, ""):
            variants.add(label[:i] + neighbour + label[i:])
            variants.add(label[: i + 1] + neighbour + label[i + 1 :])
    variants.discard(label)
    return {v for v in variants if v}


def typosquat_variants(target: DomainName) -> List[DomainName]:
    """All single-keystroke typo domains for ``target`` (same TLD)."""
    target = target.registered_domain()
    results = []
    for label in sorted(_variant_labels(target.sld)):
        try:
            results.append(DomainName(f"{label}.{target.tld}"))
        except DomainNameError:
            continue  # e.g. hyphen moved to an edge
    return results


#: TLD typo targets: (intended TLD, mistyped TLDs actually registered
#: against it in the wild — omissions and adjacent keys).
TLD_TYPOS: Dict[str, Tuple[str, ...]] = {
    "com": ("co", "om", "cm", "con", "vom", "xom", "comm"),
    "net": ("ne", "et", "nte", "met", "bet"),
    "org": ("og", "orh", "orf", "ogr"),
    "ru": ("r", "eu"),
    "de": ("d", "se"),
}


def tld_swap_variants(target: DomainName) -> List[DomainName]:
    """Wrong-TLD typos: the brand label under a mistyped TLD.

    ``example.com`` → ``example.co``, ``example.cm``, ... — the typo
    class that country registries (.co, .cm, .om) famously monetize.
    Kept separate from :func:`typosquat_variants` (same-TLD label
    typos) so censuses calibrated on the paper's same-TLD counts are
    unaffected.
    """
    target = target.registered_domain()
    variants = []
    for tld in TLD_TYPOS.get(target.tld, ()):
        try:
            variants.append(DomainName(f"{target.sld}.{tld}"))
        except DomainNameError:  # pragma: no cover - all entries valid
            continue
    return variants


def is_tld_swap(candidate: DomainName, target: DomainName) -> bool:
    """True when the candidate is the target's label under a typo TLD."""
    candidate = candidate.registered_domain()
    target = target.registered_domain()
    if candidate.sld != target.sld or candidate == target:
        return False
    return candidate.tld in TLD_TYPOS.get(target.tld, ())


def is_typosquat(candidate: DomainName, target: DomainName) -> bool:
    """True when ``candidate`` is one keystroke error from ``target``.

    Compares second-level labels under the same TLD; the registered
    domain of the candidate is used, so subdomains classify too.
    """
    candidate = candidate.registered_domain()
    target = target.registered_domain()
    if candidate.tld != target.tld or candidate == target:
        return False
    return candidate.sld in _variant_labels(target.sld)
