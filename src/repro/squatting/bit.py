"""Bitsquatting: domains one memory bit-flip away from a target.

Nikiforakis et al. (WWW '13) showed that hardware bit errors in DNS
queries deliver real traffic to domains whose name differs from a
popular domain by exactly one flipped bit.  The variant space is tiny
(8 flips per character, most yielding invalid labels), matching the
paper's small bitsquatting count (313) relative to typo/combo.
"""

from __future__ import annotations

from typing import List, Set

from repro.dns.name import DomainName
from repro.errors import DomainNameError

_VALID_LABEL_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789-")


def _flip_variants(label: str) -> Set[str]:
    variants: Set[str] = set()
    for index, char in enumerate(label):
        code = ord(char)
        for bit in range(8):
            flipped = chr(code ^ (1 << bit))
            lowered = flipped.lower()
            if lowered == char or lowered not in _VALID_LABEL_CHARS:
                continue
            candidate = label[:index] + lowered + label[index + 1 :]
            if candidate.startswith("-") or candidate.endswith("-"):
                continue
            variants.add(candidate)
    variants.discard(label)
    return variants


def bitsquat_variants(target: DomainName) -> List[DomainName]:
    """All valid single-bit-flip domains for ``target`` (same TLD)."""
    target = target.registered_domain()
    results = []
    for label in sorted(_flip_variants(target.sld)):
        try:
            results.append(DomainName(f"{label}.{target.tld}"))
        except DomainNameError:
            continue
    return results


def is_bitsquat(candidate: DomainName, target: DomainName) -> bool:
    """True when the candidate's SLD is one bit-flip from the target's.

    Requires equal length, same TLD, and exactly one differing
    character whose codes differ in exactly one bit.
    """
    candidate = candidate.registered_domain()
    target = target.registered_domain()
    if candidate.tld != target.tld or candidate == target:
        return False
    a, b = candidate.sld, target.sld
    if len(a) != len(b):
        return False
    differing = [(x, y) for x, y in zip(a, b) if x != y]
    if len(differing) != 1:
        return False
    x, y = differing[0]
    xor = ord(x) ^ ord(y)
    # One bit flip, possibly observed after ASCII case folding (bit 5).
    return xor != 0 and (xor & (xor - 1)) == 0
