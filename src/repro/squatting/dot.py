"""Dotsquatting: dot manipulation around the brand name.

Two shapes (Wang et al., SRUTI '06):

1. *missing dot* — the ``www`` prefix fused onto the brand:
   ``wwwgoogle.com``;
2. *inserted dot* — a dot splitting the brand so that the attacker
   registers the *suffix* as its own domain and serves the prefix as a
   subdomain: ``goo.gle.com`` requires registering ``gle.com``.

Generation emits the registrable domains an attacker would buy (the
fused label for shape 1; the split-suffix domain for shape 2).
Detection checks a *query name* (which may have subdomain labels)
against both shapes.
"""

from __future__ import annotations

from typing import List

from repro.dns.name import DomainName
from repro.errors import DomainNameError


def dotsquat_variants(target: DomainName) -> List[DomainName]:
    """Registrable dotsquatting domains for ``target``."""
    target = target.registered_domain()
    brand = target.sld
    variants = [DomainName(f"www{brand}.{target.tld}")]
    # Split points leaving at least one character on each side; the
    # attacker registers "<suffix>.<tld>" and hosts "<prefix>" under it.
    for split in range(1, len(brand)):
        suffix = brand[split:]
        try:
            variant = DomainName(f"{suffix}.{target.tld}")
        except DomainNameError:
            continue
        if variant != target:
            variants.append(variant)
    # De-duplicate while preserving order.
    seen = set()
    unique = []
    for variant in variants:
        if variant not in seen:
            seen.add(variant)
            unique.append(variant)
    return unique


def is_dotsquat(candidate: DomainName, target: DomainName) -> bool:
    """True when the query name is a dot manipulation of ``target``.

    Checks the fused ``www<brand>`` form on the registered domain and
    the inserted-dot form on the full query name: collapsing all dots
    left of the TLD must reconstruct the brand.
    """
    target = target.registered_domain()
    if candidate.registered_domain() == target:
        return False
    if candidate.tld != target.tld:
        return False
    # Shape 1: fused www.
    if candidate.registered_domain().sld == f"www{target.sld}":
        return True
    # Shape 2: the non-TLD labels concatenate to the brand, using at
    # least two labels (otherwise it would equal the target).
    prefix_labels = candidate.labels[:-1]
    if len(prefix_labels) >= 2 and "".join(prefix_labels) == target.sld:
        return True
    return False
