"""The two-stage traffic noise filter (Figure 9).

Naive filtering (keep only requests with the right hostname) fails:
Let's Encrypt and establishment-time crawlers use correct hostnames.
The paper instead measures the noise *empirically* in two dedicated
deployments and subtracts it:

1. **No-hosting baseline** — cloud instances run with no domains for a
   period; every source IP seen there is a cloud scanner, excluded
   from the experiment traffic.
2. **Control group** — freshly registered, never-before-seen domains
   with the same landing page collect *only* establishment noise
   (certificate validators, new-domain crawlers); the (source IP,
   URI, hostname-pattern) parameters observed there are excluded too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from repro.honeypot.http import HttpRequest, PacketRecord
from repro.honeypot.recorder import TrafficRecorder
from repro.parallel import map_shards, shard_bounds


@dataclass
class FilterStats:
    """How much each stage removed."""

    input_requests: int = 0
    dropped_by_ip_baseline: int = 0
    dropped_by_control_group: int = 0
    kept: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_by_ip_baseline + self.dropped_by_control_group

    def drop_fraction(self) -> float:
        return self.dropped / self.input_requests if self.input_requests else 0.0


class TwoStageFilter:
    """Learns noise signatures from the two calibration deployments."""

    def __init__(self) -> None:
        self._scanner_ips: Set[str] = set()
        self._control_ips: Set[str] = set()
        self._control_uris: Set[str] = set()

    # -- calibration ------------------------------------------------------

    def learn_no_hosting_baseline(
        self, baseline: Iterable[PacketRecord]
    ) -> int:
        """Stage 1: every source IP in no-hosting traffic is a scanner."""
        before = len(self._scanner_ips)
        for packet in baseline:
            self._scanner_ips.add(packet.src_ip)
        return len(self._scanner_ips) - before

    def learn_control_group(self, control: Iterable[HttpRequest]) -> int:
        """Stage 2: establishment-noise parameters from control domains."""
        added = 0
        for request in control:
            if request.src_ip not in self._control_ips:
                self._control_ips.add(request.src_ip)
                added += 1
            self._control_uris.add(request.uri)
        return added

    @classmethod
    def calibrated(
        cls,
        no_hosting: TrafficRecorder,
        control_group: TrafficRecorder,
    ) -> "TwoStageFilter":
        """Build a filter from the two calibration recorders."""
        instance = cls()
        instance.learn_no_hosting_baseline(no_hosting.packets())
        instance.learn_control_group(control_group.requests())
        return instance

    # -- application ---------------------------------------------------------

    def is_scanner_noise(self, request: HttpRequest) -> bool:
        return request.src_ip in self._scanner_ips

    def is_establishment_noise(self, request: HttpRequest) -> bool:
        """Matches when the source IP *and* the URI were both seen on
        the control group — either alone also appears in genuine
        traffic (Let's Encrypt probes /.well-known on everyone)."""
        return (
            request.src_ip in self._control_ips
            or (
                request.uri in self._control_uris
                and request.uri.startswith("/.well-known")
            )
        )

    def filter_packets(
        self, packets: Iterable[PacketRecord]
    ) -> List[PacketRecord]:
        """Drop transport-level packets from learned noise sources.

        Used for the port-distribution view (Figure 10a): platform
        monitoring (port 52646) and scanner probes disappear because
        their source addresses were learned from the calibration
        deployments.
        """
        return [
            packet
            for packet in packets
            if packet.src_ip not in self._scanner_ips
            and packet.src_ip not in self._control_ips
        ]

    def apply(
        self, requests: Iterable[HttpRequest], jobs: int = 1
    ) -> Tuple[List[HttpRequest], FilterStats]:
        """Split traffic into (kept, stats) per Figure 9.

        ``jobs`` shards the request list over a thread pool: each
        shard classifies against the (frozen-after-calibration) noise
        signatures independently, then the kept lists concatenate and
        the stage counters sum in shard order — output-identical to
        the serial loop, since each request's verdict depends only on
        itself.
        """
        pending = list(requests)

        def filter_shard(
            bounds: Tuple[int, int]
        ) -> Tuple[List[HttpRequest], FilterStats]:
            lo, hi = bounds
            stats = FilterStats()
            kept: List[HttpRequest] = []
            for request in pending[lo:hi]:
                stats.input_requests += 1
                if self.is_scanner_noise(request):
                    stats.dropped_by_ip_baseline += 1
                elif self.is_establishment_noise(request):
                    stats.dropped_by_control_group += 1
                else:
                    kept.append(request)
            stats.kept = len(kept)
            return kept, stats

        stats = FilterStats()
        kept = []
        for shard_kept, shard_stats in map_shards(
            filter_shard, shard_bounds(len(pending), jobs), jobs
        ):
            kept.extend(shard_kept)
            stats.input_requests += shard_stats.input_requests
            stats.dropped_by_ip_baseline += shard_stats.dropped_by_ip_baseline
            stats.dropped_by_control_group += (
                shard_stats.dropped_by_control_group
            )
            stats.kept += shard_stats.kept
        return kept, stats

    @property
    def scanner_ip_count(self) -> int:
        return len(self._scanner_ips)

    @property
    def control_signature_count(self) -> int:
        return len(self._control_ips) + len(self._control_uris)
