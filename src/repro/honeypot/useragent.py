"""User-Agent parsing and classification.

The categorizer's step ② (Figure 11) reads three things out of the
User-Agent header: declared crawler identities, scripting tools, and
device/browser information — including the in-app browsers of
Figure 13 (WhatsApp, WeChat, Facebook, ...).  This module is a small
rule table, not a full UA parser: it covers exactly the populations the
workload generates and the paper reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class AgentKind(enum.Enum):
    """Coarse class of the requesting agent."""

    CRAWLER = "crawler"
    EMAIL_CRAWLER = "email-crawler"
    SCRIPT = "script"
    BROWSER = "browser"
    INAPP_BROWSER = "in-app-browser"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class UserAgentInfo:
    """Parsed User-Agent facts."""

    kind: AgentKind
    name: str = ""
    device: str = ""

    @property
    def is_automated(self) -> bool:
        return self.kind in (AgentKind.CRAWLER, AgentKind.EMAIL_CRAWLER, AgentKind.SCRIPT)


#: (token, crawler name) — declared web crawler services.
_CRAWLER_TOKENS: Tuple[Tuple[str, str], ...] = (
    ("googlebot", "Google"),
    ("bingbot", "Bing"),
    ("yandexbot", "Yandex"),
    ("mail.ru_bot", "Mail.Ru"),
    ("baiduspider", "Baidu"),
    ("duckduckbot", "DuckDuckGo"),
    ("slurp", "Yahoo"),
    ("ahrefsbot", "Ahrefs"),
    ("semrushbot", "Semrush"),
    ("mj12bot", "Majestic"),
    ("petalbot", "Petal"),
    ("applebot", "Apple"),
    ("crawler", "GenericCrawler"),
    ("spider", "GenericSpider"),
)

#: Email-provider content crawlers (the conf-cdn.com population).
_EMAIL_CRAWLER_TOKENS: Tuple[Tuple[str, str], ...] = (
    ("googleimageproxy", "GmailImageProxy"),
    ("ggpht.com", "GmailImageProxy"),
    ("yahoomailproxy", "YahooMailProxy"),
    ("outlookimageproxy", "OutlookImageProxy"),
    ("mail crawler", "GenericMailCrawler"),
)

#: Scripting tools and HTTP libraries.
_SCRIPT_TOKENS: Tuple[Tuple[str, str], ...] = (
    ("python-requests", "python-requests"),
    ("python-urllib", "python-urllib"),
    ("curl/", "curl"),
    ("wget/", "wget"),
    ("apache-httpclient", "Apache-HttpClient"),
    ("java/", "Java"),
    ("go-http-client", "Go-http-client"),
    ("okhttp", "okhttp"),
    ("libwww-perl", "libwww-perl"),
    ("aiohttp", "aiohttp"),
    ("scrapy", "Scrapy"),
    ("node-fetch", "node-fetch"),
    ("axios", "axios"),
    ("httpie", "HTTPie"),
)

#: In-app browser tokens (Figure 13 populations).
_INAPP_TOKENS: Tuple[Tuple[str, str], ...] = (
    ("whatsapp", "WhatsApp"),
    ("micromessenger", "WeChat"),
    ("fbav", "Facebook"),
    ("fb_iab", "Facebook"),
    ("twitterandroid", "Twitter"),
    ("twitter for", "Twitter"),
    ("instagram", "Instagram"),
    ("dingtalk", "DingTalk"),
    ("qq/", "QQ"),
    ("line/", "Line"),
    ("telegrambot", "Telegram"),
    ("snapchat", "Snapchat"),
)

_DEVICE_TOKENS: Tuple[Tuple[str, str], ...] = (
    ("windows nt", "Windows PC"),
    ("macintosh", "Mac"),
    ("android", "Android"),
    ("iphone", "iPhone"),
    ("ipad", "iPad"),
    ("linux", "Linux PC"),
)

_BROWSER_TOKENS: Tuple[Tuple[str, str], ...] = (
    ("edg/", "Edge"),
    ("opr/", "Opera"),
    ("chrome/", "Chrome"),
    ("firefox/", "Firefox"),
    ("safari/", "Safari"),
)


def parse_user_agent(user_agent: str) -> UserAgentInfo:
    """Classify one User-Agent string.

    Precedence: email crawlers and declared crawlers first (they often
    embed browser-like tokens), then in-app browsers (which embed the
    host browser's token), then scripting tools, then plain browsers.
    An empty or unmatched string is UNKNOWN — the categorizer routes
    those through the Requested-URL and Source-IP steps.
    """
    lowered = user_agent.lower()
    if not lowered.strip():
        return UserAgentInfo(AgentKind.UNKNOWN)
    for token, name in _EMAIL_CRAWLER_TOKENS:
        if token in lowered:
            return UserAgentInfo(AgentKind.EMAIL_CRAWLER, name)
    for token, name in _CRAWLER_TOKENS:
        if token in lowered:
            return UserAgentInfo(AgentKind.CRAWLER, name)
    device = _first_match(lowered, _DEVICE_TOKENS)
    for token, name in _INAPP_TOKENS:
        if token in lowered:
            return UserAgentInfo(AgentKind.INAPP_BROWSER, name, device)
    for token, name in _SCRIPT_TOKENS:
        if token in lowered:
            return UserAgentInfo(AgentKind.SCRIPT, name)
    browser = _first_match(lowered, _BROWSER_TOKENS)
    if browser and device:
        return UserAgentInfo(AgentKind.BROWSER, browser, device)
    if browser or lowered.startswith("mozilla/"):
        return UserAgentInfo(AgentKind.BROWSER, browser or "Mozilla", device)
    return UserAgentInfo(AgentKind.UNKNOWN)


def _first_match(lowered: str, table: Tuple[Tuple[str, str], ...]) -> str:
    for token, name in table:
        if token in lowered:
            return name
    return ""
