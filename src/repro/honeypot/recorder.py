"""All-port traffic recorder.

The first of NXD-Honeypot's two roles: accept TCP and UDP packets on
all well-known ports, remember everything (IPs, ports, payload sizes),
and keep the HTTP/HTTPS requests for the categorizer.  Figure 10's
port histograms are read straight off this recorder for the honeypot
and control-group deployments.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.honeypot.http import HttpRequest, PacketRecord


class TrafficRecorder:
    """Accumulates packets and HTTP requests for one deployment."""

    def __init__(self, deployment: str = "honeypot") -> None:
        self.deployment = deployment
        self._packets: List[PacketRecord] = []
        self._requests: List[HttpRequest] = []
        #: Called with a context string before each write; a fault
        #: harness can raise :class:`~repro.errors.TransientStoreError`
        #: here to model a full disk or a wedged capture process.
        self.fault_hook: Optional[Callable[[str], None]] = None

    # -- capture --------------------------------------------------------

    def record_packet(self, packet: PacketRecord) -> None:
        """Record one transport-level packet."""
        if self.fault_hook is not None:
            self.fault_hook("packet")
        self._packets.append(packet)

    def record_request(self, request: HttpRequest) -> None:
        """Record an HTTP request (and its transport-level shadow)."""
        if self.fault_hook is not None:
            self.fault_hook("request")
        self._requests.append(request)
        self._packets.append(request.to_packet())

    # -- views ------------------------------------------------------------

    @property
    def packet_count(self) -> int:
        return len(self._packets)

    @property
    def request_count(self) -> int:
        return len(self._requests)

    def packets(self) -> List[PacketRecord]:
        return list(self._packets)

    def requests(self) -> List[HttpRequest]:
        return list(self._requests)

    def requests_for_host(self, host: str) -> List[HttpRequest]:
        lowered = host.lower()
        return [r for r in self._requests if r.host.lower() == lowered]

    def port_histogram(self) -> Dict[int, int]:
        """Packets per destination port (Figure 10's axes)."""
        histogram: Dict[int, int] = {}
        for packet in self._packets:
            histogram[packet.dst_port] = histogram.get(packet.dst_port, 0) + 1
        return histogram

    def top_ports(self, n: int = 8) -> List[Tuple[int, int]]:
        """The ``n`` busiest ports as (port, packets), busiest first."""
        return sorted(
            self.port_histogram().items(), key=lambda kv: kv[1], reverse=True
        )[:n]

    def source_ips(self) -> Set[str]:
        """Every source IP observed (packets and requests)."""
        return {p.src_ip for p in self._packets}

    def http_share(self) -> float:
        """Fraction of packets on ports 80/443 (the paper's 81.7%)."""
        if not self._packets:
            return 0.0
        web = sum(1 for p in self._packets if p.dst_port in (80, 443))
        return web / len(self._packets)

    def window(self, start: int, end: int) -> "TrafficRecorder":
        """A recorder view restricted to [start, end)."""
        view = TrafficRecorder(self.deployment)
        view._packets = [p for p in self._packets if start <= p.timestamp < end]
        view._requests = [r for r in self._requests if start <= r.timestamp < end]
        return view
