"""All-port traffic recorder.

The first of NXD-Honeypot's two roles: accept TCP and UDP packets on
all well-known ports, remember everything (IPs, ports, payload sizes),
and keep the HTTP/HTTPS requests for the categorizer.  Figure 10's
port histograms are read straight off this recorder for the honeypot
and control-group deployments.

Query layout: traffic generators emit in timestamp order, so the
recorder tracks whether its streams are still sorted as they arrive
and serves :meth:`window` with two bisections instead of a full scan
(falling back to the scan the moment an out-of-order record lands).
:meth:`requests_for_host` reads a lazily built host index that every
appended request invalidates — the per-domain Table 1 reports issue
one such query per hosted domain over the same quiescent recorder.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.honeypot.http import HttpRequest, PacketRecord


class TrafficRecorder:
    """Accumulates packets and HTTP requests for one deployment."""

    def __init__(self, deployment: str = "honeypot") -> None:
        self.deployment = deployment
        self._packets: List[PacketRecord] = []
        self._requests: List[HttpRequest] = []
        # Timestamp shadows of the two streams, plus monotonicity
        # flags: kept in lockstep on append so ``window`` can bisect
        # when the stream arrived sorted (Python < 3.10 has no
        # ``bisect(key=)``, hence the parallel lists).
        self._packet_times: List[int] = []
        self._request_times: List[int] = []
        self._packets_sorted = True
        self._requests_sorted = True
        #: host (lowercased) → request positions, built on first
        #: :meth:`requests_for_host` and dropped on every append.
        self._host_index: Optional[Dict[str, List[int]]] = None
        #: Called with a context string before each write; a fault
        #: harness can raise :class:`~repro.errors.TransientStoreError`
        #: here to model a full disk or a wedged capture process.
        self.fault_hook: Optional[Callable[[str], None]] = None

    # -- capture --------------------------------------------------------

    def record_packet(self, packet: PacketRecord) -> None:
        """Record one transport-level packet."""
        if self.fault_hook is not None:
            self.fault_hook("packet")
        self._append_packet(packet)

    def record_request(self, request: HttpRequest) -> None:
        """Record an HTTP request (and its transport-level shadow)."""
        if self.fault_hook is not None:
            self.fault_hook("request")
        if self._requests and request.timestamp < self._request_times[-1]:
            self._requests_sorted = False
        self._requests.append(request)
        self._request_times.append(request.timestamp)
        self._host_index = None
        self._append_packet(request.to_packet())

    def _append_packet(self, packet: PacketRecord) -> None:
        if self._packets and packet.timestamp < self._packet_times[-1]:
            self._packets_sorted = False
        self._packets.append(packet)
        self._packet_times.append(packet.timestamp)

    # -- views ------------------------------------------------------------

    @property
    def packet_count(self) -> int:
        return len(self._packets)

    @property
    def request_count(self) -> int:
        return len(self._requests)

    def packets(self) -> List[PacketRecord]:
        return list(self._packets)

    def requests(self) -> List[HttpRequest]:
        return list(self._requests)

    def requests_for_host(self, host: str) -> List[HttpRequest]:
        if self._host_index is None:
            index: Dict[str, List[int]] = {}
            for position, request in enumerate(self._requests):
                index.setdefault(request.host.lower(), []).append(position)
            self._host_index = index
        positions = self._host_index.get(host.lower(), [])
        return [self._requests[position] for position in positions]

    def port_histogram(self) -> Dict[int, int]:
        """Packets per destination port (Figure 10's axes)."""
        histogram: Dict[int, int] = {}
        for packet in self._packets:
            histogram[packet.dst_port] = histogram.get(packet.dst_port, 0) + 1
        return histogram

    def top_ports(self, n: int = 8) -> List[Tuple[int, int]]:
        """The ``n`` busiest ports as (port, packets), busiest first."""
        return sorted(
            self.port_histogram().items(), key=lambda kv: kv[1], reverse=True
        )[:n]

    def source_ips(self) -> Set[str]:
        """Every source IP observed (packets and requests)."""
        return {p.src_ip for p in self._packets}

    def http_share(self) -> float:
        """Fraction of packets on ports 80/443 (the paper's 81.7%)."""
        if not self._packets:
            return 0.0
        web = sum(1 for p in self._packets if p.dst_port in (80, 443))
        return web / len(self._packets)

    def window(self, start: int, end: int) -> "TrafficRecorder":
        """A recorder view restricted to [start, end).

        On a time-ordered stream (how the generators emit) the cut is
        two bisections per list; out-of-order streams fall back to the
        full filtering scan with identical results.  Either way the
        view's slices are themselves sorted iff they arrived sorted,
        so nested windows keep bisecting.
        """
        view = TrafficRecorder(self.deployment)
        if self._packets_sorted:
            lo = bisect_left(self._packet_times, start)
            hi = bisect_left(self._packet_times, end)
            view._packets = self._packets[lo:hi]
            view._packet_times = self._packet_times[lo:hi]
        else:
            view._packets = [
                p for p in self._packets if start <= p.timestamp < end
            ]
            view._packet_times = [p.timestamp for p in view._packets]
            view._packets_sorted = _is_sorted(view._packet_times)
        if self._requests_sorted:
            lo = bisect_left(self._request_times, start)
            hi = bisect_left(self._request_times, end)
            view._requests = self._requests[lo:hi]
            view._request_times = self._request_times[lo:hi]
        else:
            view._requests = [
                r for r in self._requests if start <= r.timestamp < end
            ]
            view._request_times = [r.timestamp for r in view._requests]
            view._requests_sorted = _is_sorted(view._request_times)
        return view


def _is_sorted(values: List[int]) -> bool:
    return all(a <= b for a, b in zip(values, values[1:]))
