"""NXD-Honeypot: traffic capture, filtering, and categorization (§6).

The honeypot of the paper is a traffic recorder plus barebone web
server deployed on the hosting instances of the 19 registered domains.
This package reproduces its entire data path:

- :mod:`repro.honeypot.http` — the request/packet model;
- :mod:`repro.honeypot.recorder` — all-port traffic recording
  (Figure 10's port histograms);
- :mod:`repro.honeypot.filtering` — the two-stage noise filter
  (no-hosting baseline for cloud IP scanners, control group for
  domain-establishment traffic, Figure 9);
- :mod:`repro.honeypot.categorize` — the Figure 11 categorizer
  (Referer → User-Agent → Requested URL → Source IP) producing the
  Web Crawler / Automated Process / Referral / User Visit / Others
  split of Table 1;
- supporting oracles: :mod:`repro.honeypot.useragent` (UA parsing),
  :mod:`repro.honeypot.nvd` (sensitive-URI severity lookups),
  :mod:`repro.honeypot.reverse_ip` (PTR-based service attribution),
  and :mod:`repro.honeypot.webfilter` (referrer classification).
"""

from repro.honeypot.categorize import (
    Category,
    CategorizedRequest,
    Subcategory,
    TrafficCategorizer,
)
from repro.honeypot.filtering import FilterStats, TwoStageFilter
from repro.honeypot.http import HttpRequest, PacketRecord, Transport
from repro.honeypot.interactive import (
    HoneypotResponse,
    InteractiveHoneypot,
    VisitorSession,
)
from repro.honeypot.nvd import VulnerabilityDatabase, Severity
from repro.honeypot.recorder import TrafficRecorder
from repro.honeypot.reverse_ip import ReverseIpTable
from repro.honeypot.server import NxdHoneypot
from repro.honeypot.useragent import AgentKind, UserAgentInfo, parse_user_agent
from repro.honeypot.webfilter import ReferralKind, WebFilter

__all__ = [  # repro: noqa[REP104] session/response record types; exported for annotations
    "AgentKind",
    "CategorizedRequest",
    "Category",
    "FilterStats",
    "HoneypotResponse",
    "HttpRequest",
    "InteractiveHoneypot",
    "NxdHoneypot",
    "VisitorSession",
    "PacketRecord",
    "ReferralKind",
    "ReverseIpTable",
    "Severity",
    "Subcategory",
    "TrafficCategorizer",
    "TrafficRecorder",
    "Transport",
    "TwoStageFilter",
    "UserAgentInfo",
    "VulnerabilityDatabase",
    "WebFilter",
    "parse_user_agent",
]
