"""Referrer classification (FortiGuard Web Filter stand-in).

§6.3's referral analysis classifies the Referer URL three ways:

- **search engine** — the referring page is a known search property;
- **embedded URL/URI** — fetching the referring page finds a link to
  (or resource from) our domain: an organic referral;
- **malicious link** — the referring page is unreachable or does *not*
  reference our domain: the Referer was forged.

The "fetch the referring page" step is modelled by a registry of known
web pages with their outbound links, which the workload populates for
the referral traffic it generates; everything else is unreachable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

SEARCH_ENGINE_HOSTS: Tuple[str, ...] = (
    "google.com",
    "www.google.com",
    "bing.com",
    "www.bing.com",
    "search.yahoo.com",
    "yandex.ru",
    "duckduckgo.com",
    "baidu.com",
    "go.mail.ru",
)


class ReferralKind(enum.Enum):
    SEARCH_ENGINE = "search-engine"
    EMBEDDED = "embedded-url"
    MALICIOUS_LINK = "malicious-link"


@dataclass
class WebPage:
    """A fetchable page: its category and the domains it links to."""

    url: str
    category: str = "forums-blogs"
    linked_domains: Set[str] = field(default_factory=set)


class WebFilter:
    """Referrer classifier over a registry of known pages."""

    def __init__(self) -> None:
        self._pages: Dict[str, WebPage] = {}

    def register_page(self, page: WebPage) -> None:
        self._pages[_normalize(page.url)] = page

    def fetch(self, url: str) -> Optional[WebPage]:
        """Simulated cURL fetch of the referring page."""
        return self._pages.get(_normalize(url))

    def classify(self, referer_url: str, our_domain: str) -> ReferralKind:
        """Classify one Referer against the domain it referred to."""
        host = _host_of(referer_url)
        if host in SEARCH_ENGINE_HOSTS or any(
            host.endswith("." + s) for s in SEARCH_ENGINE_HOSTS
        ):
            return ReferralKind.SEARCH_ENGINE
        page = self.fetch(referer_url)
        if page is not None and our_domain.lower() in page.linked_domains:
            return ReferralKind.EMBEDDED
        return ReferralKind.MALICIOUS_LINK

    def page_category(self, referer_url: str) -> Optional[str]:
        page = self.fetch(referer_url)
        return page.category if page else None

    def __len__(self) -> int:
        return len(self._pages)


def _normalize(url: str) -> str:
    lowered = url.lower()
    for scheme in ("https://", "http://"):
        if lowered.startswith(scheme):
            lowered = lowered[len(scheme):]
            break
    return lowered.rstrip("/")


def _host_of(url: str) -> str:
    return _normalize(url).split("/", 1)[0]
