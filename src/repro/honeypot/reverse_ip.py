"""Reverse IP lookup table (PTR oracle).

§6.2 step ④: the source IP of a request is reverse-resolved; a PTR
hostname under a known service domain (googlebot.com, search.msn.com,
google-proxy hosts...) attests the request's origin.  The workload
registers PTR records for the infrastructure it simulates; unknown IPs
resolve to nothing, exactly like the long tail of cloud hosts.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: PTR suffix → service attribution.
KNOWN_SERVICE_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("googlebot.com", "Google crawler"),
    ("google.com", "Google"),
    ("googleusercontent.com", "google-proxy"),
    ("search.msn.com", "Bing crawler"),
    ("crawl.yahoo.net", "Yahoo crawler"),
    ("yandex.com", "Yandex crawler"),
    ("crawl.baidu.com", "Baidu crawler"),
    ("mail.ru", "Mail.Ru crawler"),
    ("amazonaws.com", "Amazon AWS"),
    ("ec2.internal", "Amazon AWS"),
    ("hetzner.de", "Hetzner"),
    ("digitalocean.com", "DigitalOcean"),
    ("ovh.net", "OVH"),
    ("comcast.net", "Residential ISP"),
    ("t-ipconnect.de", "Residential ISP"),
)

#: Services that attest a *benign crawler* origin.
CRAWLER_SERVICES = frozenset(
    {"Google crawler", "Bing crawler", "Yahoo crawler", "Yandex crawler",
     "Baidu crawler", "Mail.Ru crawler"}
)


class ReverseIpTable:
    """An IP → PTR hostname table with service attribution."""

    def __init__(self) -> None:
        self._ptr: Dict[str, str] = {}

    def register(self, ip: str, hostname: str) -> None:
        self._ptr[ip] = hostname.lower().rstrip(".")

    def lookup(self, ip: str) -> Optional[str]:
        """The PTR hostname, or None (no reverse record)."""
        return self._ptr.get(ip)

    def service_of(self, ip: str) -> Optional[str]:
        """Service attribution via PTR suffix matching."""
        hostname = self.lookup(ip)
        if hostname is None:
            return None
        for suffix, service in KNOWN_SERVICE_SUFFIXES:
            if hostname == suffix or hostname.endswith("." + suffix):
                return service
        return None

    def is_known_crawler(self, ip: str) -> bool:
        """True when the PTR attests a major search/mail crawler."""
        return self.service_of(ip) in CRAWLER_SERVICES

    def hostname_histogram(self, ips) -> Dict[str, int]:
        """Count IPs per PTR *suffix group* (Figure 15's axis).

        IPs with no PTR land in the "unresolved" bucket.
        """
        histogram: Dict[str, int] = {}
        for ip in ips:
            service = self.service_of(ip)
            if service is None:
                key = "unresolved" if self.lookup(ip) is None else "other-hosting"
            else:
                key = service
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def __len__(self) -> int:
        return len(self._ptr)
