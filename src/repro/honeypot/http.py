"""Request and packet models captured by the honeypot.

:class:`PacketRecord` is the transport-level view (every TCP/UDP packet
on every well-known port — Figure 10's raw material);
:class:`HttpRequest` is the application-level view the categorizer
consumes, carrying exactly the header fields of Figure 11: Referer,
User-Agent, the requested URL, and the source IP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple
from repro.errors import ConfigError

HTTP_PORT = 80
HTTPS_PORT = 443


class Transport(enum.Enum):
    TCP = "tcp"
    UDP = "udp"


@dataclass(frozen=True)
class PacketRecord:
    """One transport-level packet observation."""

    timestamp: int
    src_ip: str
    dst_port: int
    transport: Transport = Transport.TCP
    payload_size: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.dst_port <= 65535:
            raise ConfigError(f"invalid port {self.dst_port}")
        if self.payload_size < 0:
            raise ConfigError("payload_size must be non-negative")


@dataclass(frozen=True)
class HttpRequest:
    """One HTTP/HTTPS request received by a hosted domain.

    ``host`` is the Host header (which domain the client *meant*);
    ``path`` is the URI path; ``query`` the raw query string without
    the leading ``?``.
    """

    timestamp: int
    src_ip: str
    host: str
    path: str = "/"
    query: str = ""
    method: str = "GET"
    port: int = HTTP_PORT
    user_agent: str = ""
    referer: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise ConfigError(f"path must start with '/': {self.path!r}")
        if self.port not in (HTTP_PORT, HTTPS_PORT):
            raise ConfigError("HTTP requests arrive on port 80 or 443 only")

    # -- derived views ---------------------------------------------------

    @property
    def is_tls(self) -> bool:
        return self.port == HTTPS_PORT

    @property
    def uri(self) -> str:
        """Path plus query string, as logged."""
        return f"{self.path}?{self.query}" if self.query else self.path

    @property
    def has_query_string(self) -> bool:
        return bool(self.query)

    @property
    def filename(self) -> str:
        """The final path segment ('' for directory-style paths)."""
        return self.path.rsplit("/", 1)[-1]

    @property
    def extension(self) -> str:
        """Lowercased file extension without the dot, or ''."""
        name = self.filename
        if "." not in name:
            return ""
        return name.rsplit(".", 1)[-1].lower()

    def query_parameters(self) -> Dict[str, str]:
        """Parsed query-string parameters (last occurrence wins)."""
        params: Dict[str, str] = {}
        if not self.query:
            return params
        for pair in self.query.split("&"):
            if not pair:
                continue
            key, _, value = pair.partition("=")
            params[key] = value
        return params

    def to_packet(self) -> PacketRecord:
        """The transport-level shadow of this request."""
        return PacketRecord(
            timestamp=self.timestamp,
            src_ip=self.src_ip,
            dst_port=self.port,
            transport=Transport.TCP,
            payload_size=len(self.uri) + len(self.user_agent) + 64,
        )


#: Extensions the categorizer treats as HTML page requests (search
#: engine crawling) versus file grabbing.
PAGE_EXTENSIONS: Tuple[str, ...] = ("", "html", "htm", "php", "asp", "aspx", "jsp")
