"""The traffic categorizer of Figure 11 / Table 1.

Requests are classified by four header signals in order — ① Referer,
② User-Agent, ③ Requested URL, ④ Source IP — into the paper's four
major groups with nine subcategories:

==================  ======================================
Web Crawler         Search Engine / File Grabber
Automated Process   Script & Software / Malicious Request
Referral            Search Engine / Embedded URL / Malicious Link
User Visit          PC & Mobile / In-App Browser
Others              (everything unattributable)
==================  ======================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.honeypot.http import PAGE_EXTENSIONS, HttpRequest
from repro.honeypot.nvd import VulnerabilityDatabase
from repro.honeypot.reverse_ip import ReverseIpTable
from repro.honeypot.useragent import AgentKind, parse_user_agent
from repro.honeypot.webfilter import ReferralKind, WebFilter


class Category(enum.Enum):
    WEB_CRAWLER = "web-crawler"
    AUTOMATED = "automated-process"
    REFERRAL = "referral"
    USER_VISIT = "user-visit"
    OTHERS = "others"


class Subcategory(enum.Enum):
    # Web crawler
    SEARCH_ENGINE = "search-engine"
    FILE_GRABBER = "file-grabber"
    # Automated process
    SCRIPT_SOFTWARE = "script-software"
    MALICIOUS_REQUEST = "malicious-request"
    # Referral
    REFERRAL_SEARCH = "referral-search-engine"
    REFERRAL_EMBEDDED = "referral-embedded"
    REFERRAL_MALICIOUS = "referral-malicious-link"
    # User visit
    PC_MOBILE = "pc-mobile"
    INAPP = "in-app-browser"
    # Others
    OTHER = "other"


#: Table 1's column layout: category → its subcategories, in order.
TABLE1_COLUMNS = (
    (Category.WEB_CRAWLER, (Subcategory.SEARCH_ENGINE, Subcategory.FILE_GRABBER)),
    (
        Category.AUTOMATED,
        (Subcategory.SCRIPT_SOFTWARE, Subcategory.MALICIOUS_REQUEST),
    ),
    (
        Category.REFERRAL,
        (
            Subcategory.REFERRAL_SEARCH,
            Subcategory.REFERRAL_EMBEDDED,
            Subcategory.REFERRAL_MALICIOUS,
        ),
    ),
    (Category.USER_VISIT, (Subcategory.PC_MOBILE, Subcategory.INAPP)),
    (Category.OTHERS, (Subcategory.OTHER,)),
)


@dataclass(frozen=True)
class CategorizedRequest:
    """One request with its classification."""

    request: HttpRequest
    category: Category
    subcategory: Subcategory
    agent_name: str = ""


class TrafficCategorizer:
    """Implements the Figure 11 decision pipeline."""

    def __init__(
        self,
        nvd: Optional[VulnerabilityDatabase] = None,
        reverse_ip: Optional[ReverseIpTable] = None,
        web_filter: Optional[WebFilter] = None,
    ) -> None:
        self.nvd = nvd if nvd is not None else VulnerabilityDatabase()
        self.reverse_ip = reverse_ip if reverse_ip is not None else ReverseIpTable()
        self.web_filter = web_filter if web_filter is not None else WebFilter()

    def categorize(self, request: HttpRequest) -> CategorizedRequest:
        """Classify one request."""
        # ① Referer: a populated Referer means the visit was referred.
        if request.referer:
            kind = self.web_filter.classify(request.referer, request.host)
            subcategory = {
                ReferralKind.SEARCH_ENGINE: Subcategory.REFERRAL_SEARCH,
                ReferralKind.EMBEDDED: Subcategory.REFERRAL_EMBEDDED,
                ReferralKind.MALICIOUS_LINK: Subcategory.REFERRAL_MALICIOUS,
            }[kind]
            return CategorizedRequest(request, Category.REFERRAL, subcategory)

        # ② User-Agent.
        agent = parse_user_agent(request.user_agent)
        if agent.kind in (AgentKind.CRAWLER, AgentKind.EMAIL_CRAWLER):
            return CategorizedRequest(
                request, Category.WEB_CRAWLER, self._crawler_subtype(request),
                agent.name,
            )
        # ④ (pulled forward, as the paper does for crawler attestation):
        # an undeclared UA whose source PTR is a major crawler service.
        if agent.kind == AgentKind.UNKNOWN and self.reverse_ip.is_known_crawler(
            request.src_ip
        ):
            return CategorizedRequest(
                request,
                Category.WEB_CRAWLER,
                self._crawler_subtype(request),
                self.reverse_ip.service_of(request.src_ip) or "",
            )
        if agent.kind == AgentKind.INAPP_BROWSER:
            return CategorizedRequest(
                request, Category.USER_VISIT, Subcategory.INAPP, agent.name
            )
        if agent.kind == AgentKind.BROWSER:
            return CategorizedRequest(
                request, Category.USER_VISIT, Subcategory.PC_MOBILE, agent.name
            )
        if agent.kind == AgentKind.SCRIPT:
            return CategorizedRequest(
                request,
                Category.AUTOMATED,
                self._automated_subtype(request),
                agent.name,
            )

        # ③ Requested URL: no usable UA — decide on the URI alone.
        if self.nvd.is_sensitive(request.path) or self.nvd.has_suspicious_query(
            request.query_parameters()
        ):
            return CategorizedRequest(
                request, Category.AUTOMATED, Subcategory.MALICIOUS_REQUEST
            )
        if request.path != "/" or request.has_query_string:
            return CategorizedRequest(
                request, Category.AUTOMATED, Subcategory.SCRIPT_SOFTWARE
            )
        # Bare "/" with no UA and no referral: unattributable.
        return CategorizedRequest(request, Category.OTHERS, Subcategory.OTHER)

    def categorize_many(
        self,
        requests: Iterable[HttpRequest],
        stream_threshold: Optional[int] = 50,
    ) -> List[CategorizedRequest]:
        """Classify a batch, then apply stream reclassification.

        §6.3 observes that automated processes "have a repetitive
        pattern, i.e. the same URIs are frequently and periodically
        accessed ... issued as streams, meaning that the same URI is
        requested multiple times by the same IP address" — including
        fleets presenting browser User-Agents (the status.json pollers
        of 1x-sport-bk7.com).  Any (source IP, URI) pair appearing at
        least ``stream_threshold`` times is therefore reclassified
        from User Visit to Automated Process.  Pass None to disable.
        """
        categorized = [self.categorize(request) for request in requests]
        if stream_threshold is None:
            return categorized
        pair_counts: Dict[tuple, int] = {}
        for item in categorized:
            key = (item.request.src_ip, item.request.uri)
            pair_counts[key] = pair_counts.get(key, 0) + 1
        reclassified = []
        for item in categorized:
            key = (item.request.src_ip, item.request.uri)
            if (
                item.category == Category.USER_VISIT
                and pair_counts[key] >= stream_threshold
            ):
                item = CategorizedRequest(
                    item.request,
                    Category.AUTOMATED,
                    self._automated_subtype(item.request),
                    item.agent_name,
                )
            reclassified.append(item)
        return reclassified

    # -- subtype helpers ---------------------------------------------------

    @staticmethod
    def _crawler_subtype(request: HttpRequest) -> Subcategory:
        """Search engines crawl pages; file grabbers fetch assets."""
        if request.extension in PAGE_EXTENSIONS:
            return Subcategory.SEARCH_ENGINE
        return Subcategory.FILE_GRABBER

    def _automated_subtype(self, request: HttpRequest) -> Subcategory:
        if self.nvd.is_sensitive(request.path) or self.nvd.has_suspicious_query(
            request.query_parameters()
        ):
            return Subcategory.MALICIOUS_REQUEST
        return Subcategory.SCRIPT_SOFTWARE


def subcategory_counts(
    categorized: Iterable[CategorizedRequest],
) -> Dict[Subcategory, int]:
    """Requests per subcategory (one Table 1 row's cells)."""
    counts: Dict[Subcategory, int] = {s: 0 for s in Subcategory}
    for item in categorized:
        counts[item.subcategory] += 1
    return counts


def category_counts(
    categorized: Iterable[CategorizedRequest],
) -> Dict[Category, int]:
    counts: Dict[Category, int] = {c: 0 for c in Category}
    for item in categorized:
        counts[item.category] += 1
    return counts
