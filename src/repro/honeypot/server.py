"""The NXD-Honeypot deployment: recorder + web server + analysis glue.

One :class:`NxdHoneypot` instance models the full §6.1 deployment for a
set of hosted domains: it records all inbound traffic, serves the
study's landing page (the barebone web server role), and — once the
calibration deployments have been run — produces the filtered,
categorized view that Table 1 and Figures 10/13/14/15 are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.resilience.dlq import DeadLetterQueue, ReplayStats
from repro.honeypot.categorize import (
    CategorizedRequest,
    TrafficCategorizer,
    subcategory_counts,
    Subcategory,
)
from repro.honeypot.filtering import FilterStats, TwoStageFilter
from repro.honeypot.http import HttpRequest, PacketRecord
from repro.honeypot.recorder import TrafficRecorder

LANDING_PAGE = (
    "<html><head><title>Research measurement study</title></head><body>"
    "<h1>This domain is part of an academic measurement study.</h1>"
    "<p>We registered this previously expired domain to analyze the "
    "network traffic it still receives. No user data is solicited. "
    "Contact: research-team@example.edu</p></body></html>"
)


@dataclass
class HoneypotReport:
    """The per-domain categorized traffic summary (one Table 1 row)."""

    domain: str
    counts: Dict[Subcategory, int]
    total: int

    def count(self, subcategory: Subcategory) -> int:
        return self.counts.get(subcategory, 0)


class NxdHoneypot:
    """A honeypot hosting one or more registered domains."""

    def __init__(
        self,
        hosted_domains: Iterable[str],
        categorizer: Optional[TrafficCategorizer] = None,
        dead_letters: Optional[DeadLetterQueue] = None,
    ) -> None:
        self.hosted_domains = {d.lower() for d in hosted_domains}
        self.recorder = TrafficRecorder("honeypot")
        self.categorizer = (
            categorizer if categorizer is not None else TrafficCategorizer()
        )
        self.noise_filter: Optional[TwoStageFilter] = None
        self.pages_served = 0
        #: Traffic the recorder failed to persist, quarantined for
        #: :meth:`replay_dead_letters`.  Without a queue a recorder
        #: failure is still survived, merely counted.
        self.dead_letters = dead_letters
        self.recorder_errors = 0

    # -- capture path ------------------------------------------------------

    def accept_packet(self, packet: PacketRecord) -> None:
        """Non-HTTP traffic: recorded (best-effort), never answered."""
        try:
            self.recorder.record_packet(packet)
        except ReproError as exc:
            self._quarantine(packet, exc, packet.timestamp)

    def accept_request(self, request: HttpRequest) -> str:
        """HTTP/HTTPS traffic: recorded and served the landing page.

        The honeypot never initiates interaction (the ethics appendix);
        serving a static page to whoever asks is its only response —
        and the page is served even when the recorder fails, because a
        visibly broken host would perturb the measurement itself.
        """
        try:
            self.recorder.record_request(request)
        except ReproError as exc:
            self._quarantine(request, exc, request.timestamp)
        self.pages_served += 1
        return LANDING_PAGE

    def _quarantine(
        self, item: object, error: ReproError, timestamp: int
    ) -> None:
        self.recorder_errors += 1
        if self.dead_letters is not None:
            self.dead_letters.push(
                item, reason=f"recorder failed: {error}", timestamp=timestamp
            )

    def replay_dead_letters(self) -> ReplayStats:
        """Re-record quarantined traffic once the recorder recovers."""
        if self.dead_letters is None:
            return ReplayStats()

        def handler(item: object) -> None:
            if isinstance(item, HttpRequest):
                self.recorder.record_request(item)
            else:
                assert isinstance(item, PacketRecord)
                self.recorder.record_packet(item)

        return self.dead_letters.replay(handler)

    # -- analysis path --------------------------------------------------------

    def calibrate(
        self,
        no_hosting: TrafficRecorder,
        control_group: TrafficRecorder,
    ) -> TwoStageFilter:
        """Install the two-stage noise filter from calibration data."""
        self.noise_filter = TwoStageFilter.calibrated(no_hosting, control_group)
        return self.noise_filter

    def filtered_requests(
        self, jobs: int = 1
    ) -> Tuple[List[HttpRequest], FilterStats]:
        """All recorded requests after noise filtering.

        ``jobs`` shards the filter pass (output-identical to serial,
        see :meth:`TwoStageFilter.apply`).
        """
        requests = self.recorder.requests()
        if self.noise_filter is None:
            stats = FilterStats(
                input_requests=len(requests), kept=len(requests)
            )
            return requests, stats
        return self.noise_filter.apply(requests, jobs=jobs)

    def categorized_requests(self, jobs: int = 1) -> List[CategorizedRequest]:
        kept, _ = self.filtered_requests(jobs=jobs)
        return self.categorizer.categorize_many(kept)

    def report_for(self, domain: str) -> HoneypotReport:
        """Table 1 row for one hosted domain."""
        lowered = domain.lower()
        categorized = [
            item
            for item in self.categorized_requests()
            if item.request.host.lower() == lowered
        ]
        counts = subcategory_counts(categorized)
        return HoneypotReport(lowered, counts, total=len(categorized))

    def reports(self) -> List[HoneypotReport]:
        """Table 1 rows for every hosted domain, by traffic volume."""
        categorized = self.categorized_requests()
        by_domain: Dict[str, List[CategorizedRequest]] = {
            d: [] for d in self.hosted_domains
        }
        for item in categorized:
            host = item.request.host.lower()
            if host in by_domain:
                by_domain[host].append(item)
        reports = [
            HoneypotReport(domain, subcategory_counts(items), total=len(items))
            for domain, items in by_domain.items()
        ]
        # Tie-break by name: ``hosted_domains`` is a set, so relying on
        # the stable sort alone would leave equal-total rows in
        # hash-seed-dependent order across processes.
        reports.sort(key=lambda r: (-r.total, r.domain))
        return reports
