"""Mini National Vulnerability Database (sensitive-URI oracle).

§6.2 step ③: a requested URI is *sensitive* when the NVD associates
its filename with vulnerabilities of at least medium CVSS severity.
This module ships the lookup table the categorizer needs — filenames
that appear in real probe traffic with representative severities —
plus the suspicious-query-parameter check the paper applies to URIs
carrying query strings.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple


class Severity(enum.IntEnum):
    """CVSS v3 qualitative bands (ordered)."""

    NONE = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3
    CRITICAL = 4


#: filename → worst known CVSS band for vulnerabilities in handlers of
#: that name.  Entries follow the probes the paper highlights
#: (wp-login.php, changepassword.php) plus the standard scanner corpus.
SENSITIVE_FILES: Dict[str, Severity] = {
    "wp-login.php": Severity.HIGH,
    "xmlrpc.php": Severity.HIGH,
    "wp-config.php": Severity.CRITICAL,
    "changepassword.php": Severity.HIGH,
    "changepasswd.php": Severity.HIGH,
    "admin.php": Severity.MEDIUM,
    "login.php": Severity.MEDIUM,
    "config.php": Severity.HIGH,
    "shell.php": Severity.CRITICAL,
    "cmd.php": Severity.CRITICAL,
    "upload.php": Severity.HIGH,
    "setup.php": Severity.MEDIUM,
    "install.php": Severity.MEDIUM,
    "phpinfo.php": Severity.MEDIUM,
    ".env": Severity.CRITICAL,
    "id_rsa": Severity.CRITICAL,
    "web.config": Severity.HIGH,
    "wlwmanifest.xml": Severity.MEDIUM,
    "manager.html": Severity.MEDIUM,   # tomcat manager
    "HNAP1": Severity.HIGH,            # router RCE probes
    "boaform": Severity.HIGH,
}

#: Path *segments* that mark scanner traffic regardless of filename.
SENSITIVE_SEGMENTS: Tuple[str, ...] = (
    "phpmyadmin",
    "cgi-bin",
    "wp-admin",
    "jmx-console",
    "actuator",
    ".git",
)

#: Query parameter names abused for injection/takeover in probe URIs.
SUSPICIOUS_PARAMETERS: Tuple[str, ...] = (
    "cmd",
    "exec",
    "shell",
    "eval",
    "base64",
    "redirect",
    "union",
    "passwd",
    "imei",
)


class VulnerabilityDatabase:
    """Severity lookups over requested URIs."""

    def __init__(
        self,
        files: Optional[Dict[str, Severity]] = None,
        segments: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self._files = dict(files) if files is not None else dict(SENSITIVE_FILES)
        self._segments = segments if segments is not None else SENSITIVE_SEGMENTS

    def severity_of(self, path: str) -> Severity:
        """Worst severity associated with a URI path."""
        filename = path.rsplit("/", 1)[-1]
        severity = self._files.get(filename, Severity.NONE)
        lowered = path.lower()
        for segment in self._segments:
            if segment in lowered:
                severity = max(severity, Severity.MEDIUM)
        return severity

    def is_sensitive(
        self, path: str, minimum: Severity = Severity.MEDIUM
    ) -> bool:
        """§6.2's criterion: severity ≥ medium."""
        return self.severity_of(path) >= minimum

    def has_suspicious_query(self, query_parameters: Dict[str, str]) -> bool:
        """True when any parameter name is on the abuse list."""
        return any(
            name.lower() in SUSPICIOUS_PARAMETERS for name in query_parameters
        )

    def add(self, filename: str, severity: Severity) -> None:
        """Extend the database (feeds in real deployments update it)."""
        self._files[filename] = severity

    def __len__(self) -> int:
        return len(self._files)
