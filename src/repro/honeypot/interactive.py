"""Interactive NXD-Honeypot (§7 future work).

The deployed honeypot was strictly passive — it served one landing page
and never engaged visitors (the ethics appendix).  §7 proposes
"implementing the capability to interact with domain visitors" to
learn more about their purpose.  This module is that next-generation
server, with the interaction policy kept deliberately conservative:

- page requests receive the study landing page, as before;
- machine-format requests (``.json``, ``.xml``) receive well-formed
  *empty* documents, so automated pollers reveal their retry and
  parsing behaviour without being fed anything executable;
- requests for the botnet's ``getTask.php`` receive an empty task
  list — the "no work for you" answer a C&C would give an idle bot;
- vulnerability probes receive a plain 404: the honeypot never
  pretends to be exploitable.

On top of the responses, the server keeps per-visitor *sessions* so
the analysis can ask the paper's follow-up question: who comes back,
how often, and does answering them change that?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.honeypot.categorize import TrafficCategorizer
from repro.honeypot.http import HttpRequest
from repro.honeypot.nvd import VulnerabilityDatabase
from repro.honeypot.server import LANDING_PAGE, NxdHoneypot

EMPTY_JSON = "{}"
EMPTY_XML = '<?xml version="1.0"?><feed/>'
EMPTY_TASK_RESPONSE = '{"tasks": []}'
PLACEHOLDER_IMAGE = "[1x1 transparent pixel]"
NOT_FOUND_BODY = "<html><body><h1>404 Not Found</h1></body></html>"

_MACHINE_EXTENSIONS = {
    "json": ("application/json", EMPTY_JSON),
    "xml": ("application/xml", EMPTY_XML),
}
_IMAGE_EXTENSIONS = ("png", "jpg", "jpeg", "gif", "ico")


@dataclass(frozen=True)
class HoneypotResponse:
    """What the interactive server answered."""

    status: int
    content_type: str
    body: str


@dataclass
class VisitorSession:
    """Accumulated behaviour of one source address."""

    src_ip: str
    requests: int = 0
    first_seen: int = 0
    last_seen: int = 0
    distinct_uris: set = field(default_factory=set)
    interarrivals: List[int] = field(default_factory=list)

    @property
    def is_returning(self) -> bool:
        return self.requests > 1

    def mean_interarrival(self) -> Optional[float]:
        if not self.interarrivals:
            return None
        return sum(self.interarrivals) / len(self.interarrivals)

    @property
    def is_periodic(self) -> bool:
        """Heuristic: ≥5 visits with low interarrival variance — the
        polling signature of automated processes (§6.3)."""
        if len(self.interarrivals) < 4:
            return False
        mean = self.mean_interarrival()
        if not mean:
            return False
        variance = sum((x - mean) ** 2 for x in self.interarrivals) / len(
            self.interarrivals
        )
        return (variance**0.5) / mean < 0.35


class InteractiveHoneypot(NxdHoneypot):
    """NXD-Honeypot that answers visitors and tracks their sessions."""

    def __init__(
        self,
        hosted_domains: Iterable[str],
        categorizer: Optional[TrafficCategorizer] = None,
        nvd: Optional[VulnerabilityDatabase] = None,
    ) -> None:
        super().__init__(hosted_domains, categorizer)
        self.nvd = nvd if nvd is not None else VulnerabilityDatabase()
        self._sessions: Dict[str, VisitorSession] = {}
        self.responses_by_status: Dict[int, int] = {}

    # -- serving -------------------------------------------------------

    def interact(self, request: HttpRequest) -> HoneypotResponse:
        """Record the request and answer it per the interaction policy."""
        super().accept_request(request)
        self._track_session(request)
        response = self._respond(request)
        self.responses_by_status[response.status] = (
            self.responses_by_status.get(response.status, 0) + 1
        )
        return response

    def _respond(self, request: HttpRequest) -> HoneypotResponse:
        # Never pretend to be vulnerable.
        if self.nvd.is_sensitive(request.path):
            return HoneypotResponse(404, "text/html", NOT_FOUND_BODY)
        if request.filename == "getTask.php":
            return HoneypotResponse(200, "application/json", EMPTY_TASK_RESPONSE)
        machine = _MACHINE_EXTENSIONS.get(request.extension)
        if machine is not None:
            content_type, body = machine
            return HoneypotResponse(200, content_type, body)
        if request.extension in _IMAGE_EXTENSIONS:
            return HoneypotResponse(200, "image/png", PLACEHOLDER_IMAGE)
        return HoneypotResponse(200, "text/html", LANDING_PAGE)

    def _track_session(self, request: HttpRequest) -> None:
        session = self._sessions.get(request.src_ip)
        if session is None:
            session = VisitorSession(
                src_ip=request.src_ip,
                first_seen=request.timestamp,
                last_seen=request.timestamp,
            )
            self._sessions[request.src_ip] = session
        else:
            session.interarrivals.append(
                max(request.timestamp - session.last_seen, 0)
            )
            session.last_seen = max(session.last_seen, request.timestamp)
        session.requests += 1
        session.distinct_uris.add(request.uri)

    # -- analysis -----------------------------------------------------------

    def session_of(self, src_ip: str) -> Optional[VisitorSession]:
        return self._sessions.get(src_ip)

    def sessions(self) -> List[VisitorSession]:
        return list(self._sessions.values())

    def session_summary(self) -> Dict[str, int]:
        """Visitor-behaviour headline numbers."""
        sessions = self._sessions.values()
        return {
            "visitors": len(self._sessions),
            "returning": sum(1 for s in sessions if s.is_returning),
            "periodic": sum(1 for s in sessions if s.is_periodic),
            "single-shot": sum(1 for s in sessions if not s.is_returning),
        }

    def top_visitors(self, n: int = 10) -> List[Tuple[str, int]]:
        ranked = sorted(
            self._sessions.values(), key=lambda s: s.requests, reverse=True
        )
        return [(s.src_ip, s.requests) for s in ranked[:n]]
