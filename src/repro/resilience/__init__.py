"""Resilience primitives that absorb injected (and real) faults.

Three classic building blocks, all deterministic and simulation-clock
driven so they pass the REP001/REP002 linter and reproduce bit-for-bit:

- :class:`RetryPolicy` — bounded retries with exponential backoff and
  deterministic jitter (the jitter stream comes from :mod:`repro.rand`;
  waiting advances a :class:`repro.clock.SimClock`, never wall clock);
- :class:`CircuitBreaker` — closed/open/half-open failure isolation
  with a simulated-time reset window;
- :class:`DeadLetterQueue` — a bounded queue of failed deliveries with
  replay, so transient faults lose nothing and permanent ones are
  quarantined instead of crashing the pipeline;
- :class:`RateLimit` / :class:`TokenBucket` — fixed-window token
  buckets over simulated time (per-tenant admission in the serving
  tier, quota modeling in the blocklist store).

The passive DNS wiring that composes these with the fault harness
lives in :mod:`repro.passivedns.pipeline`; the query-serving wiring in
:mod:`repro.serving`.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.dlq import DeadLetter, DeadLetterQueue, ReplayStats
from repro.resilience.ratelimit import RateLimit, TokenBucket
from repro.resilience.retry import RetryPolicy

__all__ = [  # repro: noqa[REP104] dead-letter record type; exported for annotations
    "BreakerState",
    "CircuitBreaker",
    "DeadLetter",
    "DeadLetterQueue",
    "RateLimit",
    "ReplayStats",
    "RetryPolicy",
    "TokenBucket",
]
