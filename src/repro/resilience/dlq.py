"""A bounded dead-letter queue with replay."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Callable, Deque, List

from repro.errors import ConfigError, TransientError


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined item and why it ended up here."""

    item: Any
    reason: str
    timestamp: int
    attempts: int = 1


@dataclass
class ReplayStats:
    """What one :meth:`DeadLetterQueue.replay` pass accomplished."""

    replayed: int = 0
    succeeded: int = 0
    requeued: int = 0
    abandoned: int = 0


class DeadLetterQueue:
    """Bounded FIFO of failed deliveries.

    When full, the *oldest* letter is evicted (and counted) so the
    queue always holds the most recent failures — the same policy a
    bounded collector buffer applies under sustained outage.
    """

    def __init__(self, capacity: int = 1024, max_attempts: int = 5) -> None:
        if capacity < 1:
            raise ConfigError("capacity must be at least 1")
        if max_attempts < 1:
            raise ConfigError("max_attempts must be at least 1")
        self.capacity = capacity
        self.max_attempts = max_attempts
        self._letters: Deque[DeadLetter] = deque()
        self.pushed = 0
        self.evicted = 0

    def push(self, item: Any, reason: str, timestamp: int, attempts: int = 1) -> DeadLetter:
        """Quarantine one failed item; evicts the oldest when full."""
        letter = DeadLetter(item, reason, timestamp, attempts)
        if len(self._letters) >= self.capacity:
            self._letters.popleft()
            self.evicted += 1
        self._letters.append(letter)
        self.pushed += 1
        return letter

    def letters(self) -> List[DeadLetter]:
        """A copy of the queued letters, oldest first."""
        return list(self._letters)

    def clear(self) -> int:
        """Drop everything; returns how many letters were discarded."""
        dropped = len(self._letters)
        self._letters.clear()
        return dropped

    def replay(self, handler: Callable[[Any], None]) -> ReplayStats:
        """Re-deliver every queued letter through ``handler``.

        Letters whose handler raises a :class:`TransientError` are
        requeued with their attempt count bumped — until
        ``max_attempts``, after which they are abandoned (counted, not
        re-raised).  Non-transient errors propagate: a replay handler
        that is *wrongly* failing should crash loudly, not loop.
        """
        stats = ReplayStats()
        pending = len(self._letters)
        for _ in range(pending):
            letter = self._letters.popleft()
            stats.replayed += 1
            try:
                handler(letter.item)
            except TransientError as exc:
                if letter.attempts >= self.max_attempts:
                    stats.abandoned += 1
                    continue
                requeued = replace(
                    letter,
                    attempts=letter.attempts + 1,
                    reason=f"replay failed: {exc}",
                )
                self._letters.append(requeued)
                stats.requeued += 1
            else:
                stats.succeeded += 1
        return stats

    def __len__(self) -> int:
        return len(self._letters)
