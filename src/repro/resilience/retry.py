"""Bounded retries with exponential backoff and deterministic jitter."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

import numpy as np

from repro.clock import SimClock
from repro.errors import ConfigError, TransientError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient failure, and how patiently.

    Delays follow ``base_delay * multiplier**attempt`` capped at
    ``max_delay``; ``jitter`` spreads each delay by up to ±that
    fraction, drawn from a caller-supplied seeded generator so the
    spread is reproducible.  Waiting advances a simulated clock.
    """

    max_attempts: int = 3
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be at least 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must lie in [0, 1)")

    def delay_for(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered."""
        if attempt < 0:
            raise ConfigError("attempt must be non-negative")
        delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay

    def run(
        self,
        operation: Callable[[], T],
        clock: Optional[SimClock] = None,
        rng: Optional[np.random.Generator] = None,
        retry_on: Tuple[Type[BaseException], ...] = (TransientError,),
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> T:
        """Call ``operation``, retrying ``retry_on`` failures.

        After the final attempt the last error is re-raised unchanged,
        so callers keep seeing the underlying failure class.  When a
        ``clock`` is supplied, each backoff advances it by the (whole
        seconds, rounded up) jittered delay.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            try:
                return operation()
            except retry_on as exc:
                last = exc
                if attempt == self.max_attempts - 1:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                if clock is not None:
                    delay = self.delay_for(attempt, rng)
                    clock.advance(int(math.ceil(delay)))
        raise last if last is not None else ConfigError("retry loop fell through")
