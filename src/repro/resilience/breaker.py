"""A circuit breaker over simulated time."""

from __future__ import annotations

import enum
import threading
from typing import Callable, TypeVar

from repro.errors import CircuitOpenError, ConfigError

T = TypeVar("T")


class BreakerState(enum.Enum):
    """The classic three-state breaker machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Stops hammering a failing dependency; probes it after a cooldown.

    State transitions are driven entirely by the caller-supplied
    ``now`` (simulated epoch seconds), so breaker behaviour is as
    reproducible as the rest of the stack:

    - CLOSED → OPEN after ``failure_threshold`` consecutive failures;
    - OPEN → HALF_OPEN once ``reset_timeout`` seconds have passed;
    - HALF_OPEN → CLOSED after ``probe_successes`` successes, or back
      to OPEN on any failure.

    Safe for concurrent callers: transitions happen under an internal
    lock, and in HALF_OPEN at most one probe is outstanding at a time —
    :meth:`allow` *claims* the probe slot for the caller it admits, and
    every other caller is rejected until that probe reports back
    through :meth:`record_success` / :meth:`record_failure`.  Without
    the claim, a thundering herd arriving at the cooldown boundary
    would all be admitted "as the probe" and re-hammer the dependency
    the breaker just isolated.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: int = 300,
        probe_successes: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be at least 1")
        if reset_timeout < 1:
            raise ConfigError("reset_timeout must be at least 1 second")
        if probe_successes < 1:
            raise ConfigError("probe_successes must be at least 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.probe_successes = probe_successes
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_streak = 0
        self._opened_at = 0
        #: Serializes state transitions; guarded work is a few
        #: comparisons, never the protected call itself.
        self._lock = threading.RLock()
        #: True while the single half-open probe is outstanding.
        self._probe_in_flight = False
        # Lifetime counters an operator would graph.
        self.failures = 0
        self.successes = 0
        self.rejected = 0
        self.times_opened = 0

    def allow(self, now: int) -> bool:
        """Whether a call may proceed at ``now`` (may trip half-open).

        In HALF_OPEN (including the OPEN → HALF_OPEN transition this
        call performs), a ``True`` return claims the single probe
        slot: the caller must report back via :meth:`record_success`
        or :meth:`record_failure`, and until it does every other
        caller gets ``False``.
        """
        with self._lock:
            if self.state is BreakerState.OPEN:
                if now - self._opened_at >= self.reset_timeout:
                    self.state = BreakerState.HALF_OPEN
                    self._probe_streak = 0
                    self._probe_in_flight = True
                    return True
                return False
            if self.state is BreakerState.HALF_OPEN:
                if self._probe_in_flight:
                    return False
                self._probe_in_flight = True
                return True
            return True

    def record_success(self, now: int) -> None:
        """Feed back a successful call."""
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            if self.state is BreakerState.HALF_OPEN:
                self._probe_in_flight = False
                self._probe_streak += 1
                if self._probe_streak >= self.probe_successes:
                    self.state = BreakerState.CLOSED

    def record_failure(self, now: int) -> None:
        """Feed back a failed call."""
        with self._lock:
            self.failures += 1
            if self.state is BreakerState.HALF_OPEN:
                self._trip(now)
                return
            self._consecutive_failures += 1
            if (
                self.state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip(now)

    def _trip(self, now: int) -> None:
        with self._lock:
            self.state = BreakerState.OPEN
            self._opened_at = now
            self._consecutive_failures = 0
            self._probe_in_flight = False
            self.times_opened += 1

    def call(self, operation: Callable[[], T], now: int) -> T:
        """Run ``operation`` through the breaker at ``now``."""
        if not self.allow(now):
            with self._lock:
                self.rejected += 1
                half_open = self.state is BreakerState.HALF_OPEN
            if half_open:
                raise CircuitOpenError(
                    "half-open probe already in flight "
                    f"(circuit opened at t={self._opened_at})"
                )
            raise CircuitOpenError(
                f"circuit open since t={self._opened_at} "
                f"(retry after {self.reset_timeout}s)"
            )
        try:
            result = operation()
        except Exception:
            self.record_failure(now)
            raise
        self.record_success(now)
        return result
