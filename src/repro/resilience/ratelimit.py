"""Token-bucket rate limiting over simulated time.

Extracted from :mod:`repro.blocklist.store`, which modeled the paper's
blocklist-API quota with an inline fixed window.  The config half
(:class:`RateLimit`) keeps its old import path as a re-export; the
stateful half (:class:`TokenBucket`) is the reusable piece — the
serving tier hangs one bucket per tenant off its admission controller,
and the blocklist store throttles its external API with one.

``now`` is simulated epoch seconds throughout (:class:`SimClock`
discipline): the window opens on the first acquire and resets
``window_seconds`` later, so behaviour is a pure function of the
acquire sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError, RateLimitExceeded


@dataclass
class RateLimit:
    """A token bucket: ``capacity`` queries refilled every ``window`` s."""

    capacity: int = 10_000
    window_seconds: int = 3600

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.window_seconds <= 0:
            raise ConfigError("capacity and window must be positive")


class TokenBucket:
    """Fixed-window token state for one principal (tenant, API key).

    Not thread-safe by itself; callers that share a bucket across
    threads serialize acquires (the admission controller takes them
    under its queue lock).
    """

    def __init__(self, limit: RateLimit) -> None:
        self.limit = limit
        self._window_start: Optional[int] = None
        self._used = 0
        # Lifetime counters an operator would graph.
        self.granted = 0
        self.rejected = 0

    def _refill(self, now: int) -> None:
        """Reset an elapsed window.  Reads never *open* a window — the
        window starts at the first acquire, so probing ``remaining`` /
        ``retry_after`` ahead of time has no side effect."""
        if (
            self._window_start is not None
            and now - self._window_start >= self.limit.window_seconds
        ):
            self._window_start = None
            self._used = 0

    def remaining(self, now: int) -> int:
        """Tokens left in the window containing ``now``."""
        self._refill(now)
        return self.limit.capacity - self._used

    def retry_after(self, now: int) -> int:
        """Seconds until a rejected caller should retry (0 = now)."""
        self._refill(now)
        if self._window_start is None or self._used < self.limit.capacity:
            return 0
        return max(0, self._window_start + self.limit.window_seconds - now)

    def try_acquire(self, now: int, tokens: int = 1) -> bool:
        """Take ``tokens`` from the window at ``now`` if available."""
        if tokens < 1:
            raise ConfigError("tokens must be at least 1")
        self._refill(now)
        if self._window_start is None:
            self._window_start = now
        if self._used + tokens > self.limit.capacity:
            self.rejected += 1
            return False
        self._used += tokens
        self.granted += 1
        return True

    def acquire(self, now: int, tokens: int = 1) -> None:
        """:meth:`try_acquire` or raise with ``retry_after`` filled in."""
        if not self.try_acquire(now, tokens):
            raise RateLimitExceeded(
                f"limit of {self.limit.capacity} per "
                f"{self.limit.window_seconds}s exhausted",
                retry_after=self.retry_after(now),
            )
