"""WHOIS substrate: the domain lifecycle and a queryable history database.

The paper joins 146 B NXDomains against WhoisXML's 15.6 B historic
WHOIS records to split them into *expired* versus *never-registered*
domains (§5.1).  This package provides the equivalent machinery:

- :mod:`repro.whois.lifecycle` — the ICANN Expired Registration
  Recovery Policy as an explicit state machine (active → auto-renew
  grace → 30-day redemption grace period → pending delete → available),
  including the required expiry notifications and drop-catch interplay.
- :mod:`repro.whois.registry` — the registry operating that lifecycle
  for a population of domains, optionally wired to a
  :class:`repro.dns.DnsHierarchy` so registration state changes are
  observable through actual resolution.
- :mod:`repro.whois.history` — the WhoisXML stand-in: every lifecycle
  transition appends a record, and the study joins NXDomains against it.
"""

from repro.whois.history import WhoisHistoryDatabase
from repro.whois.lifecycle import (
    DomainLifecycle,
    DomainStatus,
    LifecycleEvent,
    LifecyclePolicy,
)
from repro.whois.record import WhoisRecord
from repro.whois.registrar import DropCatchService, Registrar
from repro.whois.registry import Registry

__all__ = [  # repro: noqa[REP104] lifecycle record type; exported for annotations
    "DomainLifecycle",
    "DomainStatus",
    "DropCatchService",
    "LifecycleEvent",
    "LifecyclePolicy",
    "Registrar",
    "Registry",
    "WhoisHistoryDatabase",
    "WhoisRecord",
]
