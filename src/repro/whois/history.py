"""The WHOIS history database (WhoisXML / WHOISIQ stand-in).

Stores every :class:`~repro.whois.record.WhoisRecord` snapshot ever
emitted and answers the two queries the study needs:

- *has this NXDomain ever been registered?* (§5.1: splits the 146 B
  NXDomains into 91 M expired vs. the never-registered rest), and
- *what did its registration history look like?* (used by domain
  selection in §3.3 and the per-domain profiles in §6).

The bulk-join API mirrors how the paper ran the join on BigQuery:
streaming domains through, returning hit/miss splits without
materializing per-domain state for misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dns.name import DomainName
from repro.whois.record import WhoisRecord


@dataclass
class JoinResult:
    """Outcome of joining a domain stream against the history DB."""

    total: int = 0
    with_history: List[DomainName] = field(default_factory=list)
    never_registered_count: int = 0

    @property
    def hit_count(self) -> int:
        return len(self.with_history)

    @property
    def hit_fraction(self) -> float:
        return self.hit_count / self.total if self.total else 0.0


class WhoisHistoryDatabase:
    """Append-only store of WHOIS snapshots, indexed by domain."""

    def __init__(self) -> None:
        self._by_domain: Dict[DomainName, List[WhoisRecord]] = {}
        self.record_count = 0

    def append(self, record: WhoisRecord) -> None:
        """Add one snapshot (kept sorted by capture time)."""
        snapshots = self._by_domain.setdefault(record.domain, [])
        snapshots.append(record)
        if len(snapshots) > 1 and snapshots[-2].captured_at > record.captured_at:
            snapshots.sort(key=lambda r: r.captured_at)
        self.record_count += 1

    def extend(self, records: Iterable[WhoisRecord]) -> None:
        for record in records:
            self.append(record)

    # -- point queries -----------------------------------------------------

    def has_history(self, domain: DomainName) -> bool:
        return domain.registered_domain() in self._by_domain

    def history(self, domain: DomainName) -> List[WhoisRecord]:
        """All snapshots for a domain, oldest first."""
        return list(self._by_domain.get(domain.registered_domain(), []))

    def latest(self, domain: DomainName) -> Optional[WhoisRecord]:
        snapshots = self._by_domain.get(domain.registered_domain())
        return snapshots[-1] if snapshots else None

    def first_registered_at(self, domain: DomainName) -> Optional[int]:
        snapshots = self._by_domain.get(domain.registered_domain())
        if not snapshots:
            return None
        return min(record.created_at for record in snapshots)

    def registration_spans(self, domain: DomainName) -> List[Tuple[int, int]]:
        """Distinct (created_at, expires_at) registration periods."""
        spans = {
            (record.created_at, record.expires_at)
            for record in self._by_domain.get(domain.registered_domain(), [])
        }
        return sorted(spans)

    def domain_count(self) -> int:
        return len(self._by_domain)

    def __len__(self) -> int:
        return self.record_count

    def __contains__(self, domain: DomainName) -> bool:
        return self.has_history(domain)

    # -- the §5.1 join --------------------------------------------------------

    def join(self, domains: Iterable[DomainName]) -> JoinResult:
        """Split a domain stream into with-history vs never-registered."""
        result = JoinResult()
        for domain in domains:
            result.total += 1
            if self.has_history(domain):
                result.with_history.append(domain.registered_domain())
            else:
                result.never_registered_count += 1
        return result
