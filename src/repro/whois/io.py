"""Persistence for the WHOIS history database (JSON Lines).

One JSON object per snapshot — the interchange format historic WHOIS
providers actually use for bulk exports, and trivially greppable.
"""

from __future__ import annotations

import json
import os
from typing import Union

from repro.dns.name import DomainName
from repro.passivedns.spill import atomic_write_bytes
from repro.whois.history import WhoisHistoryDatabase
from repro.whois.record import WhoisRecord
from repro.errors import ConfigError

PathLike = Union[str, "os.PathLike[str]"]


def save_history(history: WhoisHistoryDatabase, path: PathLike) -> int:
    """Write every snapshot as one JSON line; returns records written."""
    lines = []
    for domain in sorted(
        history._by_domain  # noqa: SLF001 - same package
    ):
        for record in history.history(domain):
            lines.append(json.dumps(_to_json(record), sort_keys=True))
    payload = "".join(line + "\n" for line in lines)
    atomic_write_bytes(path, payload.encode("utf-8"))
    return len(lines)


def load_history(path: PathLike) -> WhoisHistoryDatabase:
    """Read a JSONL file written by :func:`save_history`."""
    history = WhoisHistoryDatabase()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                history.append(_from_json(payload))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ConfigError(
                    f"{path}:{line_number}: bad WHOIS record: {exc}"
                ) from exc
    return history


def _to_json(record: WhoisRecord) -> dict:
    return {
        "domain": str(record.domain),
        "registrar": record.registrar,
        "registrant": record.registrant_handle,
        "status": record.status,
        "created_at": record.created_at,
        "expires_at": record.expires_at,
        "captured_at": record.captured_at,
        "updated_at": record.updated_at,
        "nameservers": list(record.nameservers),
    }


def _from_json(payload: dict) -> WhoisRecord:
    return WhoisRecord(
        domain=DomainName(payload["domain"]),
        registrar=payload["registrar"],
        registrant_handle=payload["registrant"],
        status=payload["status"],
        created_at=int(payload["created_at"]),
        expires_at=int(payload["expires_at"]),
        captured_at=int(payload["captured_at"]),
        updated_at=payload.get("updated_at"),
        nameservers=tuple(payload.get("nameservers", ())),
    )
