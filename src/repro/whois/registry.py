"""The registry: operates lifecycles, emits WHOIS history, drives DNS.

:class:`Registry` is the integration point of the WHOIS substrate:

- registration / renewal / restore requests route through the domain's
  :class:`~repro.whois.lifecycle.DomainLifecycle` and charge the
  registrar;
- :meth:`tick` advances expiry processing for every managed domain;
- every externally visible change appends a snapshot to the
  :class:`~repro.whois.history.WhoisHistoryDatabase`;
- when wired to a :class:`repro.dns.DnsHierarchy`, delegations are
  added on registration and withdrawn when a domain stops resolving
  (entry into the redemption grace period), so the passive DNS pipeline
  observes real NXDOMAINs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.clock import SECONDS_PER_DAY
from repro.dns.hierarchy import DnsHierarchy
from repro.dns.name import DomainName
from repro.errors import RegistryError
from repro.whois.history import WhoisHistoryDatabase
from repro.whois.lifecycle import (
    DomainLifecycle,
    DomainStatus,
    EventKind,
    LifecyclePolicy,
)
from repro.whois.record import WhoisRecord
from repro.whois.registrar import DropCatchService, Registrar


class Registry:
    """Manages registrations across all TLDs of the simulation."""

    def __init__(
        self,
        history: Optional[WhoisHistoryDatabase] = None,
        hierarchy: Optional[DnsHierarchy] = None,
        dropcatch: Optional[DropCatchService] = None,
        policy: Optional[LifecyclePolicy] = None,
        default_registrar: Optional[Registrar] = None,
    ) -> None:
        self.history = history if history is not None else WhoisHistoryDatabase()
        self.hierarchy = hierarchy
        self.dropcatch = dropcatch
        self.policy = policy if policy is not None else LifecyclePolicy()
        self.default_registrar = (
            default_registrar if default_registrar is not None else Registrar("generic")
        )
        self.registrars: Dict[str, Registrar] = {
            self.default_registrar.name: self.default_registrar
        }
        self._lifecycles: Dict[DomainName, DomainLifecycle] = {}
        self._registrar_of: Dict[DomainName, Registrar] = {}
        self._address_of: Dict[DomainName, str] = {}

    # -- registrar management ---------------------------------------------

    def add_registrar(self, registrar: Registrar) -> Registrar:
        self.registrars[registrar.name] = registrar
        return registrar

    # -- registration operations -------------------------------------------

    def register(
        self,
        domain: DomainName,
        owner: str,
        at: int,
        years: int = 1,
        registrar: Optional[str] = None,
        address: str = "203.0.113.10",
    ) -> DomainLifecycle:
        """Register an available domain and delegate it in DNS."""
        domain = domain.registered_domain()
        lifecycle = self._lifecycles.get(domain)
        if lifecycle is not None and lifecycle.status != DomainStatus.AVAILABLE:
            raise RegistryError(
                f"{domain} is {lifecycle.status.value}, not available"
            )
        if lifecycle is None:
            lifecycle = DomainLifecycle(domain, self.policy)
            self._lifecycles[domain] = lifecycle
        agent = self._resolve_registrar(registrar)
        lifecycle.register(owner=owner, at=at, years=years)
        agent.charge_registration(years)
        self._registrar_of[domain] = agent
        self._address_of[domain] = address
        if self.hierarchy is not None and not self.hierarchy.is_registered(domain):
            self.hierarchy.register_domain(domain, address)
        self._snapshot(domain, at)
        return lifecycle

    def renew(self, domain: DomainName, at: int, years: int = 1) -> None:
        lifecycle = self._require(domain)
        was_resolving = lifecycle.status.resolves_in_dns
        lifecycle.renew(at, years)
        self._registrar_of[domain].charge_renewal(years)
        if (
            self.hierarchy is not None
            and not was_resolving
            and not self.hierarchy.is_registered(domain)
        ):
            self.hierarchy.register_domain(domain, self._address_of[domain])
        self._snapshot(domain, at)

    def restore(self, domain: DomainName, at: int) -> None:
        """Redeem a domain out of the RGP (restores its delegation)."""
        lifecycle = self._require(domain)
        lifecycle.restore(at)
        self._registrar_of[domain].charge_restore()
        if self.hierarchy is not None and not self.hierarchy.is_registered(domain):
            self.hierarchy.register_domain(domain, self._address_of[domain])
        self._snapshot(domain, at)

    # -- time processing ---------------------------------------------------

    def tick(self, now: int) -> Dict[DomainName, List[EventKind]]:
        """Advance every lifecycle to ``now``.

        Reflects transitions into DNS and WHOIS history, and hands
        released domains to the drop-catch service.  Returns the event
        kinds per domain for callers that trace activity.
        """
        activity: Dict[DomainName, List[EventKind]] = {}
        for domain, lifecycle in list(self._lifecycles.items()):
            events = lifecycle.tick(now)
            if not events:
                continue
            activity[domain] = [event.kind for event in events]
            for event in events:
                if event.kind == EventKind.ENTERED_REDEMPTION:
                    self._withdraw_delegation(domain)
                    self._snapshot(
                        domain, event.at, status=DomainStatus.REDEMPTION.value
                    )
                elif event.kind == EventKind.RELEASED:
                    self._snapshot(
                        domain, event.at, status=DomainStatus.AVAILABLE.value
                    )
                    self._offer_to_dropcatch(domain, event.at)
                elif event.kind == EventKind.EXPIRED:
                    self._snapshot(
                        domain, event.at, status=DomainStatus.AUTO_RENEW_GRACE.value
                    )
        return activity

    def _offer_to_dropcatch(self, domain: DomainName, at: int) -> None:
        if self.dropcatch is None:
            return
        customer = self.dropcatch.claim(domain)
        if customer is not None:
            # Drop-catch re-registration is immediate upon release.
            self.register(domain, owner=customer, at=at)

    def _withdraw_delegation(self, domain: DomainName) -> None:
        if self.hierarchy is not None and self.hierarchy.is_registered(domain):
            self.hierarchy.release_domain(domain)

    # -- queries -------------------------------------------------------------

    def lifecycle_of(self, domain: DomainName) -> Optional[DomainLifecycle]:
        return self._lifecycles.get(domain.registered_domain())

    def status_of(self, domain: DomainName) -> DomainStatus:
        lifecycle = self.lifecycle_of(domain)
        return lifecycle.status if lifecycle else DomainStatus.AVAILABLE

    def is_nxdomain(self, domain: DomainName) -> bool:
        """Would an A query for the domain yield NXDOMAIN right now?"""
        return not self.status_of(domain).resolves_in_dns

    def managed_domains(self) -> List[DomainName]:
        return sorted(self._lifecycles)

    # -- internals -------------------------------------------------------------

    def _require(self, domain: DomainName) -> DomainLifecycle:
        lifecycle = self._lifecycles.get(domain.registered_domain())
        if lifecycle is None:
            raise RegistryError(f"{domain} is not managed by this registry")
        return lifecycle

    def _resolve_registrar(self, name: Optional[str]) -> Registrar:
        if name is None:
            return self.default_registrar
        registrar = self.registrars.get(name)
        if registrar is None:
            raise RegistryError(f"unknown registrar {name!r}")
        return registrar

    def _snapshot(
        self, domain: DomainName, at: int, status: Optional[str] = None
    ) -> None:
        """Append a WHOIS snapshot; ``status`` overrides the live status
        when recording a historical transition mid-tick (a large time
        jump processes several transitions whose intermediate states
        would otherwise be lost)."""
        lifecycle = self._lifecycles[domain]
        if lifecycle.created_at is None or lifecycle.expires_at is None:
            return
        snapshot_status = status if status is not None else lifecycle.status.value
        nameservers = ()
        if snapshot_status in (
            DomainStatus.REGISTERED.value,
            DomainStatus.AUTO_RENEW_GRACE.value,
        ):
            nameservers = (f"ns1.{domain}",)
        self.history.append(
            WhoisRecord(
                domain=domain,
                registrar=self._registrar_of[domain].name,
                registrant_handle=lifecycle.owner or "released",
                status=snapshot_status,
                created_at=lifecycle.created_at,
                expires_at=lifecycle.expires_at,
                captured_at=max(at, lifecycle.created_at),
                nameservers=nameservers,
            )
        )


def days(count: float) -> int:
    """Readability helper for tests and examples: days → seconds."""
    return int(count * SECONDS_PER_DAY)
