"""WHOIS record model.

A :class:`WhoisRecord` is one snapshot of a domain's registration data,
in the shape historic WHOIS providers return: registrar, creation /
expiration timestamps, status, and nameservers.  Registrant identity is
an opaque handle — the study never needs PII, and the paper's ethics
appendix stresses anonymization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.dns.name import DomainName
from repro.errors import ConfigError


@dataclass(frozen=True)
class WhoisRecord:
    """One historic WHOIS snapshot for a domain.

    ``captured_at`` orders snapshots within a domain's history;
    ``expires_at`` may lie in the snapshot's future (a live
    registration) or past (captured during the expiry pipeline).
    """

    domain: DomainName
    registrar: str
    registrant_handle: str
    status: str
    created_at: int
    expires_at: int
    captured_at: int
    updated_at: Optional[int] = None
    nameservers: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.expires_at < self.created_at:
            raise ConfigError(
                f"{self.domain}: expires_at precedes created_at "
                f"({self.expires_at} < {self.created_at})"
            )
        if self.captured_at < self.created_at:
            raise ConfigError(
                f"{self.domain}: snapshot captured before creation"
            )

    @property
    def registration_years(self) -> float:
        """Length of the registration period in (365-day) years."""
        return (self.expires_at - self.created_at) / (365 * 86_400)

    def was_live_at(self, timestamp: int) -> bool:
        """True when the registration covered ``timestamp``."""
        return self.created_at <= timestamp < self.expires_at

    def __str__(self) -> str:
        return (
            f"{self.domain} [{self.status}] registrar={self.registrar} "
            f"created={self.created_at} expires={self.expires_at}"
        )
