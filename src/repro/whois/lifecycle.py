"""The ICANN domain lifecycle as a state machine.

Implements the Expired Registration Recovery Policy the paper's §2
describes: a registered domain whose owner does not renew moves through
an auto-renew grace window (renewable at normal cost), the 30-day
Redemption Grace Period (restorable for an extra fee), and a short
pending-delete window, after which it is released to the public —
either snapped up by a drop-catch reservation or left available, at
which point DNS queries for it yield NXDOMAIN.

The state machine is pure (no registry, no DNS): the
:class:`repro.whois.registry.Registry` drives it and reflects its
transitions into WHOIS history and the DNS hierarchy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.clock import SECONDS_PER_DAY
from repro.dns.name import DomainName
from repro.errors import LifecycleError


class DomainStatus(enum.Enum):
    """Lifecycle states; names follow registry terminology."""

    AVAILABLE = "available"
    REGISTERED = "registered"
    AUTO_RENEW_GRACE = "auto-renew-grace"
    REDEMPTION = "redemption-grace-period"
    PENDING_DELETE = "pending-delete"

    @property
    def resolves_in_dns(self) -> bool:
        """Whether a domain in this state still has a DNS delegation.

        Registrars typically park expired domains during the grace
        window (still resolving), then the delegation is pulled when
        the domain enters redemption — from that point on, queries get
        NXDOMAIN, which is when the domain enters the paper's dataset.
        """
        return self in (DomainStatus.REGISTERED, DomainStatus.AUTO_RENEW_GRACE)


class EventKind(enum.Enum):
    REGISTERED = "registered"
    RENEWED = "renewed"
    EXPIRY_NOTICE = "expiry-notice"
    EXPIRED = "expired"
    ENTERED_REDEMPTION = "entered-redemption"
    RESTORED = "restored"
    ENTERED_PENDING_DELETE = "entered-pending-delete"
    RELEASED = "released"
    REREGISTERED = "re-registered"


@dataclass(frozen=True)
class LifecycleEvent:
    """One audited lifecycle transition."""

    kind: EventKind
    at: int
    detail: str = ""


@dataclass(frozen=True)
class LifecyclePolicy:
    """Timing knobs of the ERRP, in days.

    Defaults follow ICANN policy: two renewal notices before expiry
    (roughly one month and one week out), one after, a registrar
    auto-renew grace of up to 45 days, a 30-day RGP, and 5 days of
    pending-delete.
    """

    notice_days_before: tuple = (30, 7)
    notice_days_after: tuple = (3,)
    auto_renew_grace_days: int = 45
    redemption_days: int = 30
    pending_delete_days: int = 5

    def grace_end(self, expires_at: int) -> int:
        return expires_at + self.auto_renew_grace_days * SECONDS_PER_DAY

    def redemption_end(self, expires_at: int) -> int:
        return self.grace_end(expires_at) + self.redemption_days * SECONDS_PER_DAY

    def delete_at(self, expires_at: int) -> int:
        return (
            self.redemption_end(expires_at)
            + self.pending_delete_days * SECONDS_PER_DAY
        )


class DomainLifecycle:
    """Tracks one domain through registration and expiry.

    >>> lc = DomainLifecycle(DomainName("example.com"))
    >>> lc.register(owner="h-1", at=0, years=1)
    >>> lc.status
    <DomainStatus.REGISTERED: 'registered'>
    """

    def __init__(
        self,
        domain: DomainName,
        policy: Optional[LifecyclePolicy] = None,
    ) -> None:
        self.domain = domain
        self.policy = policy if policy is not None else LifecyclePolicy()
        self.status = DomainStatus.AVAILABLE
        self.owner: Optional[str] = None
        self.created_at: Optional[int] = None
        self.expires_at: Optional[int] = None
        self.events: List[LifecycleEvent] = []
        self._notices_sent: List[int] = []

    # -- registration-side transitions ---------------------------------

    def register(self, owner: str, at: int, years: int = 1) -> None:
        """Claim an AVAILABLE domain."""
        if self.status != DomainStatus.AVAILABLE:
            raise LifecycleError(
                f"{self.domain} cannot be registered from {self.status.value}"
            )
        if years < 1:
            raise LifecycleError("registrations run for at least one year")
        first_time = self.created_at is None
        self.status = DomainStatus.REGISTERED
        self.owner = owner
        self.created_at = at
        self.expires_at = at + years * 365 * SECONDS_PER_DAY
        self._notices_sent = []
        kind = EventKind.REGISTERED if first_time else EventKind.REREGISTERED
        self._record(kind, at, f"owner={owner} years={years}")

    def renew(self, at: int, years: int = 1) -> None:
        """Extend the registration; allowed while registered or in grace."""
        if self.status not in (DomainStatus.REGISTERED, DomainStatus.AUTO_RENEW_GRACE):
            raise LifecycleError(
                f"{self.domain} cannot be renewed from {self.status.value}"
            )
        assert self.expires_at is not None
        self.expires_at += years * 365 * SECONDS_PER_DAY
        self.status = DomainStatus.REGISTERED
        self._notices_sent = []
        self._record(EventKind.RENEWED, at, f"years={years}")

    def restore(self, at: int) -> None:
        """Redeem from the RGP (the paper: "additional fees ... charged")."""
        if self.status != DomainStatus.REDEMPTION:
            raise LifecycleError(
                f"{self.domain} can only be restored from redemption, "
                f"not {self.status.value}"
            )
        assert self.expires_at is not None
        self.expires_at += 365 * SECONDS_PER_DAY
        self.status = DomainStatus.REGISTERED
        self._notices_sent = []
        self._record(EventKind.RESTORED, at)

    # -- time-driven transitions ------------------------------------------

    def tick(self, now: int) -> List[LifecycleEvent]:
        """Advance expiry processing to ``now``; returns new events.

        Idempotent per instant: calling twice with the same ``now``
        adds nothing the second time.
        """
        fresh: List[LifecycleEvent] = []
        if self.status == DomainStatus.AVAILABLE or self.expires_at is None:
            return fresh
        fresh.extend(self._send_due_notices(now))
        if self.status == DomainStatus.REGISTERED and now >= self.expires_at:
            self.status = DomainStatus.AUTO_RENEW_GRACE
            fresh.append(self._record(EventKind.EXPIRED, self.expires_at))
        if (
            self.status == DomainStatus.AUTO_RENEW_GRACE
            and now >= self.policy.grace_end(self.expires_at)
        ):
            self.status = DomainStatus.REDEMPTION
            fresh.append(
                self._record(
                    EventKind.ENTERED_REDEMPTION,
                    self.policy.grace_end(self.expires_at),
                )
            )
        if (
            self.status == DomainStatus.REDEMPTION
            and now >= self.policy.redemption_end(self.expires_at)
        ):
            self.status = DomainStatus.PENDING_DELETE
            fresh.append(
                self._record(
                    EventKind.ENTERED_PENDING_DELETE,
                    self.policy.redemption_end(self.expires_at),
                )
            )
        if (
            self.status == DomainStatus.PENDING_DELETE
            and now >= self.policy.delete_at(self.expires_at)
        ):
            released_at = self.policy.delete_at(self.expires_at)
            self.status = DomainStatus.AVAILABLE
            self.owner = None
            fresh.append(self._record(EventKind.RELEASED, released_at))
        # A large jump records notices and transitions in processing
        # order, which can interleave their historical timestamps
        # (the post-expiry notice is computed before the EXPIRED
        # transition): keep the audit log time-ordered.
        fresh.sort(key=lambda event: event.at)
        self.events.sort(key=lambda event: event.at)
        return fresh

    def _send_due_notices(self, now: int) -> List[LifecycleEvent]:
        """ERRP notifications: two before expiry, one after."""
        if self.status not in (DomainStatus.REGISTERED, DomainStatus.AUTO_RENEW_GRACE):
            return []
        assert self.expires_at is not None
        fresh = []
        due_times = [
            self.expires_at - days * SECONDS_PER_DAY
            for days in self.policy.notice_days_before
        ] + [
            self.expires_at + days * SECONDS_PER_DAY
            for days in self.policy.notice_days_after
        ]
        for due in due_times:
            if now >= due and due not in self._notices_sent:
                self._notices_sent.append(due)
                fresh.append(
                    self._record(
                        EventKind.EXPIRY_NOTICE,
                        due,
                        f"notice {len(self._notices_sent)}/3",
                    )
                )
        return fresh

    # -- queries -----------------------------------------------------------

    @property
    def notices_sent(self) -> int:
        return len(self._notices_sent)

    def became_nx_at(self) -> Optional[int]:
        """When DNS queries for the domain started yielding NXDOMAIN.

        That is the moment the delegation was pulled: entry into the
        redemption grace period — or release, whichever transition
        actually occurred last relative to the current status.
        """
        if self.status.resolves_in_dns or self.status == DomainStatus.AVAILABLE:
            # AVAILABLE before first registration: never resolved.
            for event in reversed(self.events):
                if event.kind in (
                    EventKind.ENTERED_REDEMPTION,
                    EventKind.RELEASED,
                ):
                    return event.at
            return None
        for event in reversed(self.events):
            if event.kind == EventKind.ENTERED_REDEMPTION:
                return event.at
        return None

    def _record(self, kind: EventKind, at: int, detail: str = "") -> LifecycleEvent:
        event = LifecycleEvent(kind, at, detail)
        self.events.append(event)
        return event

    def __repr__(self) -> str:
        return f"DomainLifecycle({str(self.domain)!r}, {self.status.value})"
