"""Registrars and drop-catching services.

Registrars are thin accounting entities (the paper registers its 19
domains across 101domain, GoDaddy, and Namecheap); drop-catch platforms
(DropCatch, CatchTiger, pool.com) reserve pending-delete domains and
re-register them the instant they are released — the mechanism behind
the paper's observation that domains with residual traffic get snapped
up quickly (§4.4, first 10 days).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dns.name import DomainName


@dataclass
class Registrar:
    """A domain registrar with simple price accounting."""

    name: str
    registration_fee: float = 12.0
    renewal_fee: float = 14.0
    restore_fee: float = 90.0
    revenue: float = 0.0
    registrations: int = 0

    def charge_registration(self, years: int = 1) -> float:
        amount = self.registration_fee * years
        self.revenue += amount
        self.registrations += 1
        return amount

    def charge_renewal(self, years: int = 1) -> float:
        amount = self.renewal_fee * years
        self.revenue += amount
        return amount

    def charge_restore(self) -> float:
        amount = self.restore_fee
        self.revenue += amount
        return amount


@dataclass
class _Reservation:
    domain: DomainName
    customer: str
    placed_at: int


class DropCatchService:
    """Reserves pending-delete domains for immediate re-registration.

    The registry consults :meth:`claim` at the moment a domain is
    released; the earliest reservation wins (these platforms are
    first-come-first-served per domain).
    """

    def __init__(self, name: str = "dropcatch") -> None:
        self.name = name
        self._reservations: Dict[DomainName, List[_Reservation]] = {}
        self.catches: int = 0

    def reserve(self, domain: DomainName, customer: str, at: int) -> None:
        """Place a reservation for ``domain`` on behalf of ``customer``."""
        queue = self._reservations.setdefault(domain, [])
        queue.append(_Reservation(domain, customer, at))
        queue.sort(key=lambda r: r.placed_at)

    def has_reservation(self, domain: DomainName) -> bool:
        return bool(self._reservations.get(domain))

    def pending_reservations(self, domain: DomainName) -> int:
        return len(self._reservations.get(domain, []))

    def claim(self, domain: DomainName) -> Optional[str]:
        """Pop the winning customer for a just-released domain."""
        queue = self._reservations.get(domain)
        if not queue:
            return None
        winner = queue.pop(0)
        if not queue:
            del self._reservations[domain]
        self.catches += 1
        return winner.customer
