"""§6 — security implications via the NXD-Honeypot.

Runs the complete §6 deployment end to end: generate six months of raw
traffic for the 19 registered domains (plus contamination), run the two
calibration deployments, learn the Figure 9 filter, record everything
in the honeypot, and derive the evaluation artifacts:

- :attr:`SecurityRunResult.table1` — the per-domain categorization;
- :func:`port_distribution` — Figures 10a/10b;
- :func:`inapp_browser_distribution` — Figure 13;
- :func:`botnet_country_distribution` — Figure 14;
- :func:`botnet_hostname_distribution` — Figure 15;
- :func:`botnet_victim_analysis` — the §6.4 botnet-takeover findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.honeypot.categorize import (
    CategorizedRequest,
    Category,
    Subcategory,
    TrafficCategorizer,
    category_counts,
)
from repro.honeypot.filtering import FilterStats, TwoStageFilter
from repro.honeypot.recorder import TrafficRecorder
from repro.honeypot.reverse_ip import ReverseIpTable
from repro.honeypot.server import HoneypotReport, NxdHoneypot
from repro.honeypot.webfilter import WebFilter
from repro.workloads.botnet import TASK_PATH, continent_of_country
from repro.workloads.control import (
    generate_control_traffic,
    generate_no_hosting_baseline,
    generate_platform_packets,
)
from repro.workloads.domains import registered_domain_profiles
from repro.workloads.honeytraffic import HoneypotTrafficGenerator


@dataclass
class SecurityRunResult:
    """Everything §6's figures read."""

    honeypot: NxdHoneypot
    no_hosting: TrafficRecorder
    control_group: TrafficRecorder
    noise_filter: TwoStageFilter
    filter_stats: FilterStats
    categorized: List[CategorizedRequest]
    table1: List[HoneypotReport]
    reverse_ip: ReverseIpTable

    def total_requests(self) -> int:
        return self.filter_stats.input_requests

    def category_totals(self) -> Dict[Category, int]:
        return category_counts(self.categorized)

    def shape_checks(self) -> Dict[str, bool]:
        """Table 1's qualitative shape."""
        totals = self.category_totals()
        ordered = sorted(totals, key=totals.get, reverse=True)
        by_domain = {report.domain: report.total for report in self.table1}
        return {
            "automated-largest": ordered[0] == Category.AUTOMATED,
            "crawler-substantial": totals[Category.WEB_CRAWLER]
            > totals[Category.USER_VISIT],
            "resheba-top-domain": self.table1[0].domain == "resheba.online",
            "gpclick-mostly-malicious": _gpclick_malicious_share(self.table1) > 0.9,
            "all-19-domains-reported": len(by_domain) == 19,
        }


def _gpclick_malicious_share(table1: List[HoneypotReport]) -> float:
    for report in table1:
        if report.domain == "gpclick.com" and report.total:
            return report.count(Subcategory.MALICIOUS_REQUEST) / report.total
    return 0.0


def run_security_experiment(
    rng: np.random.Generator,
    scale: float = 0.005,
    include_noise: bool = True,
    jobs: int = 1,
) -> SecurityRunResult:
    """The full §6 pipeline, from raw traffic to Table 1.

    ``jobs`` shards the noise-filter passes over a thread pool
    (output-identical to serial; see :meth:`TwoStageFilter.apply`).
    """
    reverse_ip = ReverseIpTable()
    web_filter = WebFilter()
    profiles = registered_domain_profiles()

    # Calibration deployments (two months each, §6.1).
    no_hosting = generate_no_hosting_baseline(rng, packets=3_000)
    control_group = generate_control_traffic(rng, requests=1_500)

    # The main collection (six months).
    generator = HoneypotTrafficGenerator(
        rng, scale=scale, reverse_ip=reverse_ip, web_filter=web_filter
    )
    categorizer = TrafficCategorizer(reverse_ip=reverse_ip, web_filter=web_filter)
    honeypot = NxdHoneypot([p.domain for p in profiles], categorizer)
    for request in generator.generate(include_noise=include_noise):
        honeypot.accept_request(request)
    if include_noise:
        for packet in generate_platform_packets(rng, count=2_000):
            honeypot.accept_packet(packet)

    honeypot.calibrate(no_hosting, control_group)
    _, stats = honeypot.filtered_requests(jobs=jobs)
    categorized = honeypot.categorized_requests(jobs=jobs)
    table1 = honeypot.reports()
    return SecurityRunResult(
        honeypot=honeypot,
        no_hosting=no_hosting,
        control_group=control_group,
        noise_filter=honeypot.noise_filter,
        filter_stats=stats,
        categorized=categorized,
        table1=table1,
        reverse_ip=reverse_ip,
    )


# ---------------------------------------------------------------------------
# Figure 10 — port distributions
# ---------------------------------------------------------------------------


@dataclass
class PortDistribution:
    """Top ports for the honeypot (filtered) and the control group."""

    honeypot_ports: List[Tuple[int, int]]
    control_ports: List[Tuple[int, int]]

    def shape_checks(self) -> Dict[str, bool]:
        """Figure 10: 80/443 dominate the NXDomain traffic; the AWS
        monitor port dominates the control group but is absent from
        the filtered NXDomain view."""
        honeypot_top = [port for port, _ in self.honeypot_ports[:2]]
        control_top = self.control_ports[0][0] if self.control_ports else None
        return {
            "http-https-dominate": set(honeypot_top) == {80, 443},
            "monitor-port-dominates-control": control_top == 52646,
            "monitor-port-filtered-out": all(
                port != 52646 for port, _ in self.honeypot_ports
            ),
        }


def port_distribution(result: SecurityRunResult, top_n: int = 8) -> PortDistribution:
    """Figures 10a/10b from the two recorders, post-filtering."""
    filtered_packets = result.noise_filter.filter_packets(
        result.honeypot.recorder.packets()
    )
    histogram: Dict[int, int] = {}
    for packet in filtered_packets:
        histogram[packet.dst_port] = histogram.get(packet.dst_port, 0) + 1
    honeypot_ports = sorted(histogram.items(), key=lambda kv: kv[1], reverse=True)
    return PortDistribution(
        honeypot_ports=honeypot_ports[:top_n],
        control_ports=result.control_group.top_ports(top_n),
    )


# ---------------------------------------------------------------------------
# Traffic concentration (Table 1's skew)
# ---------------------------------------------------------------------------


@dataclass
class TrafficConcentration:
    """How skewed the per-domain traffic distribution is.

    Table 1's totals are extremely concentrated — resheba.online alone
    holds ~35% of all requests and the top three domains ~74% — which
    is why the paper can study 19 domains and still capture most of
    the traffic phenomenon.
    """

    totals: List[int]

    @property
    def grand_total(self) -> int:
        return sum(self.totals)

    def top_share(self, k: int) -> float:
        if not self.totals or self.grand_total == 0:
            return 0.0
        ranked = sorted(self.totals, reverse=True)
        return sum(ranked[:k]) / self.grand_total

    def gini(self) -> float:
        """Gini coefficient of per-domain request counts."""
        values = sorted(self.totals)
        n = len(values)
        total = sum(values)
        if n == 0 or total == 0:
            return 0.0
        cumulative = 0
        weighted = 0
        for index, value in enumerate(values, start=1):
            cumulative += value
            weighted += cumulative
        # Standard formula: G = (n + 1 - 2 * sum(cum)/total) / n
        return (n + 1 - 2 * weighted / total) / n

    def shape_checks(self) -> Dict[str, bool]:
        return {
            "top1-over-25pct": self.top_share(1) > 0.25,
            "top3-over-60pct": self.top_share(3) > 0.60,
            "high-gini": self.gini() > 0.6,
        }


def traffic_concentration(result: SecurityRunResult) -> TrafficConcentration:
    return TrafficConcentration([report.total for report in result.table1])


# ---------------------------------------------------------------------------
# §6.3 narrative findings — email crawlers and regional search engines
# ---------------------------------------------------------------------------


@dataclass
class EmailCrawlerBreakdown:
    """§6.3: conf-cdn.com's file-grabber traffic is email providers.

    Paper: 53,094 of conf-cdn.com's file-grabber requests (95.1%) come
    from email-provider image crawlers — Gmail 30,884, Yahoo 13,528,
    Outlook 5,483 — implying the domain's assets are still embedded in
    circulating email.
    """

    domain: str
    file_grabber_total: int
    email_crawler_total: int
    by_provider: Dict[str, int]

    @property
    def email_share(self) -> float:
        if self.file_grabber_total == 0:
            return 0.0
        return self.email_crawler_total / self.file_grabber_total

    def shape_checks(self) -> Dict[str, bool]:
        gmail = self.by_provider.get("GmailImageProxy", 0)
        others = [
            count
            for name, count in self.by_provider.items()
            if name != "GmailImageProxy"
        ]
        return {
            "email-dominates-grabbers": self.email_share > 0.85,
            "gmail-largest-provider": bool(self.by_provider)
            and gmail >= max(others, default=0),
        }


def email_crawler_breakdown(
    result: SecurityRunResult, domain: str = "conf-cdn.com"
) -> EmailCrawlerBreakdown:
    """Provider split of one domain's file-grabber traffic."""
    from repro.honeypot.useragent import AgentKind, parse_user_agent

    lowered = domain.lower()
    grabbers = [
        item
        for item in result.categorized
        if item.request.host.lower() == lowered
        and item.subcategory == Subcategory.FILE_GRABBER
    ]
    by_provider: Dict[str, int] = {}
    email_total = 0
    for item in grabbers:
        agent = parse_user_agent(item.request.user_agent)
        if agent.kind == AgentKind.EMAIL_CRAWLER:
            email_total += 1
            by_provider[agent.name] = by_provider.get(agent.name, 0) + 1
    return EmailCrawlerBreakdown(
        domain=lowered,
        file_grabber_total=len(grabbers),
        email_crawler_total=email_total,
        by_provider=by_provider,
    )


def search_engine_breakdown(
    result: SecurityRunResult, domain: str
) -> Dict[str, int]:
    """Crawler-service split of one domain's search-engine traffic.

    §6.3's geographic correlation: previously-Russian domains are
    crawled predominantly by mail.ru/Yandex, US-hosted ones by
    Google/Bing.
    """
    lowered = domain.lower()
    histogram: Dict[str, int] = {}
    for item in result.categorized:
        if (
            item.request.host.lower() == lowered
            and item.subcategory == Subcategory.SEARCH_ENGINE
        ):
            name = item.agent_name or "unknown"
            histogram[name] = histogram.get(name, 0) + 1
    return dict(sorted(histogram.items(), key=lambda kv: kv[1], reverse=True))


def regional_correlation_checks(result: SecurityRunResult) -> Dict[str, bool]:
    """§6.3: regional search engines track the domains' former homes.

    Aggregated over all domains of each region — most individual
    non-Russian domains receive only a handful of search-engine visits
    at laptop scales.
    """
    regions = {p.domain: p.region for p in registered_domain_profiles()}
    ru_histogram: Dict[str, int] = {}
    us_histogram: Dict[str, int] = {}
    for domain, region in regions.items():
        histogram = search_engine_breakdown(result, domain)
        target = ru_histogram if region == "ru" else us_histogram
        for name, count in histogram.items():
            target[name] = target.get(name, 0) + count
    ru_regional = ru_histogram.get("Mail.Ru", 0) + ru_histogram.get("Yandex", 0)
    ru_total = sum(ru_histogram.values())
    us_global = us_histogram.get("Google", 0) + us_histogram.get("Bing", 0)
    us_total = sum(us_histogram.values())
    return {
        "ru-domains-crawled-regionally": ru_total > 0
        and ru_regional / ru_total > 0.5,
        "us-domains-crawled-globally": us_total > 0
        and us_global / us_total > 0.5,
    }


# ---------------------------------------------------------------------------
# Figure 13 — in-app browsers
# ---------------------------------------------------------------------------


def inapp_browser_distribution(result: SecurityRunResult) -> Dict[str, int]:
    """Requests per in-app browser across all domains (Figure 13)."""
    histogram: Dict[str, int] = {}
    for item in result.categorized:
        if item.subcategory == Subcategory.INAPP:
            name = item.agent_name or "Others"
            histogram[name] = histogram.get(name, 0) + 1
    return dict(sorted(histogram.items(), key=lambda kv: kv[1], reverse=True))


def inapp_shape_checks(histogram: Dict[str, int]) -> Dict[str, bool]:
    """Figure 13: WhatsApp leads (26%); messaging + social dominate.

    The check is sample-size aware: the paper's 3,808 in-app requests
    shrink to a few dozen at honeypot scales below 1%, where "WhatsApp
    is first" flips on single requests.  Below 60 samples WhatsApp only
    has to be present; above, it must hold a prominent (≥10%) share.
    """
    if not histogram:
        return {"nonempty": False}
    total = sum(histogram.values())
    whatsapp = histogram.get("WhatsApp", 0)
    messaging_social = sum(
        histogram.get(name, 0)
        for name in ("WhatsApp", "WeChat", "Facebook", "Twitter", "Instagram")
    )
    if total >= 60:
        whatsapp_ok = whatsapp / total >= 0.10
    else:
        whatsapp_ok = whatsapp >= 1
    return {
        "nonempty": True,
        "whatsapp-prominent": whatsapp_ok,
        "messaging-social-majority": messaging_social / total > 0.6,
    }


# ---------------------------------------------------------------------------
# Figures 14/15 + §6.4 — the gpclick botnet
# ---------------------------------------------------------------------------


@dataclass
class BotnetAnalysis:
    """§6.4's botnet-takeover findings, parsed from captured requests."""

    request_count: int
    user_agents: Dict[str, int]
    model_histogram: Dict[str, int]
    country_histogram: Dict[str, int]
    continent_histogram: Dict[str, int]
    hostname_histogram: Dict[str, int]
    distinct_phones: int

    def shape_checks(self) -> Dict[str, bool]:
        total_models = max(sum(self.model_histogram.values()), 1)
        nexus = sum(
            count
            for model, count in self.model_histogram.items()
            if model.startswith("Nexus")
        )
        total_hosts = max(sum(self.hostname_histogram.values()), 1)
        return {
            "single-user-agent": len(self.user_agents) == 1,
            "nexus-dominates": nexus / total_models > 0.9,
            "multi-continent": len(
                {c for c in self.continent_histogram if c}
            )
            >= 3,
            "google-proxy-majority": self.hostname_histogram.get("google-proxy", 0)
            / total_hosts
            > 0.45,
        }


def botnet_victim_analysis(result: SecurityRunResult) -> BotnetAnalysis:
    """Parse the gpclick getTask.php stream (Figures 12/14/15)."""
    requests = [
        item.request
        for item in result.categorized
        if item.request.host == "gpclick.com" and item.request.path == TASK_PATH
    ]
    user_agents: Dict[str, int] = {}
    models: Dict[str, int] = {}
    countries: Dict[str, int] = {}
    continents: Dict[str, int] = {}
    phones = set()
    for request in requests:
        user_agents[request.user_agent] = user_agents.get(request.user_agent, 0) + 1
        params = request.query_parameters()
        model = params.get("model", "").replace("%20", " ")
        if model:
            models[model] = models.get(model, 0) + 1
        country = params.get("country", "")
        if country:
            countries[country] = countries.get(country, 0) + 1
            continent = continent_of_country(country)
            if continent:
                continents[continent] = continents.get(continent, 0) + 1
        if "phone" in params:
            phones.add(params["phone"])
    hostnames = result.reverse_ip.hostname_histogram(
        [request.src_ip for request in requests]
    )
    return BotnetAnalysis(
        request_count=len(requests),
        user_agents=user_agents,
        model_histogram=models,
        country_histogram=countries,
        continent_histogram=continents,
        hostname_histogram=hostnames,
        distinct_phones=len(phones),
    )


def botnet_country_distribution(result: SecurityRunResult) -> Dict[str, int]:
    """Figure 14's axis: victims per phone country code."""
    return botnet_victim_analysis(result).country_histogram


def botnet_hostname_distribution(result: SecurityRunResult) -> Dict[str, int]:
    """Figure 15's axis: requests per source PTR group."""
    return botnet_victim_analysis(result).hostname_histogram
