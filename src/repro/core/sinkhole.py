"""NXDomain sinkholing (§7 future work).

The paper closes by proposing to "sinkhole NXDomain traffic to
dedicated analysis servers, so we can identify security problems
directly based on DNS traffic analysis" — i.e. classify the danger of
an NXDomain *from its query stream alone*, without spending money
registering it.

:class:`NxdomainSinkhole` is that analysis server: it subscribes to an
SIE channel (or is fed observations directly) and classifies each
newly seen NXDomain with the library's detectors — blocklist history
first (cheapest), then squatting against the popular-target list, then
the lexical DGA detector — and accumulates per-verdict query volume so
operators can rank which NXDomains are worth defensive registration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.blocklist.store import BlocklistStore
from repro.dga.detector import DgaDetector
from repro.dns.name import DomainName
from repro.passivedns.record import DnsObservation
from repro.squatting.detector import SquattingDetector


class SinkholeVerdict(enum.Enum):
    """Danger classification of one sinkholed NXDomain."""

    BLOCKLISTED = "blocklisted"
    SQUATTING = "squatting"
    DGA = "dga"
    UNCLASSIFIED = "unclassified"


@dataclass
class SinkholedDomain:
    """Accumulated evidence for one NXDomain."""

    domain: DomainName
    verdict: SinkholeVerdict
    detail: str = ""
    queries: int = 0
    first_seen: int = 0
    last_seen: int = 0

    @property
    def is_suspicious(self) -> bool:
        return self.verdict != SinkholeVerdict.UNCLASSIFIED


@dataclass
class SinkholeReport:
    """The operator-facing summary."""

    domains_by_verdict: Dict[SinkholeVerdict, int]
    queries_by_verdict: Dict[SinkholeVerdict, int]
    top_suspicious: List[SinkholedDomain]

    def total_domains(self) -> int:
        return sum(self.domains_by_verdict.values())

    def suspicious_fraction(self) -> float:
        total = self.total_domains()
        if total == 0:
            return 0.0
        benign = self.domains_by_verdict.get(SinkholeVerdict.UNCLASSIFIED, 0)
        return (total - benign) / total


class NxdomainSinkhole:
    """Classifies NXDomain query streams at the DNS level.

    Plug into a channel::

        channel.subscribe(sinkhole.ingest)

    Classification runs once per newly seen domain and is cached;
    subsequent observations only update volume counters, so the
    sinkhole keeps up with high-rate streams.
    """

    def __init__(
        self,
        dga_detector: DgaDetector,
        squatting_detector: Optional[SquattingDetector] = None,
        blocklist: Optional[BlocklistStore] = None,
    ) -> None:
        self.dga_detector = dga_detector
        self.squatting_detector = (
            squatting_detector if squatting_detector is not None else SquattingDetector()
        )
        self.blocklist = blocklist
        self._domains: Dict[DomainName, SinkholedDomain] = {}
        self.observations = 0

    # -- ingestion -------------------------------------------------------

    def ingest(self, observation: DnsObservation) -> SinkholedDomain:
        """Feed one channel observation (NXDomains only reach us)."""
        return self.observe(
            observation.registered_domain,
            observation.timestamp,
            observation.count,
        )

    def observe(
        self, domain: DomainName, timestamp: int, count: int = 1
    ) -> SinkholedDomain:
        self.observations += 1
        domain = domain.registered_domain()
        record = self._domains.get(domain)
        if record is None:
            verdict, detail = self._classify(domain)
            record = SinkholedDomain(
                domain=domain,
                verdict=verdict,
                detail=detail,
                first_seen=timestamp,
                last_seen=timestamp,
            )
            self._domains[domain] = record
        record.queries += count
        record.last_seen = max(record.last_seen, timestamp)
        record.first_seen = min(record.first_seen, timestamp)
        return record

    def _classify(self, domain: DomainName) -> Tuple[SinkholeVerdict, str]:
        if self.blocklist is not None:
            entry = self.blocklist.lookup(domain)
            if entry is not None:
                return SinkholeVerdict.BLOCKLISTED, entry.category.value
        match = self.squatting_detector.classify(domain)
        if match is not None:
            return (
                SinkholeVerdict.SQUATTING,
                f"{match.squat_type.value} of {match.target}",
            )
        if self.dga_detector.is_dga(domain):
            return SinkholeVerdict.DGA, f"p={self.dga_detector.probability(domain):.2f}"
        return SinkholeVerdict.UNCLASSIFIED, ""

    # -- reporting -----------------------------------------------------------

    def lookup(self, domain: DomainName) -> Optional[SinkholedDomain]:
        return self._domains.get(domain.registered_domain())

    def report(self, top_n: int = 20) -> SinkholeReport:
        domains_by_verdict: Dict[SinkholeVerdict, int] = {
            v: 0 for v in SinkholeVerdict
        }
        queries_by_verdict: Dict[SinkholeVerdict, int] = {
            v: 0 for v in SinkholeVerdict
        }
        for record in self._domains.values():
            domains_by_verdict[record.verdict] += 1
            queries_by_verdict[record.verdict] += record.queries
        suspicious = sorted(
            (r for r in self._domains.values() if r.is_suspicious),
            key=lambda r: r.queries,
            reverse=True,
        )
        return SinkholeReport(
            domains_by_verdict=domains_by_verdict,
            queries_by_verdict=queries_by_verdict,
            top_suspicious=suspicious[:top_n],
        )

    def __len__(self) -> int:
        return len(self._domains)
