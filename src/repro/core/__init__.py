"""The measurement study itself.

This package is the paper's primary contribution rebuilt as a library:
the §4 scale analyses (:mod:`repro.core.scale`), the §5 origin analyses
(:mod:`repro.core.origin`), the §6 honeypot security analyses
(:mod:`repro.core.security`), the §3.3 domain-selection criteria
(:mod:`repro.core.selection`), plain-text table/figure renderers
(:mod:`repro.core.reports`), and the end-to-end orchestrator
(:mod:`repro.core.study`).
"""

from repro.core.study import NxdomainStudy, StudyConfig

__all__ = ["NxdomainStudy", "StudyConfig"]
