"""Cross-seed robustness validation of the reproduction.

A reproduction that only holds at one seed is a coincidence.  This
module re-runs the scale and origin shape checks across many seeds and
reports per-check pass rates, giving a quantitative answer to "does
the qualitative shape of every figure survive sampling noise at this
population size?".  The bench harness runs it at the population size
it ships with; the CLI exposes it as ``repro-nxd validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.study import NxdomainStudy, StudyConfig
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.passivedns.pipeline import PipelineStats
from repro.rand import derive_seed


@dataclass
class CheckOutcome:
    """Pass/fail tally for one named shape check."""

    passes: int = 0
    failures: int = 0
    failing_seeds: List[int] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return self.passes + self.failures

    @property
    def pass_rate(self) -> float:
        return self.passes / self.runs if self.runs else 0.0


@dataclass
class ValidationReport:
    """Pass rates for every shape check across the seed sweep."""

    seeds: List[int]
    outcomes: Dict[str, CheckOutcome]

    def worst(self) -> List[tuple]:
        """(check, pass_rate) rows, least robust first."""
        rows = [
            (name, outcome.pass_rate, outcome.failing_seeds)
            for name, outcome in self.outcomes.items()
        ]
        rows.sort(key=lambda row: row[1])
        return rows

    def overall_pass_rate(self) -> float:
        total = sum(o.runs for o in self.outcomes.values())
        if total == 0:
            return 0.0
        return sum(o.passes for o in self.outcomes.values()) / total

    def robust(self, threshold: float = 0.8) -> bool:
        """True when every check passes at least ``threshold`` of runs."""
        return all(o.pass_rate >= threshold for o in self.outcomes.values())


def validate_shapes(
    seeds: Sequence[int],
    config: StudyConfig,
    include_origin: bool = True,
) -> ValidationReport:
    """Run the §4 (and optionally §5) shape checks per seed."""
    if not seeds:
        raise ConfigError("need at least one seed")
    outcomes: Dict[str, CheckOutcome] = {}

    def record(section: str, checks: Dict[str, bool], seed: int) -> None:
        for name, passed in checks.items():
            outcome = outcomes.setdefault(f"{section}.{name}", CheckOutcome())
            if passed:
                outcome.passes += 1
            else:
                outcome.failures += 1
                outcome.failing_seeds.append(seed)

    for seed in seeds:
        study = NxdomainStudy(seed=seed, config=config)
        scale = study.run_scale_analysis()
        for section, checks in scale.shape_checks().items():
            record(section, checks, seed)
        if include_origin:
            origin = study.run_origin_analysis()
            for section, checks in origin.shape_checks().items():
                record(section, checks, seed)
    return ValidationReport(seeds=list(seeds), outcomes=outcomes)


# ---------------------------------------------------------------------------
# fault sweep: shape-check survival under degraded collection
# ---------------------------------------------------------------------------


@dataclass
class SweepPoint:
    """Shape-check survival at one fault rate, aggregated over seeds."""

    rate: float
    report: ValidationReport
    #: Mean surviving fraction of NXDomain responses vs the clean trace.
    delivered_fraction: float
    dropped: int = 0
    duplicates_suppressed: int = 0
    store_failures: int = 0
    replay_recovered: int = 0

    @property
    def pass_rate(self) -> float:
        """Overall shape-check pass rate at this fault level."""
        return self.report.overall_pass_rate()


@dataclass
class FaultSweepReport:
    """The degradation curve: shape-check pass rate vs fault rate."""

    seeds: List[int]
    points: List[SweepPoint]

    def robust_up_to(self, rate: float, threshold: float = 1.0) -> bool:
        """True when every check holds at every point with rate ≤ ``rate``."""
        return all(
            point.report.robust(threshold)
            for point in self.points
            if point.rate <= rate
        )

    def baseline(self) -> SweepPoint:
        """The lowest-rate point (the clean-collection reference)."""
        return min(self.points, key=lambda point: point.rate)

    def regressions(self, gate: float) -> List[Tuple[float, str, List[int]]]:
        """(rate, check, seeds) that fail under faults but not cleanly.

        A small population can fail a shape check at 0% faults from
        sampling noise alone; what the fault harness must guarantee is
        that injecting faults up to ``gate`` does not *add* failures.
        """
        base = self.baseline()
        base_failures = {
            name: set(outcome.failing_seeds)
            for name, outcome in base.report.outcomes.items()
        }
        found: List[Tuple[float, str, List[int]]] = []
        for point in self.points:
            if point is base or point.rate > gate:
                continue
            for name, outcome in point.report.outcomes.items():
                fresh = set(outcome.failing_seeds) - base_failures.get(
                    name, set()
                )
                if fresh:
                    found.append((point.rate, name, sorted(fresh)))
        return found

    def rows(self) -> List[Tuple[str, str, str, str, str]]:
        """Render-ready degradation-curve rows (one per fault rate)."""
        rows = []
        for point in self.points:
            rows.append(
                (
                    f"{point.rate:.1%}",
                    f"{point.delivered_fraction:.4f}",
                    f"{point.pass_rate:.3f}",
                    f"{point.store_failures}/{point.replay_recovered}",
                    f"{point.duplicates_suppressed}",
                )
            )
        return rows


def fault_sweep(
    seeds: Sequence[int],
    config: StudyConfig,
    rates: Sequence[float] = (0.0, 0.01, 0.05, 0.10),
    include_origin: bool = False,
    spill_dir: Optional[Union[str, Path]] = None,
) -> FaultSweepReport:
    """Re-run the shape checks against fault-degraded collections.

    Each seed's trace is generated once (clean) and replayed through a
    :meth:`~repro.faults.plan.FaultPlan.loss` pipeline per rate, so the
    sweep isolates the effect of collection faults from trace sampling
    noise.  The fault schedule's seed is derived from the study seed,
    keeping the whole sweep bit-reproducible.  With ``spill_dir`` each
    degraded replay runs against a crash-safe on-disk spill store under
    ``<spill_dir>/rate-<rate>/seed-<seed>`` (results are identical; the
    sweep then also exercises the durable path end to end).
    """
    if not seeds:
        raise ConfigError("need at least one seed")
    if any(not 0 <= rate < 1 for rate in rates):
        raise ConfigError("fault rates must lie in [0, 1)")
    clean = {
        seed: NxdomainStudy(seed=seed, config=config).trace for seed in seeds
    }
    points: List[SweepPoint] = []
    for rate in rates:
        outcomes: Dict[str, CheckOutcome] = {}
        fractions: List[float] = []
        totals = PipelineStats()
        duplicates = 0
        for seed in seeds:
            base = clean[seed]
            if rate > 0:
                replay_spill = (
                    Path(spill_dir) / f"rate-{rate:.4f}" / f"seed-{seed}"
                    if spill_dir is not None
                    else None
                )
                degraded, stats = base.degraded(
                    FaultPlan.loss(rate),
                    seed=derive_seed(seed, "fault-sweep"),
                    spill_dir=replay_spill,
                )
                totals.dropped += stats.dropped
                totals.store_failures += stats.store_failures
                totals.replay_recovered += stats.replay_recovered
                duplicates += degraded.nx_db.duplicates_suppressed
            else:
                degraded = base
            base_total = base.nx_db.total_responses()
            fractions.append(
                degraded.nx_db.total_responses() / base_total
                if base_total
                else 0.0
            )
            study = NxdomainStudy(seed=seed, config=config, trace=degraded)
            scale = study.run_scale_analysis()
            sections = dict(scale.shape_checks())
            if include_origin:
                sections.update(study.run_origin_analysis().shape_checks())
            for section, checks in sections.items():
                for name, passed in checks.items():
                    outcome = outcomes.setdefault(
                        f"{section}.{name}", CheckOutcome()
                    )
                    if passed:
                        outcome.passes += 1
                    else:
                        outcome.failures += 1
                        outcome.failing_seeds.append(seed)
        points.append(
            SweepPoint(
                rate=rate,
                report=ValidationReport(seeds=list(seeds), outcomes=outcomes),
                delivered_fraction=sum(fractions) / len(fractions),
                dropped=totals.dropped,
                duplicates_suppressed=duplicates,
                store_failures=totals.store_failures,
                replay_recovered=totals.replay_recovered,
            )
        )
    return FaultSweepReport(seeds=list(seeds), points=points)
