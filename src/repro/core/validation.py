"""Cross-seed robustness validation of the reproduction.

A reproduction that only holds at one seed is a coincidence.  This
module re-runs the scale and origin shape checks across many seeds and
reports per-check pass rates, giving a quantitative answer to "does
the qualitative shape of every figure survive sampling noise at this
population size?".  The bench harness runs it at the population size
it ships with; the CLI exposes it as ``repro-nxd validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.study import NxdomainStudy, StudyConfig
from repro.errors import ConfigError


@dataclass
class CheckOutcome:
    """Pass/fail tally for one named shape check."""

    passes: int = 0
    failures: int = 0
    failing_seeds: List[int] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return self.passes + self.failures

    @property
    def pass_rate(self) -> float:
        return self.passes / self.runs if self.runs else 0.0


@dataclass
class ValidationReport:
    """Pass rates for every shape check across the seed sweep."""

    seeds: List[int]
    outcomes: Dict[str, CheckOutcome]

    def worst(self) -> List[tuple]:
        """(check, pass_rate) rows, least robust first."""
        rows = [
            (name, outcome.pass_rate, outcome.failing_seeds)
            for name, outcome in self.outcomes.items()
        ]
        rows.sort(key=lambda row: row[1])
        return rows

    def overall_pass_rate(self) -> float:
        total = sum(o.runs for o in self.outcomes.values())
        if total == 0:
            return 0.0
        return sum(o.passes for o in self.outcomes.values()) / total

    def robust(self, threshold: float = 0.8) -> bool:
        """True when every check passes at least ``threshold`` of runs."""
        return all(o.pass_rate >= threshold for o in self.outcomes.values())


def validate_shapes(
    seeds: Sequence[int],
    config: StudyConfig,
    include_origin: bool = True,
) -> ValidationReport:
    """Run the §4 (and optionally §5) shape checks per seed."""
    if not seeds:
        raise ConfigError("need at least one seed")
    outcomes: Dict[str, CheckOutcome] = {}

    def record(section: str, checks: Dict[str, bool], seed: int) -> None:
        for name, passed in checks.items():
            outcome = outcomes.setdefault(f"{section}.{name}", CheckOutcome())
            if passed:
                outcome.passes += 1
            else:
                outcome.failures += 1
                outcome.failing_seeds.append(seed)

    for seed in seeds:
        study = NxdomainStudy(seed=seed, config=config)
        scale = study.run_scale_analysis()
        for section, checks in scale.shape_checks().items():
            record(section, checks, seed)
        if include_origin:
            origin = study.run_origin_analysis()
            for section, checks in origin.shape_checks().items():
                record(section, checks, seed)
    return ValidationReport(seeds=list(seeds), outcomes=outcomes)
