"""§3.3 — domain selection criteria.

The paper registers NXDomains that (1) receive more than 10,000 DNS
queries per month in the passive database and (2) have been in
non-existent status for at least six months, mixing benign and
malicious candidates.  This module applies the same criteria to the
trace population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.clock import SECONDS_PER_DAY
from repro.passivedns.database import PassiveDnsDatabase
from repro.workloads.trace import DomainKind, TraceDomain, TraceResult
from repro.errors import ConfigError


@dataclass(frozen=True)
class SelectionCriteria:
    """The §3.3 thresholds (paper values; scale before use).

    ``require_expired`` restricts candidates to domains with WHOIS
    history — the paper's 19 registered domains are all previously
    registered names whose pre-expiration use it then investigates.
    """

    min_monthly_queries: float = 10_000.0
    min_nx_days: int = 180
    require_expired: bool = False

    def scaled(self, factor: float) -> "SelectionCriteria":
        """The same criteria under a volume-scaled trace."""
        if factor <= 0:
            raise ConfigError("factor must be positive")
        return SelectionCriteria(
            min_monthly_queries=self.min_monthly_queries * factor,
            min_nx_days=self.min_nx_days,
            require_expired=self.require_expired,
        )


@dataclass
class SelectedDomain:
    """One candidate passing the criteria."""

    record: TraceDomain
    monthly_queries: float
    nx_days: int

    @property
    def is_malicious(self) -> bool:
        return self.record.blocklisted or self.record.kind in (
            DomainKind.EXPIRED_DGA,
            DomainKind.EXPIRED_SQUAT,
            DomainKind.NEVER_REGISTERED_DGA,
        )


def select_candidates(
    trace: TraceResult,
    criteria: SelectionCriteria,
    now: Optional[int] = None,
) -> List[SelectedDomain]:
    """All trace domains meeting both §3.3 criteria."""
    nx_db: PassiveDnsDatabase = trace.nx_db
    selected = []
    for record in trace.population:
        if criteria.require_expired and not record.kind.is_expired:
            continue
        profile = nx_db.profile(record.domain)
        if profile is None:
            continue
        reference = now if now is not None else profile.last_seen
        nx_days = max((reference - record.became_nx_at) // SECONDS_PER_DAY, 0)
        if nx_days < criteria.min_nx_days:
            continue
        if record.activity_days < criteria.min_nx_days:
            # Still queried after six months NX, per the paper's
            # "frequently queried over an extended period" reading.
            continue
        monthly = profile.monthly_rate()
        if monthly < criteria.min_monthly_queries:
            continue
        selected.append(
            SelectedDomain(record=record, monthly_queries=monthly, nx_days=nx_days)
        )
    selected.sort(key=lambda s: s.monthly_queries, reverse=True)
    return selected


def pick_study_set(
    candidates: List[SelectedDomain],
    count: int = 19,
    malicious_target: int = 8,
) -> List[SelectedDomain]:
    """The paper's mix: 19 domains, 8 malicious + 11 benign, chosen
    from the top of the traffic ranking within each class."""
    malicious = [c for c in candidates if c.is_malicious][:malicious_target]
    benign_needed = count - len(malicious)
    benign = [c for c in candidates if not c.is_malicious][:benign_needed]
    chosen = malicious + benign
    chosen.sort(key=lambda s: s.monthly_queries, reverse=True)
    return chosen[:count]


def selection_shape_checks(
    candidates: List[SelectedDomain], study_set: List[SelectedDomain]
) -> Dict[str, bool]:
    return {
        "candidates-exist": len(candidates) > 0,
        "study-set-bounded": len(study_set) <= 19,
        "has-malicious-and-benign": (
            any(s.is_malicious for s in study_set)
            and any(not s.is_malicious for s in study_set)
        )
        if len(study_set) >= 4
        else True,
    }
