"""The end-to-end study orchestrator (Figure 2).

:class:`NxdomainStudy` wires the whole methodology together: generate
the passive DNS trace, run the scale analyses, run the origin analyses
(WHOIS join, DGA census, squatting census, blocklist cross-reference),
apply the §3.3 selection criteria, run the honeypot experiment, and
render every table and figure.

>>> study = NxdomainStudy(seed=7, config=StudyConfig(trace_domains=2_000))
>>> scale = study.run_scale_analysis()
>>> scale.monthly_series.shape_checks()["window-covered"]
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core import origin as origin_mod
from repro.core import reports
from repro.core import scale as scale_mod
from repro.core import security as security_mod
from repro.core import selection as selection_mod
from repro.dga.detector import DgaDetector
from repro.faults.plan import FaultPlan
from repro.passivedns.pipeline import PipelineStats
from repro.rand import SeedSequenceFactory
from repro.squatting.detector import SquattingDetector
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig, TraceResult


@dataclass
class StudyConfig:
    """Study-wide knobs (defaults match the benchmark harness)."""

    trace_domains: int = 20_000
    squat_count: int = 450
    honeypot_scale: float = 0.005
    blocklist_sample_ratio: float = 0.25
    expiry_timeline_sample: int = 1_000
    selection_min_monthly: float = 50.0
    dga_samples_per_family: int = 200
    #: Census operating point.  Production in-line detectors run at
    #: high precision; 0.9 lands the flagged share near the paper's 3%
    #: (see the threshold-sweep ablation bench).
    dga_threshold: float = 0.9
    #: When set, the generated trace is replayed through a faulted
    #: resilient ingestion pipeline before any analysis — the §4
    #: analyses then measure what a degraded collection would show.
    #: ``None`` (the default) leaves the pipeline untouched and the
    #: study byte-identical to a pre-fault-harness run.
    fault_plan: Optional[FaultPlan] = None
    #: Worker processes for trace query emission.  Generation is
    #: fingerprint-identical at any worker count (per-record seed
    #: streams, population-order merge), so this is purely a wall-time
    #: knob.
    trace_jobs: int = 1
    #: Worker count for the analysis side: the store's chunk-parallel
    #: aggregate builders (monthly series, TLD histogram, lifespan
    #: decay, digest, fingerprint) plus the sharded §4–§6 loops
    #: (expiry timeline, WHOIS join, honeypot noise filter).  Every
    #: result is bit-identical at any worker count — like
    #: ``trace_jobs``, purely a wall-time knob.
    aggregate_jobs: int = 1
    #: When set, the NX store backing every analysis is the crash-safe
    #: on-disk segment store under this directory (committed as one
    #: manifest generation; reopened stores are fingerprint-verified).
    #: Every §4 aggregate stays byte-identical to the in-memory path —
    #: see ``docs/RESILIENCE.md``.
    spill_dir: Optional[str] = None

    def trace_config(self) -> TraceConfig:
        return TraceConfig(
            total_domains=self.trace_domains, squat_count=self.squat_count
        )


@dataclass
class ScaleAnalysis:
    """The §4 bundle."""

    monthly_series: scale_mod.MonthlySeries
    tld_distribution: scale_mod.TldDistribution
    lifespan: scale_mod.LifespanDistribution
    expiry_timeline: scale_mod.ExpiryTimeline
    long_lived: scale_mod.LongLivedCohort
    total_responses: int
    unique_domains: int

    def shape_checks(self) -> Dict[str, Dict[str, bool]]:
        return {
            "figure3": self.monthly_series.shape_checks(),
            "figure4": self.tld_distribution.shape_checks(),
            "figure5": self.lifespan.shape_checks(),
            "figure6": self.expiry_timeline.shape_checks(),
            "s44-long-lived": self.long_lived.shape_checks(),
        }


@dataclass
class OriginAnalysis:
    """The §5 bundle."""

    whois_join: origin_mod.WhoisJoinResult
    dga_census: origin_mod.DgaCensus
    dga_registration: origin_mod.DgaRegistrationRate
    squatting_census: origin_mod.SquattingCensus
    blocklist_census: origin_mod.BlocklistCensus

    def shape_checks(self) -> Dict[str, Dict[str, bool]]:
        return {
            "whois-join": self.whois_join.shape_checks(),
            "dga": self.dga_census.shape_checks(),
            "dga-registration": self.dga_registration.shape_checks(),
            "figure7": self.squatting_census.shape_checks(),
            "figure8": self.blocklist_census.shape_checks(),
        }


class NxdomainStudy:
    """One seeded, reproducible run of the full measurement study."""

    def __init__(
        self,
        seed: int = 0,
        config: Optional[StudyConfig] = None,
        trace: Optional[TraceResult] = None,
    ) -> None:
        self.seed = seed
        self.config = config if config is not None else StudyConfig()
        self._seeds = SeedSequenceFactory(seed)
        #: A pre-built trace to analyze instead of generating one —
        #: how the fault sweep reuses one generated trace across many
        #: degradation levels without paying generation per level.
        self._base_trace = trace
        self._trace: Optional[TraceResult] = None
        self._detector: Optional[DgaDetector] = None
        self._security: Optional[security_mod.SecurityRunResult] = None
        #: Ingestion counters from the fault replay (None until the
        #: trace is built, and still None when no fault plan is set).
        self.fault_stats: Optional[PipelineStats] = None

    # -- shared artifacts (built lazily, cached) ---------------------------

    @property
    def trace(self) -> TraceResult:
        """The 8-year passive DNS trace (generated once per study)."""
        if self._trace is None:
            if self._base_trace is not None:
                base = self._base_trace
            else:
                generator = NxdomainTraceGenerator(
                    seed=self._seeds.child_seed("trace"),
                    config=self.config.trace_config(),
                )
                base = generator.generate(jobs=self.config.trace_jobs)
            if self.config.fault_plan is not None:
                base, self.fault_stats = base.degraded(
                    self.config.fault_plan,
                    seed=self._seeds.child_seed("fault-injection"),
                )
            if self.config.spill_dir is not None:
                base = base.spilled(self.config.spill_dir)
            # Set after every transform so degraded/spilled rebuilds
            # inherit the knob too (it changes scheduling, not output).
            base.nx_db.aggregate_jobs = self.config.aggregate_jobs
            base.pre_expiry_db.aggregate_jobs = self.config.aggregate_jobs
            self._trace = base
        return self._trace

    @property
    def dga_detector(self) -> DgaDetector:
        if self._detector is None:
            self._detector = DgaDetector.train_default(
                seed=self._seeds.child_seed("dga-detector"),
                samples_per_family=self.config.dga_samples_per_family,
                threshold=self.config.dga_threshold,
            )
        return self._detector

    # -- §4 ------------------------------------------------------------------

    def run_scale_analysis(self) -> ScaleAnalysis:
        trace = self.trace
        return ScaleAnalysis(
            monthly_series=scale_mod.monthly_response_series(trace.nx_db),
            tld_distribution=scale_mod.tld_distribution(trace.nx_db),
            lifespan=scale_mod.lifespan_distribution(trace.nx_db),
            expiry_timeline=scale_mod.expiry_timeline(
                trace,
                sample_size=self.config.expiry_timeline_sample,
                rng=self._seeds.rng("expiry-sample"),
                jobs=self.config.aggregate_jobs,
            ),
            long_lived=scale_mod.long_lived_cohort(trace.nx_db, min_years=2.0),
            total_responses=trace.nx_db.total_responses(),
            unique_domains=trace.nx_db.unique_domains(),
        )

    # -- §5 ------------------------------------------------------------------

    def run_origin_analysis(self) -> OriginAnalysis:
        trace = self.trace
        domains = [record.domain for record in trace.population]
        return OriginAnalysis(
            whois_join=origin_mod.whois_join(
                domains, trace.whois, jobs=self.config.aggregate_jobs
            ),
            dga_census=origin_mod.dga_census(trace, self.dga_detector),
            dga_registration=origin_mod.dga_registration_rate(trace),
            squatting_census=origin_mod.squatting_census(
                trace, SquattingDetector()
            ),
            blocklist_census=origin_mod.blocklist_census(
                trace,
                sample_ratio=self.config.blocklist_sample_ratio,
                rng=self._seeds.rng("blocklist-sample"),
            ),
        )

    # -- §3.3 ------------------------------------------------------------------

    def run_selection(self) -> List[selection_mod.SelectedDomain]:
        criteria = selection_mod.SelectionCriteria(
            min_monthly_queries=self.config.selection_min_monthly,
            require_expired=True,
        )
        candidates = selection_mod.select_candidates(self.trace, criteria)
        return selection_mod.pick_study_set(candidates)

    # -- §6 ------------------------------------------------------------------

    def run_security_analysis(self) -> security_mod.SecurityRunResult:
        if self._security is None:
            self._security = security_mod.run_security_experiment(
                self._seeds.rng("honeypot"),
                scale=self.config.honeypot_scale,
                jobs=self.config.aggregate_jobs,
            )
        return self._security

    # -- reporting ----------------------------------------------------------------

    def full_report(self) -> str:
        """Every table and figure, rendered."""
        scale = self.run_scale_analysis()
        origin = self.run_origin_analysis()
        security = self.run_security_analysis()
        ports = security_mod.port_distribution(security)
        inapp = security_mod.inapp_browser_distribution(security)
        sections = [
            f"NXDomain study (seed={self.seed}) — "
            f"{scale.total_responses:,} responses over "
            f"{scale.unique_domains:,} NXDomains",
            reports.render_figure3(scale.monthly_series),
            reports.render_figure4(scale.tld_distribution),
            reports.render_figure5(scale.lifespan),
            reports.render_figure6(scale.expiry_timeline),
            reports.render_long_lived(scale.long_lived),
            reports.render_whois_join(origin.whois_join),
            reports.render_dga_census(origin.dga_census),
            reports.render_dga_registration(origin.dga_registration),
            reports.render_figure7(origin.squatting_census),
            reports.render_figure8(origin.blocklist_census),
            reports.render_table1(security),
            reports.render_figure10(ports),
            reports.render_figure13(
                inapp, security_mod.inapp_shape_checks(inapp)
            ),
            reports.render_figure14(
                security_mod.botnet_country_distribution(security)
            ),
            reports.render_figure15(
                security_mod.botnet_hostname_distribution(security)
            ),
        ]
        return "\n\n".join(sections)
