"""§4 — the scale of NXDomains.

Four analyses over the passive DNS database:

- :func:`monthly_response_series` — Figure 3's per-month NXDomain
  response volume and its year-over-year shape;
- :func:`tld_distribution` — Figure 4's top-TLD ranking with domain
  and query counts;
- :func:`lifespan_distribution` — Figure 5's decay of domains (and
  their queries) across days spent in NX status;
- :func:`expiry_timeline` — Figure 6's average query volume 60 days
  before to 120 days after domains become non-existent, computed over
  a sample of long-lived NXDomains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.clock import SECONDS_PER_DAY
from repro.parallel import map_shards, shard_bounds
from repro.passivedns.database import PassiveDnsDatabase
from repro.workloads.trace import TraceResult
from repro.errors import RangeError

# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------


@dataclass
class MonthlySeries:
    """NXDomain responses per month with per-year aggregates."""

    by_month: Dict[str, int]

    def yearly_average(self) -> Dict[int, float]:
        """Average responses per month, per year."""
        sums: Dict[int, List[int]] = {}
        for month_key, value in self.by_month.items():
            year = int(month_key[:4])
            sums.setdefault(year, []).append(value)
        return {
            year: sum(values) / len(values) for year, values in sorted(sums.items())
        }

    def total(self) -> int:
        return sum(self.by_month.values())

    def shape_checks(self) -> Dict[str, bool]:
        """Figure 3's qualitative shape: rise to 2016, flat-ish middle,
        steep 2021 rise, 2022 higher still."""
        yearly = self.yearly_average()
        required = {2014, 2016, 2019, 2020, 2021, 2022}
        if not required <= set(yearly):
            return {"window-covered": False}
        return {
            "window-covered": True,
            "rises-2014-to-2016": yearly[2016] > yearly[2014],
            "flat-2016-to-2020": yearly[2020] < 1.6 * yearly[2016],
            "steep-rise-2021": yearly[2021] > 1.35 * yearly[2020],
            "2022-exceeds-2021": yearly[2022] > 0.95 * yearly[2021],
        }

    def summary(self) -> str:
        yearly = self.yearly_average()
        rows = ", ".join(f"{year}: {avg:,.0f}/mo" for year, avg in yearly.items())
        return f"NXDomain responses ({self.total():,} total) — {rows}"


def monthly_response_series(nx_db: PassiveDnsDatabase) -> MonthlySeries:
    """Figure 3's series from the passive DNS store."""
    return MonthlySeries(nx_db.monthly_response_series())


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------


@dataclass
class TldDistribution:
    """Top TLDs by unique NXDomains, with their query volumes."""

    rows: List[Tuple[str, int, int]]  # (tld, domains, queries)

    def top(self, n: int = 20) -> List[Tuple[str, int, int]]:
        return self.rows[:n]

    def rank_of(self, tld: str) -> Optional[int]:
        for index, (name, _, _) in enumerate(self.rows):
            if name == tld:
                return index + 1
        return None

    def shape_checks(self) -> Dict[str, bool]:
        """Figure 4's headline: .com first; .net/.cn/.ru/.org in the
        top five; query ranking tracks domain ranking."""
        top5 = {tld for tld, _, _ in self.rows[:5]}
        by_queries = sorted(self.rows, key=lambda r: r[2], reverse=True)
        top5_by_queries = {tld for tld, _, _ in by_queries[:5]}
        return {
            "com-first": bool(self.rows) and self.rows[0][0] == "com",
            "top5-has-cctlds": len({"cn", "ru"} & top5) == 2,
            "net-org-in-top5": len({"net", "org"} & top5) >= 1,
            "query-rank-tracks-domain-rank": len(top5 & top5_by_queries) >= 3,
        }


def tld_distribution(nx_db: PassiveDnsDatabase, top_n: int = 20) -> TldDistribution:
    return TldDistribution(nx_db.top_tlds(top_n))


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------


@dataclass
class LifespanDistribution:
    """Domains and queries per day-in-NX-status (0..59)."""

    domains_per_day: np.ndarray
    queries_per_day: np.ndarray

    def shape_checks(self) -> Dict[str, bool]:
        """Figure 5: sharp decrease over the first ten days, slower
        after; the query series tracks the domain series."""
        d = self.domains_per_day.astype(float)
        if d[0] == 0:
            return {"nonempty": False}
        early_drop = (d[0] - d[10]) / d[0]
        late_drop = (d[10] - d[50]) / max(d[10], 1.0)
        return {
            "nonempty": True,
            "fast-early-decay": early_drop > 0.3,
            "slower-late-decay": (late_drop / 40) < (early_drop / 10),
            "queries-track-domains": bool(
                np.corrcoef(
                    self.domains_per_day, self.queries_per_day
                )[0, 1]
                > 0.5
            ),
        }


def lifespan_distribution(
    nx_db: PassiveDnsDatabase, max_days: int = 60
) -> LifespanDistribution:
    domains, queries = nx_db.lifespan_decay(max_days)
    return LifespanDistribution(domains, queries)


# ---------------------------------------------------------------------------
# §4.4's long-lived cohort
# ---------------------------------------------------------------------------


@dataclass
class LongLivedCohort:
    """NXDomains in NX status for years yet still receiving queries.

    §4.4: "We discover 1,018,964 NXDomains receiving a total of
    107,020,820 DNS queries as of 2022, while they have been in
    non-existent status for more than 5 years."
    """

    min_years: float
    domain_count: int
    total_queries: int
    population_domains: int

    @property
    def cohort_fraction(self) -> float:
        if self.population_domains == 0:
            return 0.0
        return self.domain_count / self.population_domains

    def shape_checks(self) -> Dict[str, bool]:
        """The cohort exists and is a small (sub-10%) minority — the
        heavy tail of Figure 5, not the bulk."""
        return {
            "cohort-nonempty": self.domain_count > 0,
            "cohort-minority": self.cohort_fraction < 0.10,
            "queries-nonzero": self.total_queries > 0,
        }


def long_lived_cohort(
    nx_db: PassiveDnsDatabase, min_years: float = 5.0
) -> LongLivedCohort:
    """Domains whose observed NX query span exceeds ``min_years``.

    Span is measured first-to-last observation in the NX store, the
    same proxy the paper has (it cannot see a deletion event either).
    Query volume counts the cohort's entire observed NX traffic.
    """
    threshold_days = min_years * 365
    domain_count = 0
    total_queries = 0
    population = 0
    for profile in nx_db.profiles():
        population += 1
        if profile.lifespan_days() > threshold_days:
            domain_count += 1
            total_queries += profile.total_queries
    return LongLivedCohort(
        min_years=min_years,
        domain_count=domain_count,
        total_queries=total_queries,
        population_domains=population,
    )


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------


@dataclass
class ExpiryTimeline:
    """Average daily queries around the became-NX pivot.

    Index 0 = 60 days before the pivot; index 60 = pivot;
    index 179 = 119 days after.
    """

    average_series: np.ndarray
    sampled_domains: int
    days_before: int = 60
    days_after: int = 120

    def at_offset(self, day_offset: int) -> float:
        """Average queries at ``day_offset`` relative to the pivot."""
        index = self.days_before + day_offset
        if not 0 <= index < len(self.average_series):
            raise RangeError(f"offset {day_offset} outside timeline")
        return float(self.average_series[index])

    def shape_checks(self) -> Dict[str, bool]:
        """Figure 6: a spike ~30 days after the pivot that exceeds the
        pre-expiry level, and lower overall post-expiry volume."""
        series = self.average_series
        pre = series[: self.days_before]
        post = series[self.days_before :]
        spike_window = post[25:36].mean()
        post_rest = np.concatenate([post[:20], post[45:]]).mean()
        return {
            "sampled": self.sampled_domains > 0,
            "spike-around-day-30": bool(spike_window > 1.5 * post_rest),
            "spike-exceeds-pre-expiry": bool(spike_window > pre.mean()),
            "post-volume-below-pre": bool(post_rest < pre.mean()),
        }


def expiry_timeline(
    trace: TraceResult,
    sample_size: int = 1_000,
    min_nx_days: int = 120,
    rng: Optional[np.random.Generator] = None,
    jobs: int = 1,
) -> ExpiryTimeline:
    """Figure 6 over a sample of long-lived expired NXDomains.

    Combines the pre-expiry (NOERROR) store for the 60 days before the
    pivot with the NX store for the 120 days after, exactly the two
    sides of the paper's status-change axis.

    ``jobs`` shards the sampled candidates over a thread pool (the
    per-domain series are CSR-index numpy gathers over a quiescent
    store).  Each shard accumulates its own integer series and the
    shard sums are added in shard order; integer addition commutes
    and every value stays far below 2**53, so the float average is
    bit-identical to the serial loop at any worker count.
    """
    candidates = [
        record
        for record in trace.expired_domains()
        if record.activity_days >= min_nx_days
    ]
    if rng is not None and len(candidates) > sample_size:
        indices = rng.choice(len(candidates), size=sample_size, replace=False)
        candidates = [candidates[int(i)] for i in indices]
    else:
        candidates = candidates[:sample_size]
    # Build the shared caches (CSR index, columns) once before the
    # shards fan out, so worker threads only read published state.
    if jobs > 1 and candidates:
        trace.pre_expiry_db.warm_query_caches()
        trace.nx_db.warm_query_caches()

    def accumulate_shard(bounds: Tuple[int, int]) -> np.ndarray:
        lo, hi = bounds
        shard_sum = np.zeros(180, dtype=np.int64)
        for record in candidates[lo:hi]:
            pivot = record.became_nx_at
            before = trace.pre_expiry_db.daily_series_for(
                record.domain, pivot - 60 * SECONDS_PER_DAY, pivot
            )
            after = trace.nx_db.daily_series_for(
                record.domain, pivot, pivot + 120 * SECONDS_PER_DAY
            )
            shard_sum[:60] += before
            shard_sum[60:] += after
        return shard_sum

    accumulator = np.zeros(180, dtype=np.int64)
    for shard_sum in map_shards(
        accumulate_shard, shard_bounds(len(candidates), jobs), jobs
    ):
        accumulator += shard_sum
    count = max(len(candidates), 1)
    return ExpiryTimeline(
        accumulator.astype(float) / count, sampled_domains=len(candidates)
    )
