"""§5 — the origin of NXDomains.

Three analyses over the trace population:

- :func:`whois_join` — §5.1's split of NXDomains into expired
  (historic WHOIS record exists) versus never-registered;
- :func:`dga_census` — §5.2's DGA share of the expired population,
  via the feature-based detector, with ground-truth scoring;
- :func:`squatting_census` — Figure 7's per-type squatting counts;
- :func:`blocklist_census` — Figure 8's category split of blocklisted
  expired NXDomains, run through the rate-limited API on a random
  sample exactly as the paper was forced to do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.blocklist.categories import ThreatCategory
from repro.dga.detector import DetectorMetrics, DgaDetector
from repro.dns.name import DomainName
from repro.errors import RateLimitExceeded
from repro.parallel import map_shards, shard_bounds
from repro.passivedns.sampling import sample_domains
from repro.squatting.detector import SquattingDetector, SquattingType
from repro.whois.history import WhoisHistoryDatabase
from repro.workloads.trace import DomainKind, TraceResult

# ---------------------------------------------------------------------------
# §5.1 WHOIS join
# ---------------------------------------------------------------------------


@dataclass
class WhoisJoinResult:
    """Expired vs never-registered split of the NXDomain population."""

    total_domains: int
    with_history: int
    never_registered: int

    @property
    def expired_fraction(self) -> float:
        return self.with_history / self.total_domains if self.total_domains else 0.0

    def shape_checks(self) -> Dict[str, bool]:
        """§5.1: the never-registered population dwarfs the expired one
        (paper: 99.94% vs 0.06%; our population inflates the expired
        share for analyzability but preserves the ordering)."""
        return {
            "never-registered-dominates": self.never_registered > self.with_history,
            "expired-nonempty": self.with_history > 0,
        }


def whois_join(
    domains: List[DomainName],
    whois: WhoisHistoryDatabase,
    jobs: int = 1,
) -> WhoisJoinResult:
    """§5.1's expired/never-registered split of the population.

    ``jobs`` shards the domain list over a thread pool of independent
    read-only :meth:`WhoisHistoryDatabase.join` calls; the per-shard
    counts sum in shard order, so the result equals the one serial
    join at any worker count.
    """
    def join_shard(bounds: Tuple[int, int]):
        lo, hi = bounds
        return whois.join(domains[lo:hi])

    total = 0
    hit_count = 0
    never_registered = 0
    for result in map_shards(
        join_shard, shard_bounds(len(domains), jobs), jobs
    ):
        total += result.total
        hit_count += result.hit_count
        never_registered += result.never_registered_count
    return WhoisJoinResult(
        total_domains=total,
        with_history=hit_count,
        never_registered=never_registered,
    )


# ---------------------------------------------------------------------------
# §5.2 DGA census
# ---------------------------------------------------------------------------


@dataclass
class DgaCensus:
    """DGA share of the expired population."""

    expired_total: int
    flagged: int
    ground_truth: Optional[DetectorMetrics] = None

    @property
    def flagged_fraction(self) -> float:
        return self.flagged / self.expired_total if self.expired_total else 0.0

    def shape_checks(self) -> Dict[str, bool]:
        """§5.2: a small but significant share (paper: 3%) of expired
        NXDomains are DGA; the detector catches the planted families."""
        checks = {
            "flagged-nonzero": self.flagged > 0,
            "flagged-minority": self.flagged_fraction < 0.5,
        }
        if self.ground_truth is not None:
            checks["recall-adequate"] = self.ground_truth.recall > 0.6
            # The non-DGA expired population includes squatting names
            # (brand+keyword mash-ups) whose lexical statistics sit
            # between English and random; the operating point trades a
            # modest FPR for recall, as in-line detectors do.
            checks["fpr-low"] = self.ground_truth.false_positive_rate < 0.20
        return checks


def dga_census(
    trace: TraceResult, detector: Optional[DgaDetector] = None
) -> DgaCensus:
    """Run the detector over every expired NXDomain."""
    if detector is None:
        detector = DgaDetector.train_default(
            seed=0, samples_per_family=150, threshold=0.9
        )
    expired = trace.expired_domains()
    if not expired:
        return DgaCensus(0, 0)
    flags = detector.classify([record.domain for record in expired])
    truth = [record.kind == DomainKind.EXPIRED_DGA for record in expired]
    metrics = DetectorMetrics(
        true_positives=sum(1 for f, t in zip(flags, truth) if f and t),
        false_positives=sum(1 for f, t in zip(flags, truth) if f and not t),
        true_negatives=sum(1 for f, t in zip(flags, truth) if not f and not t),
        false_negatives=sum(1 for f, t in zip(flags, truth) if not f and t),
    )
    return DgaCensus(
        expired_total=len(expired),
        flagged=sum(flags),
        ground_truth=metrics,
    )


@dataclass
class DgaRegistrationRate:
    """How many DGA domains were ever actually registered.

    §5.1 cites Plohmann et al.: only 0.62% of DGA domains are ever
    registered — botmasters register a handful of rendezvous points
    and the rest of each day's candidates live and die as NXDomains.
    """

    registered_dga: int
    never_registered_dga: int

    @property
    def total_dga(self) -> int:
        return self.registered_dga + self.never_registered_dga

    @property
    def registration_rate(self) -> float:
        return self.registered_dga / self.total_dga if self.total_dga else 0.0

    def shape_checks(self) -> Dict[str, bool]:
        return {
            "dga-exists": self.total_dga > 0,
            "registration-is-rare": self.registration_rate < 0.10,
        }


def dga_registration_rate(trace: TraceResult) -> DgaRegistrationRate:
    """The registered-vs-never split of the trace's DGA population."""
    return DgaRegistrationRate(
        registered_dga=len(trace.domains_of_kind(DomainKind.EXPIRED_DGA)),
        never_registered_dga=len(
            trace.domains_of_kind(DomainKind.NEVER_REGISTERED_DGA)
        ),
    )


# ---------------------------------------------------------------------------
# Figure 7 squatting census
# ---------------------------------------------------------------------------


@dataclass
class SquattingCensus:
    """Per-type squatting counts over the expired population."""

    counts: Dict[SquattingType, int]
    expired_total: int

    @property
    def total_squatting(self) -> int:
        return sum(self.counts.values())

    def shape_checks(self) -> Dict[str, bool]:
        """Figure 7's ordering: typo and combo dominate; dot next;
        bit and homo are rare."""
        c = self.counts
        return {
            "typo-top-two": c[SquattingType.TYPO]
            >= max(c[SquattingType.DOT], c[SquattingType.BIT], c[SquattingType.HOMO]),
            "combo-top-two": c[SquattingType.COMBO]
            >= max(c[SquattingType.DOT], c[SquattingType.BIT], c[SquattingType.HOMO]),
            "dot-above-bit-homo": c[SquattingType.DOT]
            >= max(c[SquattingType.BIT], c[SquattingType.HOMO]),
            "bit-homo-rare": (c[SquattingType.BIT] + c[SquattingType.HOMO])
            < 0.2 * max(self.total_squatting, 1),
        }


def squatting_census(
    trace: TraceResult, detector: Optional[SquattingDetector] = None
) -> SquattingCensus:
    if detector is None:
        detector = SquattingDetector()
    expired = trace.expired_domains()
    counts = detector.census(record.domain for record in expired)
    return SquattingCensus(counts=counts, expired_total=len(expired))


@dataclass
class SquattingAccuracy:
    """Census quality against the trace's planted ground truth."""

    planted: Dict[SquattingType, int]
    detected_of_planted: Dict[SquattingType, int]
    type_correct: int
    false_positives: int

    @property
    def planted_total(self) -> int:
        return sum(self.planted.values())

    @property
    def detection_rate(self) -> float:
        detected = sum(self.detected_of_planted.values())
        return detected / self.planted_total if self.planted_total else 0.0

    @property
    def type_accuracy(self) -> float:
        """Among detected planted squats, fraction typed correctly."""
        detected = sum(self.detected_of_planted.values())
        return self.type_correct / detected if detected else 0.0

    def shape_checks(self) -> Dict[str, bool]:
        return {
            "detects-most-planted": self.detection_rate > 0.9,
            "types-mostly-correct": self.type_accuracy > 0.85,
            "few-false-positives": self.false_positives
            <= max(self.planted_total // 10, 2),
        }


def squatting_accuracy(
    trace: TraceResult, detector: Optional[SquattingDetector] = None
) -> SquattingAccuracy:
    """Score the detector against the planted squat population."""
    if detector is None:
        detector = SquattingDetector()
    planted: Dict[SquattingType, int] = {t: 0 for t in SquattingType}
    detected: Dict[SquattingType, int] = {t: 0 for t in SquattingType}
    type_correct = 0
    false_positives = 0
    for record in trace.expired_domains():
        match = detector.classify(record.domain)
        if record.squat_type is not None:
            planted[record.squat_type] += 1
            if match is not None:
                detected[record.squat_type] += 1
                if match.squat_type == record.squat_type:
                    type_correct += 1
        elif match is not None:
            false_positives += 1
    return SquattingAccuracy(
        planted=planted,
        detected_of_planted=detected,
        type_correct=type_correct,
        false_positives=false_positives,
    )


# ---------------------------------------------------------------------------
# Figure 8 blocklist census
# ---------------------------------------------------------------------------


@dataclass
class BlocklistCensus:
    """Category split of blocklisted expired NXDomains."""

    sampled: int
    listed: int
    by_category: Dict[ThreatCategory, int]
    rate_limited: bool = False

    @property
    def listed_fraction(self) -> float:
        return self.listed / self.sampled if self.sampled else 0.0

    def category_shares(self) -> Dict[ThreatCategory, float]:
        total = max(self.listed, 1)
        return {c: n / total for c, n in self.by_category.items()}

    def shape_checks(self) -> Dict[str, bool]:
        """Figure 8: malware dominates (79%); grayware, phishing, and
        C&C are single-digit-percent minorities with C&C smallest (4%).
        At laptop sample sizes the three small slices hold a handful of
        domains each, so the check pins C&C to a minor share rather
        than a strict ordering a one-domain fluctuation could flip."""
        shares = self.category_shares()
        return {
            "malware-majority": shares[ThreatCategory.MALWARE] > 0.5,
            "cc-minor": shares[ThreatCategory.COMMAND_AND_CONTROL] < 0.15,
            "grayware-phishing-minor": shares[ThreatCategory.GRAYWARE] < 0.25
            and shares[ThreatCategory.PHISHING] < 0.25,
            "minority-listed": self.listed_fraction < 0.5,
        }


def blocklist_census(
    trace: TraceResult,
    sample_ratio: float = 0.25,
    rng: Optional[np.random.Generator] = None,
    now: int = 0,
) -> BlocklistCensus:
    """Cross-reference a random expired-domain sample with the
    blocklist's rate-limited API (§5.2: the paper sampled 20 M of the
    91 M expired domains for exactly this reason)."""
    expired = [record.domain for record in trace.expired_domains()]
    if rng is not None:
        sample = sample_domains(expired, sample_ratio, rng)
    else:
        sample = expired[: max(int(len(expired) * sample_ratio), 1)]
    by_category: Dict[ThreatCategory, int] = {c: 0 for c in ThreatCategory}
    listed = 0
    rate_limited = False
    queried = 0
    for domain in sample:
        try:
            entry = trace.blocklist.query(domain, now)
        except RateLimitExceeded:
            rate_limited = True
            break
        queried += 1
        if entry is not None:
            listed += 1
            by_category[entry.category] += 1
    return BlocklistCensus(
        sampled=queried,
        listed=listed,
        by_category=by_category,
        rate_limited=rate_limited,
    )
