"""Plain-text renderers for every table and figure.

The benchmark harness prints these so a run's output can be eyeballed
against the paper: each renderer emits the same rows/series the paper
reports, with a ``shape`` line summarizing the qualitative checks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro.core.origin import (
    BlocklistCensus,
    DgaCensus,
    SquattingCensus,
    WhoisJoinResult,
)
from repro.core.scale import (
    ExpiryTimeline,
    LifespanDistribution,
    MonthlySeries,
    TldDistribution,
)
from repro.core.security import PortDistribution, SecurityRunResult
from repro.honeypot.categorize import Subcategory
from repro.squatting.detector import SquattingType
from repro.workloads.domains import TABLE1_FIELDS


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """A fixed-width text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def render_bars(
    pairs: Sequence[Tuple[str, float]], width: int = 40, unit: str = ""
) -> str:
    """A horizontal ASCII bar chart."""
    if not pairs:
        return "(empty)"
    peak = max(value for _, value in pairs) or 1.0
    label_width = max(len(label) for label, _ in pairs)
    lines = []
    for label, value in pairs:
        bar = "#" * max(int(round(width * value / peak)), 0)
        lines.append(f"{label.ljust(label_width)} | {bar} {value:,.0f}{unit}")
    return "\n".join(lines)


def _shape_line(checks: Dict[str, bool]) -> str:
    rendered = ", ".join(
        f"{name}={'PASS' if ok else 'FAIL'}"
        for name, ok in checks.items()  # repro: noqa[REP007] insertion order is the declared check order
    )
    return f"shape: {rendered}"


# -- §4 -----------------------------------------------------------------


def render_figure3(series: MonthlySeries) -> str:
    yearly = series.yearly_average()
    body = render_bars([(str(y), v) for y, v in sorted(yearly.items())], unit="/mo")
    return (
        "Figure 3 — average NXDomain responses per month by year\n"
        f"{body}\n{_shape_line(series.shape_checks())}"
    )


def render_figure4(distribution: TldDistribution) -> str:
    table = render_table(
        ["rank", "tld", "nxdomains", "queries"],
        [
            (rank + 1, tld, f"{domains:,}", f"{queries:,}")
            for rank, (tld, domains, queries) in enumerate(distribution.top(20))
        ],
    )
    return (
        "Figure 4 — top 20 TLDs by NXDomains\n"
        f"{table}\n{_shape_line(distribution.shape_checks())}"
    )


def render_figure5(distribution: LifespanDistribution) -> str:
    rows = []
    for day in (0, 1, 2, 5, 10, 20, 30, 45, 59):
        rows.append(
            (
                day,
                f"{int(distribution.domains_per_day[day]):,}",
                f"{int(distribution.queries_per_day[day]):,}",
            )
        )
    table = render_table(["day-in-nx", "domains-queried", "queries"], rows)
    return (
        "Figure 5 — NXDomains and queries across days in NX status\n"
        f"{table}\n{_shape_line(distribution.shape_checks())}"
    )


def render_figure6(timeline: ExpiryTimeline) -> str:
    rows = []
    for offset in (-60, -30, -10, -1, 0, 10, 20, 28, 30, 32, 45, 60, 90, 119):
        rows.append((offset, f"{timeline.at_offset(offset):,.1f}"))
    table = render_table(["day-vs-expiry", "avg-queries"], rows)
    return (
        f"Figure 6 — queries around NX transition "
        f"({timeline.sampled_domains} domains averaged)\n"
        f"{table}\n{_shape_line(timeline.shape_checks())}"
    )


def render_long_lived(cohort) -> str:
    lines = [
        "§4.4 — long-lived NXDomain cohort "
        f"(>{cohort.min_years:g} years in NX status; paper: 1,018,964 "
        "domains >5y with 107M queries)",
        f"cohort domains : {cohort.domain_count:,} of "
        f"{cohort.population_domains:,} ({cohort.cohort_fraction:.1%})",
        f"cohort queries : {cohort.total_queries:,}",
        _shape_line(cohort.shape_checks()),
    ]
    return "\n".join(lines)


# -- §5 -----------------------------------------------------------------


def render_dga_registration(rate) -> str:
    lines = [
        "§5.1 — DGA registration rate (paper cites 0.62%, Plohmann et al.)",
        f"registered DGA domains : {rate.registered_dga:,} of "
        f"{rate.total_dga:,} ({rate.registration_rate:.2%})",
        _shape_line(rate.shape_checks()),
    ]
    return "\n".join(lines)


def render_whois_join(result: WhoisJoinResult) -> str:
    table = render_table(
        ["population", "count", "fraction"],
        [
            ("with WHOIS history (expired)", f"{result.with_history:,}",
             f"{result.expired_fraction:.2%}"),
            ("never registered", f"{result.never_registered:,}",
             f"{1 - result.expired_fraction:.2%}"),
            ("total", f"{result.total_domains:,}", "100%"),
        ],
    )
    return (
        "§5.1 — WHOIS history join (paper: 0.06% expired of 146B)\n"
        f"{table}\n{_shape_line(result.shape_checks())}"
    )


def render_dga_census(census: DgaCensus) -> str:
    lines = [
        "§5.2 — DGA census over expired NXDomains (paper: 2,770,650 = 3%)",
        f"expired domains analyzed : {census.expired_total:,}",
        f"flagged as DGA           : {census.flagged:,} "
        f"({census.flagged_fraction:.1%})",
    ]
    if census.ground_truth is not None:
        m = census.ground_truth
        lines.append(
            f"vs ground truth          : precision={m.precision:.2f} "
            f"recall={m.recall:.2f} fpr={m.false_positive_rate:.3f}"
        )
    lines.append(_shape_line(census.shape_checks()))
    return "\n".join(lines)


def render_figure7(census: SquattingCensus) -> str:
    paper = {
        SquattingType.TYPO: 45_175,
        SquattingType.COMBO: 38_900,
        SquattingType.DOT: 6_090,
        SquattingType.BIT: 313,
        SquattingType.HOMO: 126,
    }
    rows = [
        (t.value, f"{census.counts[t]:,}", f"{paper[t]:,}")
        for t in (
            SquattingType.TYPO,
            SquattingType.COMBO,
            SquattingType.DOT,
            SquattingType.BIT,
            SquattingType.HOMO,
        )
    ]
    table = render_table(["squatting type", "measured", "paper"], rows)
    return (
        f"Figure 7 — squatting NXDomains by type "
        f"(total {census.total_squatting:,})\n"
        f"{table}\n{_shape_line(census.shape_checks())}"
    )


def render_figure8(census: BlocklistCensus) -> str:
    paper_shares = {"malware": 0.79, "grayware": 0.09, "phishing": 0.08, "c2": 0.04}
    shares = census.category_shares()
    rows = [
        (
            category.display_name,
            f"{census.by_category[category]:,}",
            f"{shares[category]:.1%}",
            f"{paper_shares[category.value]:.0%}",
        )
        for category in census.by_category
    ]
    table = render_table(["category", "measured", "share", "paper share"], rows)
    note = " (rate limited)" if census.rate_limited else ""
    return (
        f"Figure 8 — blocklisted NXDomains by category "
        f"({census.listed:,} of {census.sampled:,} sampled{note})\n"
        f"{table}\n{_shape_line(census.shape_checks())}"
    )


# -- §6 -----------------------------------------------------------------

_TABLE1_SHORT = {
    Subcategory.SEARCH_ENGINE: "SE",
    Subcategory.FILE_GRABBER: "FileGrab",
    Subcategory.SCRIPT_SOFTWARE: "Script",
    Subcategory.MALICIOUS_REQUEST: "MalReq",
    Subcategory.REFERRAL_SEARCH: "RefSE",
    Subcategory.REFERRAL_EMBEDDED: "RefEmb",
    Subcategory.REFERRAL_MALICIOUS: "RefMal",
    Subcategory.PC_MOBILE: "PC/Mob",
    Subcategory.INAPP: "InApp",
    Subcategory.OTHER: "Others",
}


def render_table1(result: SecurityRunResult) -> str:
    headers = ["domain"] + [_TABLE1_SHORT[f] for f in TABLE1_FIELDS] + ["total"]
    rows = []
    for report in result.table1:
        rows.append(
            [report.domain]
            + [f"{report.count(f):,}" for f in TABLE1_FIELDS]
            + [f"{report.total:,}"]
        )
    totals = ["TOTAL"] + [
        f"{sum(r.count(f) for r in result.table1):,}" for f in TABLE1_FIELDS
    ] + [f"{sum(r.total for r in result.table1):,}"]
    rows.append(totals)
    table = render_table(headers, rows)
    return (
        "Table 1 — HTTP/HTTPS traffic by registered domain and category\n"
        f"{table}\n{_shape_line(result.shape_checks())}"
    )


def render_figure10(ports: PortDistribution) -> str:
    honeypot = render_bars([(str(p), c) for p, c in ports.honeypot_ports])
    control = render_bars([(str(p), c) for p, c in ports.control_ports])
    return (
        "Figure 10a — NXDomain traffic by port (filtered)\n"
        f"{honeypot}\n\n"
        "Figure 10b — control group traffic by port\n"
        f"{control}\n{_shape_line(ports.shape_checks())}"
    )


def render_figure13(histogram: Dict[str, int], checks: Dict[str, bool]) -> str:
    body = render_bars(
        sorted(histogram.items(), key=lambda kv: kv[1], reverse=True)
    )
    return f"Figure 13 — in-app browsers of domain visitors\n{body}\n{_shape_line(checks)}"


def render_figure14(histogram: Dict[str, int]) -> str:
    body = render_bars(
        sorted(histogram.items(), key=lambda kv: kv[1], reverse=True)
    )
    return f"Figure 14 — gpclick.com victim phone country codes\n{body}"


def render_figure15(histogram: Dict[str, int]) -> str:
    body = render_bars(
        sorted(histogram.items(), key=lambda kv: kv[1], reverse=True)
    )
    return f"Figure 15 — gpclick.com request source hostnames\n{body}"
