"""Deterministic randomness helpers.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` created here.  Components never share a
generator implicitly; instead each takes a seed (or a parent
:class:`SeedSequenceFactory`) so that

1. the same top-level seed reproduces the same database, trace, and
   report tables bit-for-bit, and
2. adding a new component does not perturb the streams of existing
   ones (each named child stream is derived by hashing its label).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence, TypeVar

import numpy as np
from repro.errors import ConfigError

T = TypeVar("T")


def make_rng(seed: int) -> np.random.Generator:
    """Create a PCG64 generator from an integer seed."""
    return np.random.Generator(np.random.PCG64(seed))


def derive_seed(seed: int, label: str) -> int:
    """Derive a stable 63-bit child seed from ``seed`` and a label.

    The derivation hashes the label so that independently named
    components get decorrelated streams regardless of the order in
    which they are created.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class SeedSequenceFactory:
    """Hands out named, decorrelated child generators.

    >>> factory = SeedSequenceFactory(7)
    >>> a = factory.rng("trace")
    >>> b = factory.rng("honeypot")

    ``a`` and ``b`` are independent, and re-creating the factory with
    seed 7 reproduces both streams exactly.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def child_seed(self, label: str) -> int:
        """Return the derived integer seed for ``label``."""
        return derive_seed(self.seed, label)

    def rng(self, label: str) -> np.random.Generator:
        """Return a fresh generator for the named component."""
        return make_rng(self.child_seed(label))

    def subfactory(self, label: str) -> "SeedSequenceFactory":
        """Return a factory rooted at the named child seed."""
        return SeedSequenceFactory(self.child_seed(label))


def weighted_choice(
    rng: np.random.Generator, items: Sequence[T], weights: Sequence[float]
) -> T:
    """Pick one item with the given (unnormalized) weights."""
    if len(items) != len(weights):
        raise ConfigError("items and weights must have equal length")
    if not items:
        raise ConfigError("cannot choose from an empty sequence")
    probs = np.asarray(weights, dtype=float)
    total = probs.sum()
    if total <= 0:
        raise ConfigError("weights must sum to a positive value")
    index = rng.choice(len(items), p=probs / total)
    return items[int(index)]


def weighted_sample_counts(
    rng: np.random.Generator, weights: Sequence[float], total: int
) -> List[int]:
    """Split ``total`` events across categories via a multinomial draw."""
    probs = np.asarray(weights, dtype=float)
    if probs.sum() <= 0:
        raise ConfigError("weights must sum to a positive value")
    counts = rng.multinomial(int(total), probs / probs.sum())
    return [int(c) for c in counts]


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Zipf-like rank weights ``1/rank**exponent`` for ``n`` ranks.

    Heavy-tailed popularity (domains, TLDs, URIs) throughout the
    workload generators uses this shape, matching the skew the paper
    observes in NXDomain query volume.
    """
    if n <= 0:
        raise ConfigError("n must be positive")
    return [1.0 / (rank**exponent) for rank in range(1, n + 1)]


def stable_shuffle(rng: np.random.Generator, items: Iterable[T]) -> List[T]:
    """Return a shuffled copy of ``items`` without mutating the input."""
    out = list(items)
    rng.shuffle(out)  # type: ignore[arg-type]
    return out
