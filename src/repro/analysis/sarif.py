"""SARIF 2.1.0 renderer for lint results.

SARIF (Static Analysis Results Interchange Format) is the one format
code-scanning UIs ingest natively, so ``--format sarif`` lets CI
surface findings as inline annotations instead of a log to scroll.

The document is one run: the tool descriptor carries every resolved
rule (id, one-line description, default level) and each finding maps
to one ``result`` with a physical location.  Baselined findings are
exported with ``baselineState: "unchanged"`` so scanners show them as
known debt rather than new alerts; everything else is ``"new"``.
Severities map ``error``→``error`` and ``warning``→``warning`` — the
analyzer has no "note" tier.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.findings import ANALYZER_VERSION, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemas/sarif-schema-2.1.0.json"
)


def _rule_descriptors(rules: Sequence[str]) -> List[Dict[str, object]]:
    from repro.analysis.rules import explain_sections, iter_rules

    wanted = set(rules)
    descriptors = []
    for rule_cls in iter_rules():
        if rule_cls.rule_id not in wanted:
            continue
        descriptor: Dict[str, object] = {
            "id": rule_cls.rule_id,
            "shortDescription": {"text": rule_cls.description},
            "defaultConfiguration": {
                "level": rule_cls.severity.value,
            },
        }
        # The mandatory Invariant/Why docstring sections become the
        # fullDescription, so code-scanning UIs show the rationale
        # inline without a docs round-trip.
        sections = explain_sections(rule_cls)
        descriptor["fullDescription"] = {
            "text": (
                f"Invariant: {sections['Invariant']}\n\n"
                f"Why: {sections['Why']}"
            )
        }
        descriptors.append(descriptor)
    return descriptors


def _result(finding: Finding) -> Dict[str, object]:
    return {
        "ruleId": finding.rule_id,
        "level": finding.severity.value,
        "message": {"text": finding.message},
        "baselineState": "unchanged" if finding.baselined else "new",
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding], rules: Optional[Sequence[str]] = None
) -> str:
    """One-run SARIF 2.1.0 document for the given findings."""
    ordered = sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
    )
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "version": ANALYZER_VERSION,
                        "rules": _rule_descriptors(
                            sorted(rules) if rules is not None else []
                        ),
                    }
                },
                "results": [_result(finding) for finding in ordered],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
