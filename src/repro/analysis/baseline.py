"""Baseline bookkeeping.

A baseline is the committed set of findings a repository has accepted
(temporarily): matching findings are downgraded to warnings, anything
new fails the run.  Matching ignores line numbers — a finding is
identified by ``(rule, path, message)`` with multiplicity — so pure
code motion does not invalidate the baseline.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from pathlib import Path
from typing import List, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.errors import ConfigError

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Counter:
    """Fingerprint multiset from a baseline file (empty if absent)."""
    if not path.is_file():
        return Counter()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or "findings" not in data:
        raise ConfigError(f"baseline {path} is missing 'findings'")
    counts: Counter = Counter()
    for entry in data["findings"]:
        counts[
            f"{entry['rule']}::{entry['path']}::{entry['message']}"
        ] += int(entry.get("count", 1))
    return counts


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the current findings as the new accepted baseline."""
    counts = Counter(f.fingerprint() for f in findings)
    entries = []
    for fingerprint in sorted(counts):
        rule_id, relpath, message = fingerprint.split("::", 2)
        entries.append(
            {
                "rule": rule_id,
                "path": relpath,
                "message": message,
                "count": counts[fingerprint],
            }
        )
    payload = {
        "version": BASELINE_VERSION,
        "tool": "repro.analysis",
        "findings": entries,
    }
    # The baseline is committed state: a crash mid-write must leave
    # either the old file or the new one, never a truncated hybrid.
    # (The analysis package sits below repro.passivedns in the layer
    # order, so the atomic dance is inlined rather than imported.)
    data = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def update_baseline(
    path: Path, findings: Sequence[Finding], rule_ids: Sequence[str]
) -> int:
    """Rewrite the baseline from the current findings.

    Returns how many *stale* entries were pruned: baseline entries
    (counted with multiplicity) whose rule id is no longer in the
    resolved ruleset ``rule_ids``.  Entries for live rules whose
    findings were fixed simply drop out of the rewrite and are not
    counted — only ruleset drift is reported, so ``--update-baseline``
    output distinguishes "debt paid down" from "rule retired".
    """
    live: Set[str] = set(rule_ids)
    pruned = 0
    if path.is_file():
        try:
            old = load_baseline(path)
        except ConfigError:
            old = Counter()
        for fingerprint, count in old.items():
            if fingerprint.split("::", 1)[0] not in live:
                pruned += count
    save_baseline(path, findings)
    return pruned


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(new, baselined)``.

    Each baseline fingerprint absorbs at most its recorded count of
    findings; the baselined copies are marked so reports can show them
    as accepted debt rather than regressions.
    """
    remaining = Counter(baseline)
    new: List[Finding] = []
    known: List[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
            known.append(finding.with_baselined())
        else:
            new.append(finding)
    return new, known
