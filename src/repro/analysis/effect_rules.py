"""The effect-flow REP20x rules.

Built on the per-function effect summaries collected by
:mod:`repro.analysis.project`, these rules verify the durability and
concurrency invariants that PRs 4–5 established by convention:

========  ==============================================================
REP201    every durable write goes through a sanctioned atomic writer
REP202    crash-signal exceptions are never swallowed on resilient paths
REP203    pool/thread workers never mutate shared module-level state
REP204    cache-backing fields are only mutated under a generation bump
========  ==============================================================

REP201 and REP204 are cone-scoped: a module's findings depend only on
its own effect facts (plus, for REP204, same-class callees in the same
module).  REP202 and REP203 are global-scope: the roots and spawn
sites that make a function reachable may live in *other* modules —
including reference trees — so cone invalidation cannot bound them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Severity
from repro.analysis.program_rules import _scoped_modules
from repro.analysis.project import (
    MODULE_SCOPE,
    CallSite,
    FunctionEffects,
    ModuleSummary,
    ProjectModel,
)
from repro.analysis.rules import ProjectRule, register

#: Qualified callee names treated as filesystem write sinks when a
#: recorded ``"call"``-kind write site resolves to them.
WRITE_SINK_QUALNAMES = frozenset({
    "numpy.save",
    "numpy.savez",
    "numpy.savez_compressed",
})
#: Exceptions that signal a crash or an open breaker; swallowing one
#: converts an injected fault or an interrupt into silent corruption.
CRASH_SIGNALS = frozenset({
    "repro.errors.InjectedCrashError",
    "repro.errors.CircuitOpenError",
    "KeyboardInterrupt",
})
#: Ancestry fallback used when ``repro.errors`` is outside the model
#: (small fixture projects); the real hierarchy wins when present.
_FALLBACK_ANCESTRY: Dict[str, Tuple[str, ...]] = {
    "repro.errors.InjectedCrashError": (
        "repro.errors.ReproError", "Exception", "BaseException",
    ),
    "repro.errors.CircuitOpenError": (
        "repro.errors.ReproError", "Exception", "BaseException",
    ),
    "KeyboardInterrupt": ("BaseException",),
}
#: The generation counter REP204 audits, and methods exempt from the
#: bump requirement (construction and unpickling build state from
#: scratch; there is no stale cache to invalidate yet).
GENERATION_FIELD = "_generation"
_CONSTRUCTOR_METHODS = frozenset({"__init__", "__new__", "__setstate__"})


def _iter_effects(
    summary: ModuleSummary,
) -> Iterable[Tuple[str, FunctionEffects]]:
    """(qualname, effects) pairs in deterministic order."""
    for qualname in sorted(summary.effects):
        yield qualname, summary.effects[qualname]


def _graph_node(summary: ModuleSummary, fx_key: str) -> str:
    """Call-graph node name for an effects key (module-level calls
    appear under the module name itself)."""
    return summary.module if fx_key == MODULE_SCOPE else fx_key


@register
class AtomicWriteDiscipline(ProjectRule):
    """REP201 — durable writes go through sanctioned atomic writers.

    Invariant:
        Outside the configured ``atomic-io-modules`` (by default
        ``repro.passivedns.spill`` and ``repro.passivedns.io``), no
        function may write a file with a raw ``open(..., "w")``,
        ``Path.write_text``/``write_bytes``, or an ``np.save``-style
        serializer — unless the function itself performs the full
        atomic dance (``os.fsync`` **and** ``os.replace``/``os.rename``
        alongside the write).  Writes into in-memory ``BytesIO``/
        ``StringIO`` buffers are not filesystem writes.

    Why:
        PR 5 made the spill store crash-safe: every durable byte goes
        tmp-file + fsync + ``os.replace`` + directory sync, so a crash
        can never leave a half-written chunk behind.  One raw
        ``open(path, "w")`` elsewhere reintroduces exactly the torn
        write the fault-injection suite exists to rule out — and no
        per-file rule can tell a sanctioned helper from a bypass.

    Good::

        from repro.passivedns.spill import atomic_write_bytes

        def save(path, payload):
            atomic_write_bytes(path, payload)     # tmp+fsync+replace

    Bad::

        def save(path, payload):
            with open(path, "w") as handle:       # torn on crash
                handle.write(payload)
    """

    rule_id = "REP201"
    severity = Severity.ERROR
    description = (
        "raw filesystem writes are banned outside the sanctioned "
        "atomic-write modules (tmp+fsync+replace or bust)"
    )

    def check(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        modules: Optional[Iterable[str]] = None,
    ) -> Iterable[Finding]:
        """Flag raw write sites outside the atomic-IO sanction."""
        sanctioned = tuple(config.atomic_io_modules)
        for module in _scoped_modules(project, config, modules):
            if module in sanctioned or any(
                module.startswith(prefix + ".") for prefix in sanctioned
            ):
                continue
            summary = project.modules[module]
            for qualname, fx in _iter_effects(summary):
                if fx.fsyncs and fx.replaces:
                    # The function is itself an atomic writer.
                    continue
                for site in fx.writes:
                    if site.kind == "call" and not self._is_sink(
                        project, summary, site.callee
                    ):
                        continue
                    where = (
                        "module level"
                        if qualname == MODULE_SCOPE
                        else f"{qualname}()"
                    )
                    detail = (
                        f"{site.callee}(mode={site.mode!r})"
                        if site.mode
                        else f"{site.callee}(...)"
                    )
                    yield self.project_finding(
                        config,
                        summary.relpath,
                        site.lineno,
                        site.col,
                        f"raw filesystem write {detail} at {where}; "
                        "route durable writes through a sanctioned "
                        "atomic writer "
                        f"({', '.join(sanctioned) or 'none configured'}) "
                        "or perform the full tmp+fsync+os.replace dance "
                        "in this function",
                    )

    def _is_sink(
        self, project: ProjectModel, summary: ModuleSummary, callee: str
    ) -> bool:
        resolved = project.resolve(summary.module, callee)
        return (resolved or callee) in WRITE_SINK_QUALNAMES


@register
class CrashSignalSwallow(ProjectRule):
    """REP202 — crash signals survive every resilient except-clause.

    Invariant:
        On any path reachable from the configured ``resilient-roots``
        (retry loops, circuit breakers, the store pipeline), an
        ``except`` clause must not be able to catch
        ``InjectedCrashError``, ``CircuitOpenError``, or
        ``KeyboardInterrupt`` without re-raising.  A handler whose
        resolved type set (via the project's class hierarchy) covers a
        crash signal and whose body contains no ``raise`` swallows it.

    Why:
        The fault-injection suite only proves crash-safety if an
        injected crash actually crashes: a retry helper that catches
        bare ``Exception`` turns the injected fault into a silent
        retry, the recovery path is never exercised, and the
        crash-safety guarantee quietly becomes fiction.  The same
        handler also eats ``KeyboardInterrupt``-adjacent breaker
        signals, keeping a tripped circuit invisible.

    Good::

        try:
            store(batch)
        except TransientStoreError:        # sibling of the signals
            retry()

    Bad::

        try:
            store(batch)
        except Exception:                  # swallows InjectedCrashError
            retry()
    """

    rule_id = "REP202"
    severity = Severity.ERROR
    description = (
        "except clauses reachable from retry/pipeline roots must not "
        "swallow crash-signal exceptions (InjectedCrashError et al.)"
    )
    #: Roots live anywhere in the project (including other modules),
    #: so reachability cannot be bounded by the dirty cone.
    global_scope = True

    def check(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        modules: Optional[Iterable[str]] = None,
    ) -> Iterable[Finding]:
        """Flag swallowing handlers on resilient-reachable paths."""
        chains = project.reachable_from(self._roots(project, config))
        ancestry = {
            signal: self._ancestors(project, signal)
            for signal in CRASH_SIGNALS
        }
        for module in _scoped_modules(project, config, modules):
            summary = project.modules[module]
            for qualname, fx in _iter_effects(summary):
                chain = chains.get(_graph_node(summary, qualname))
                if chain is None:
                    continue
                for site in fx.excepts:
                    if site.reraises:
                        continue
                    caught = self._swallowed(
                        project, summary, site, ancestry
                    )
                    if caught is None:
                        continue
                    handler = (
                        "bare except"
                        if site.bare
                        else f"except {', '.join(site.types)}"
                    )
                    via = " -> ".join(chain)
                    yield self.project_finding(
                        config,
                        summary.relpath,
                        site.lineno,
                        site.col,
                        f"{handler} can swallow crash signal "
                        f"{caught.rsplit('.', 1)[-1]} on a resilient "
                        f"path ({via}); narrow the handler types or "
                        "re-raise",
                    )

    def _roots(
        self, project: ProjectModel, config: AnalysisConfig
    ) -> Set[str]:
        roots: Set[str] = set()
        for prefix in config.resilient_roots:
            for module in project.modules:
                if module == prefix or module.startswith(prefix + "."):
                    roots.add(module)
                    roots.update(project.modules[module].functions)
        return roots

    def _ancestors(self, project: ProjectModel, signal: str) -> Set[str]:
        resolved = project.exception_ancestors(signal)
        return resolved | set(_FALLBACK_ANCESTRY.get(signal, ()))

    def _swallowed(
        self,
        project: ProjectModel,
        summary: ModuleSummary,
        site,
        ancestry: Dict[str, Set[str]],
    ) -> Optional[str]:
        """The first crash signal the handler can catch, if any."""
        if site.bare:
            return sorted(CRASH_SIGNALS)[0]
        for expr in site.types:
            handler = project.resolve(summary.module, expr) or expr
            for signal in sorted(CRASH_SIGNALS):
                if handler == signal or handler in ancestry[signal]:
                    return signal
        return None


@register
class WorkerSharedStateMutation(ProjectRule):
    """REP203 — pool/thread workers never mutate shared module state.

    Invariant:
        A function reachable from a ``ProcessPoolExecutor``/``Pool``
        dispatch (``pool.map``, ``executor.submit``, ...) or a
        ``Thread(target=...)`` entry point must not mutate
        module-level mutable state (rebinding via ``global``, item
        writes, or mutator-method calls on module-global containers)
        or captured state via ``nonlocal``.

    Why:
        The sharded trace generator and the parallel lint engine fan
        work out over processes today and the query-serving tier will
        add threads; a worker that appends to a module-global dict is
        a data race under threads and a silently-divergent no-op under
        processes (each child mutates its own copy).  Either way the
        result depends on the executor, not the seed — the exact
        nondeterminism this codebase exists to exclude.

    Good::

        def _shard(args):
            out = {}                  # worker-local accumulator
            out.update(compute(args))
            return out                # merged by the parent

    Bad::

        _RESULTS = {}

        def _shard(args):
            _RESULTS[args.key] = compute(args)   # lost under processes
    """

    rule_id = "REP203"
    severity = Severity.ERROR
    description = (
        "functions reachable from pool/thread entry points must not "
        "mutate module-level or captured mutable state"
    )
    #: Spawn sites anywhere in the project (including reference trees)
    #: make a function a worker, so the dirty cone cannot bound this.
    global_scope = True

    def check(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        modules: Optional[Iterable[str]] = None,
    ) -> Iterable[Finding]:
        """Flag shared-state mutations inside reachable workers."""
        chains = project.reachable_from(self._entry_points(project))
        for module in _scoped_modules(project, config, modules):
            summary = project.modules[module]
            shared = set(summary.mutable_globals) | {
                assign.caller for assign in summary.module_assigns
            }
            for qualname, fx in _iter_effects(summary):
                if qualname == MODULE_SCOPE:
                    continue
                chain = chains.get(qualname)
                if chain is None:
                    continue
                for site in fx.name_mutations:
                    if (
                        site.kind not in ("assign", "nonlocal")
                        and site.target not in shared
                    ):
                        continue
                    what = (
                        f"captured variable '{site.target}'"
                        if site.kind == "nonlocal"
                        else f"module-level state '{site.target}'"
                    )
                    via = " -> ".join(chain)
                    yield self.project_finding(
                        config,
                        summary.relpath,
                        site.lineno,
                        site.col,
                        f"{qualname.rsplit('.', 1)[-1]}() mutates "
                        f"{what} but runs in a pool/thread worker "
                        f"({via}); return results and merge in the "
                        "parent instead",
                    )

    def _entry_points(self, project: ProjectModel) -> Set[str]:
        entries: Set[str] = set()
        for module in sorted(project.modules):
            summary = project.modules[module]
            for fx_key, fx in _iter_effects(summary):
                for spawn in fx.spawns:
                    call = CallSite(
                        caller=fx_key,
                        callee_expr=spawn.target,
                        lineno=spawn.lineno,
                        col=spawn.col,
                    )
                    resolved = project.resolve_call(summary, call)
                    if resolved is None:
                        resolved = project.resolve(module, spawn.target)
                    if resolved is not None:
                        entries.add(resolved)
        return entries


@register
class CacheGenerationBump(ProjectRule):
    """REP204 — cache-backing fields mutate only under a generation bump.

    Invariant:
        In any class that maintains a ``_generation`` counter, a
        method that mutates instance state (``self._field = ...``,
        item writes, or in-place mutator calls) must bump
        ``_generation`` in the same method or in a same-class callee.
        Fields named ``*_cache`` and ``_generation`` itself are exempt
        (they are the derived side, not the backing side), as are
        ``__init__``/``__new__``/``__setstate__``.

    Why:
        ``PassiveDnsDatabase`` keys its memoized columns, aggregates,
        and indexes on ``self._generation``; a mutation that skips the
        bump leaves those caches answering queries from data that no
        longer exists.  The bug is invisible to tests that rebuild the
        database per case and only bites after a specific
        mutate-then-query order — precisely what a static effect rule
        can rule out wholesale.

    Good::

        def ingest(self, batch):
            self._chunks.append(batch)
            self._touch()              # bumps self._generation

    Bad::

        def ingest(self, batch):
            self._chunks.append(batch)  # caches now serve stale rows
    """

    rule_id = "REP204"
    severity = Severity.ERROR
    description = (
        "methods of generation-tracked classes must bump _generation "
        "when mutating cache-backing instance state"
    )

    def check(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        modules: Optional[Iterable[str]] = None,
    ) -> Iterable[Finding]:
        """Flag generation-less mutations in generation-tracked classes."""
        for module in _scoped_modules(project, config, modules):
            summary = project.modules[module]
            for class_qualname in sorted(summary.classes):
                methods = self._methods(summary, class_qualname)
                if not self._tracks_generation(summary, methods):
                    continue
                yield from self._check_class(
                    project, config, summary, class_qualname, methods
                )

    def _methods(
        self, summary: ModuleSummary, class_qualname: str
    ) -> List[str]:
        prefix = class_qualname + "."
        return sorted(
            qualname
            for qualname, info in summary.functions.items()
            if qualname.startswith(prefix)
            and "." not in qualname[len(prefix):]
            and info.is_method
        )

    def _tracks_generation(
        self, summary: ModuleSummary, methods: List[str]
    ) -> bool:
        return any(self._bumps(summary, qualname) for qualname in methods)

    def _bumps(self, summary: ModuleSummary, qualname: str) -> bool:
        fx = summary.effects.get(qualname)
        return fx is not None and any(
            site.target == GENERATION_FIELD and site.kind == "assign"
            for site in fx.attr_mutations
        )

    def _check_class(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        summary: ModuleSummary,
        class_qualname: str,
        methods: List[str],
    ) -> Iterable[Finding]:
        graph = project.call_graph()
        prefix = class_qualname + "."
        for qualname in methods:
            name = qualname.rsplit(".", 1)[-1]
            if name in _CONSTRUCTOR_METHODS:
                continue
            fx = summary.effects.get(qualname)
            if fx is None:
                continue
            offending = [
                site
                for site in fx.attr_mutations
                if site.target != GENERATION_FIELD
                and not site.target.endswith("_cache")
            ]
            if not offending:
                continue
            if self._bump_reachable(summary, graph, prefix, qualname):
                continue
            site = offending[0]
            fields = sorted({s.target for s in offending})
            yield self.project_finding(
                config,
                summary.relpath,
                site.lineno,
                site.col,
                f"{name}() mutates {', '.join(fields)} of "
                f"generation-tracked class "
                f"{class_qualname.rsplit('.', 1)[-1]} without a "
                f"{GENERATION_FIELD} bump in this method or a "
                "same-class callee; stale caches will serve dead rows",
            )

    def _bump_reachable(
        self,
        summary: ModuleSummary,
        graph: Dict[str, Set[str]],
        prefix: str,
        qualname: str,
    ) -> bool:
        stack = [qualname]
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if self._bumps(summary, current):
                return True
            stack.extend(
                callee
                for callee in graph.get(current, ())
                if callee.startswith(prefix)
            )
        return False
