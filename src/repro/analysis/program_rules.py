"""The whole-program REP10x rules.

These rules run on the resolved :class:`~repro.analysis.project.ProjectModel`
rather than on single files, so they can see flows the per-file
REP001-REP008 pass structurally cannot:

========  ==============================================================
REP101    clock purity propagates through the call graph
REP102    RNG seed provenance: threaded, never stashed or constant
REP103    layering holds for dynamic (``importlib``) imports too
REP104    every exported name has a live reference somewhere
========  ==============================================================
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.builtin import (
    WALL_CLOCK_QUALNAMES,
    layer_name,
    layer_of,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import ModuleSummary, ProjectModel
from repro.analysis.rules import ProjectRule, register

#: Qualified names of the sanctioned RNG factories.
RNG_FACTORIES = frozenset({
    "repro.rand.make_rng",
    "repro.rand.SeedSequenceFactory",
})
#: Attribute spellings that also mint generators off a factory object.
RNG_FACTORY_METHODS = frozenset({"rng", "subfactory"})
#: Qualified names that perform a dynamic import.
DYNAMIC_IMPORTERS = frozenset({"importlib.import_module", "__import__"})


def _scoped_modules(
    project: ProjectModel,
    config: AnalysisConfig,
    modules: Optional[Iterable[str]],
) -> List[str]:
    """Lint-scope modules to analyze, sorted for determinism.

    ``modules=None`` means the whole project; otherwise only the given
    dirty dependency cone is re-analyzed.  Reference-only modules
    (tests, benchmarks, examples) never receive findings.  The engine
    records which modules were linted on ``project.lint_modules``;
    when that is absent (models built outside the engine), the
    ``repro``-rooted heuristic applies, so explicitly linting an
    excluded tree (``lint benchmarks``) still scopes project rules to
    the named files.
    """
    chosen = set(project.modules) if modules is None else set(modules)
    lint_scope = project.lint_modules
    if lint_scope is not None:
        return sorted(
            module
            for module in chosen
            if module in project.modules and module in lint_scope
        )
    return sorted(
        module
        for module in chosen
        if module in project.modules
        and module.startswith("repro")
        and not config.is_excluded(project.modules[module].relpath)
    )


@register
class ClockPurityPropagation(ProjectRule):
    """REP101 — clock purity propagates through the call graph.

    Invariant:
        No public function outside ``repro.clock`` may *transitively*
        reach a wall-clock read (``time.time``, ``datetime.now``, ...)
        through any chain of intra-project calls.  REP001 bans the
        direct read; REP101 closes the laundering loophole.

    Why:
        The reproduction's headline guarantee is that one seed
        replays every table bit-for-bit over the simulated 8-year
        trace.  A wall-clock read hidden two modules away behind a
        helper silently re-introduces real time into that replay and
        invalidates reruns, exactly the indirect nondeterminism that
        per-file AST rules cannot see.

    Good::

        def stamp(clock: SimClock) -> int:
            return clock.now          # simulated time, threaded in

    Bad::

        def _hidden():
            return time.time()        # REP001 fires here ...

        def stamp():
            return _hidden()          # ... and REP101 fires here
    """

    rule_id = "REP101"
    severity = Severity.ERROR
    description = (
        "no public entry point may transitively reach a wall-clock "
        "read outside repro.clock (call-graph taint propagation)"
    )

    _BARRIER_PREFIX = "repro.clock"

    def check(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        modules: Optional[Iterable[str]] = None,
    ) -> Iterable[Finding]:
        """Flag public functions whose call chains reach a clock read."""
        chains = self._taint_chains(project)
        for module in _scoped_modules(project, config, modules):
            if module.startswith(self._BARRIER_PREFIX):
                continue
            summary = project.modules[module]
            for qualname in sorted(summary.functions):
                info = summary.functions[qualname]
                chain = chains.get(qualname)
                if chain is None or not info.public:
                    continue
                if len(chain) <= 2:
                    # Direct reader: REP001 already reports it; REP101
                    # adds value only for laundered (indirect) chains.
                    continue
                witness = " -> ".join(chain)
                yield self.project_finding(
                    config,
                    summary.relpath,
                    info.lineno,
                    info.col,
                    f"public entry point {info.name}() transitively "
                    f"reaches wall-clock read {chain[-1]}() via "
                    f"{witness}; thread a repro.clock.SimClock instead",
                )

    def _taint_chains(self, project: ProjectModel) -> Dict[str, List[str]]:
        chains = project.tainted_from(WALL_CLOCK_QUALNAMES)
        # The sanctioned clock module is a taint barrier: anything it
        # does with real time is its own (exempt) business, so chains
        # running through it are cut.
        return {
            qualname: chain
            for qualname, chain in chains.items()
            if not any(
                step.startswith(self._BARRIER_PREFIX + ".")
                for step in chain[1:]
            )
            and not qualname.startswith(self._BARRIER_PREFIX + ".")
        }


@register
class SeedProvenance(ProjectRule):
    """REP102 — RNG seed provenance is threaded, never ambient.

    Invariant:
        A generator minted by ``rand.make_rng`` or a
        ``SeedSequenceFactory`` must be threaded through parameters or
        instance attributes.  It may never be stashed in a module
        global, and its seed may never be a literal constant or a
        module-level constant inside library code.

    Why:
        Module-global generators create hidden shared state: the
        stream a component sees then depends on import order and on
        every other consumer, so adding a feature perturbs unrelated
        tables.  Constant seeds re-derive the same stream no matter
        what the caller asked for, silently decoupling results from
        the top-level seed the paper's tables are keyed on.

    Good::

        class TraceGenerator:
            def __init__(self, seed: int) -> None:
                self._seeds = SeedSequenceFactory(seed)   # threaded

    Bad::

        _RNG = make_rng(42)        # module-global stash, constant seed

        def jitter():
            return _RNG.random()
    """

    rule_id = "REP102"
    severity = Severity.ERROR
    description = (
        "RNG streams must be threaded via parameters/attributes; "
        "module-global stashes and constant-derived seeds are banned"
    )

    _EXEMPT_PREFIX = "repro.rand"

    def check(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        modules: Optional[Iterable[str]] = None,
    ) -> Iterable[Finding]:
        """Flag module-global RNG stashes and constant-derived seeds."""
        for module in _scoped_modules(project, config, modules):
            if module.startswith(self._EXEMPT_PREFIX):
                continue
            summary = project.modules[module]
            yield from self._check_module_globals(project, config, summary)
            yield from self._check_call_seeds(project, config, summary)

    def _check_module_globals(
        self, project: ProjectModel, config: AnalysisConfig, summary: ModuleSummary
    ) -> Iterable[Finding]:
        for assign in summary.module_assigns:
            resolved = project.resolve(summary.module, assign.callee_expr)
            tail = assign.callee_expr.rsplit(".", 1)[-1]
            if resolved in RNG_FACTORIES or (
                "." in assign.callee_expr and tail in RNG_FACTORY_METHODS
            ):
                yield self.project_finding(
                    config,
                    summary.relpath,
                    assign.lineno,
                    assign.col,
                    f"module-global RNG stash '{assign.caller} = "
                    f"{assign.callee_expr}(...)'; generators must be "
                    "threaded via parameters or instance attributes",
                )

    def _check_call_seeds(
        self, project: ProjectModel, config: AnalysisConfig, summary: ModuleSummary
    ) -> Iterable[Finding]:
        for call in summary.calls:
            resolved = project.resolve(summary.module, call.callee_expr)
            if resolved not in RNG_FACTORIES:
                continue
            factory = resolved.rsplit(".", 1)[-1]
            if call.arg0.startswith("const:"):
                yield self.project_finding(
                    config,
                    summary.relpath,
                    call.lineno,
                    call.col,
                    f"{factory}({call.arg0[len('const:'):]}) derives a "
                    "stream from a literal constant; seeds must flow "
                    "from the caller (parameter or factory child)",
                )
            elif call.arg0.startswith("name:"):
                name = call.arg0[len("name:"):]
                if name in summary.const_globals:
                    yield self.project_finding(
                        config,
                        summary.relpath,
                        call.lineno,
                        call.col,
                        f"{factory}({name}) derives a stream from "
                        f"module constant '{name}'; seeds must flow "
                        "from the caller (parameter or factory child)",
                    )


@register
class DynamicImportLayering(ProjectRule):
    """REP103 — layering holds for dynamic imports too.

    Invariant:
        ``importlib.import_module`` and ``__import__`` targets obey
        the same layer ordering as static imports (foundation <
        substrates < workloads < core < cli, nothing imports the CLI),
        including when the module name is forwarded through a helper's
        first parameter.  Non-literal targets in library code are
        flagged as unverifiable.

    Why:
        REP005 checks ``import``/``from`` statements, so a single
        ``importlib.import_module("repro.core.study")`` inside a
        substrate would silently re-invert the dependency DAG that
        keeps substrates reusable and the study layer swappable.

    Good::

        module = importlib.import_module("repro.dns.wire")  # downward

    Bad::

        # inside repro.dns (a substrate):
        study = importlib.import_module("repro.core.study")
    """

    rule_id = "REP103"
    severity = Severity.ERROR
    description = (
        "importlib/__import__ targets must obey import layering; "
        "non-literal dynamic imports in library code are unverifiable"
    )

    def check(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        modules: Optional[Iterable[str]] = None,
    ) -> Iterable[Finding]:
        """Resolve dynamic-import targets and enforce the layer DAG."""
        forwarders = self._forwarders(project, config)
        for module in _scoped_modules(project, config, modules):
            summary = project.modules[module]
            for call in summary.calls:
                resolved = self._dynamic_importer(project, summary, call)
                if resolved is not None:
                    yield from self._check_site(config, summary, call, direct=True)
                    continue
                callee = project.resolve_call(summary, call)
                if callee in forwarders and call.arg0.startswith("const:"):
                    yield from self._check_site(
                        config, summary, call, direct=False, via=callee
                    )

    def _dynamic_importer(
        self, project: ProjectModel, summary: ModuleSummary, call
    ) -> Optional[str]:
        if call.callee_expr == "__import__":
            return "__import__"
        resolved = project.resolve(summary.module, call.callee_expr)
        return resolved if resolved in DYNAMIC_IMPORTERS else None

    def _forwarders(
        self, project: ProjectModel, config: AnalysisConfig
    ) -> Set[str]:
        """Functions whose first parameter flows into import_module."""
        found: Set[str] = set()
        for module in sorted(project.modules):
            summary = project.modules[module]
            for call in summary.calls:
                if self._dynamic_importer(project, summary, call) is None:
                    continue
                if not call.arg0.startswith("param:"):
                    continue
                param = call.arg0[len("param:"):]
                info = summary.functions.get(call.caller)
                if info is None:
                    continue
                positional = [p for p in info.params if p not in ("self", "cls")]
                if positional and positional[0] == param:
                    found.add(info.qualname)
        return found

    def _check_site(
        self,
        config: AnalysisConfig,
        summary: ModuleSummary,
        call,
        direct: bool,
        via: Optional[str] = None,
    ) -> Iterable[Finding]:
        source_layer = layer_of(summary.module)
        if source_layer is None:
            return
        if not call.arg0.startswith("const:"):
            if direct:
                yield self.project_finding(
                    config,
                    summary.relpath,
                    call.lineno,
                    call.col,
                    "dynamic import with a non-literal target; the "
                    "layering of this edge cannot be verified "
                    "statically — import statically or pass a literal",
                )
            return
        target = call.arg0[len("const:"):]
        suffix = f" (via {via}())" if via else ""
        if target in ("repro.cli", "repro.__main__") and summary.module not in (
            "repro.__main__",
        ):
            yield self.project_finding(
                config,
                summary.relpath,
                call.lineno,
                call.col,
                f"{summary.module} dynamically imports {target}"
                f"{suffix}; the CLI is the top of the stack and "
                "nothing may depend on it",
            )
            return
        target_layer = layer_of(target)
        if target_layer is None or target_layer <= source_layer:
            return
        yield self.project_finding(
            config,
            summary.relpath,
            call.lineno,
            call.col,
            f"{summary.module} (layer {layer_name(source_layer)}) "
            f"dynamically imports {target} (layer "
            f"{layer_name(target_layer)}){suffix}; imports must point "
            "toward the foundation even through importlib",
        )


@register
class DeadPublicApi(ProjectRule):
    """REP104 — every exported name has a live reference.

    Invariant:
        A name listed in a module's ``__all__`` must be referenced by
        at least one other module across src, tests, benchmarks, or
        examples (re-exports and the defining module itself do not
        count as references).

    Why:
        ``__all__`` is the package's public contract.  An exported
        name nobody references is untested, undocumented-by-use API
        surface that still must be kept deterministic and backward
        compatible forever; flagging it keeps the contract honest and
        the maintenance surface small.

    Good::

        # mod.py                      # elsewhere (src or tests)
        __all__ = ["parse"]           from mod import parse

    Bad::

        # mod.py — nothing anywhere mentions 'legacy_parse'
        __all__ = ["parse", "legacy_parse"]
    """

    rule_id = "REP104"
    severity = Severity.WARNING
    description = (
        "names exported via __all__ must be referenced somewhere in "
        "src, tests, benchmarks, or examples (dead public API)"
    )
    #: Reference scans read the entire project, so any dirty file
    #: invalidates every module's findings for this rule.
    global_scope = True

    def check(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        modules: Optional[Iterable[str]] = None,
    ) -> Iterable[Finding]:
        """Cross-reference every ``__all__`` entry against the index."""
        index = project.reference_index()
        for module in _scoped_modules(project, config, modules):
            summary = project.modules[module]
            for name in summary.exports:
                if name.startswith("__"):
                    continue
                if self._is_referenced(project, index, module, name):
                    continue
                yield self.project_finding(
                    config,
                    summary.relpath,
                    summary.exports_lineno or 1,
                    1,
                    f"exported name '{name}' in __all__ of "
                    f"{module} is never referenced by src, tests, "
                    "benchmarks, or examples (dead public API)",
                )

    def _is_referenced(
        self,
        project: ProjectModel,
        index: Dict[str, Set[str]],
        module: str,
        name: str,
    ) -> bool:
        for referrer in index.get(name, ()):
            if referrer == module:
                continue
            other = project.modules[referrer]
            if name in other.exports:
                # A bare re-export is not a use.
                continue
            if other.bindings.get(name) == f"{referrer}.{name}":
                # The defining module mentioning its own definition
                # (or a same-named sibling) is not an external use.
                continue
            return True
        return False
