"""The rule plugin API and registry.

A rule subclasses :class:`Rule`, declares the AST node types it wants
to see, and yields :class:`Finding` objects from :meth:`Rule.visit`.
Registering is one decorator::

    @register
    class NoWallClock(Rule):
        rule_id = "REP001"
        ...

The engine walks each module's tree exactly once and dispatches every
node to the rules that declared interest in its type, so adding rules
does not add passes.
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
from typing import Dict, Iterable, Iterator, List, Tuple, Type

from repro.analysis.findings import Finding, Severity
from repro.errors import ConfigError


class Rule:
    """Base class for all lint rules."""

    #: Whole-program rules set this True and implement :meth:`check`
    #: on a :class:`~repro.analysis.project.ProjectModel` instead of
    #: per-node :meth:`visit`.
    is_project_rule: bool = False

    #: Stable identifier, e.g. ``REP001``.  Used in output, ``noqa``
    #: comments, baselines, and configuration.
    rule_id: str = ""
    #: Default severity; configuration may override per rule.
    severity: Severity = Severity.ERROR
    #: One-line description shown by ``lint --list-rules``.
    description: str = ""
    #: AST node classes this rule wants dispatched to :meth:`visit`.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, ctx: "repro.analysis.engine.ModuleContext") -> bool:  # noqa: F821
        """Whether this rule runs at all for the given module."""
        return True

    def visit(self, node: ast.AST, ctx) -> Iterable[Finding]:
        """Yield findings for one dispatched node."""
        raise NotImplementedError

    def finding(self, ctx, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node`` in ``ctx``'s module."""
        return Finding(
            rule_id=self.rule_id,
            severity=ctx.severity_for(self),
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program (flow-sensitive) rules.

    A project rule never sees individual AST nodes; instead the engine
    hands it the resolved :class:`~repro.analysis.project.ProjectModel`
    once per run and the rule reports findings anywhere in the project.
    ``modules`` restricts the pass to the dirty dependency cone during
    incremental runs; ``None`` means the whole project.
    """

    is_project_rule = True
    #: Rules whose findings in module M depend only on M and M's
    #: transitive imports can be recomputed for the dirty cone alone.
    #: Rules that read the entire project (e.g. reference scans) set
    #: this True and are recomputed globally whenever anything changed.
    global_scope: bool = False

    def visit(self, node: ast.AST, ctx) -> Iterable[Finding]:
        """Project rules take no per-node dispatch."""
        return ()

    def check(self, project, config, modules=None) -> Iterable[Finding]:
        """Yield findings over the project model."""
        raise NotImplementedError

    def project_finding(
        self, config, relpath: str, line: int, col: int, message: str
    ) -> Finding:
        """Build a finding at an absolute project location."""
        override = config.severity_overrides.get(self.rule_id)
        return Finding(
            rule_id=self.rule_id,
            severity=override if override is not None else self.severity,
            path=relpath,
            line=line,
            col=col,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ConfigError(f"rule {rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ConfigError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rule_ids() -> List[str]:
    """Sorted ids of every registered rule."""
    _ensure_builtin_loaded()
    return sorted(_REGISTRY)


def instantiate(rule_ids: Iterable[str]) -> List[Rule]:
    """Instances for the given ids, in sorted id order."""
    _ensure_builtin_loaded()
    instances = []
    for rule_id in sorted(set(rule_ids)):
        try:
            instances.append(_REGISTRY[rule_id]())
        except KeyError:
            raise ConfigError(f"unknown rule id {rule_id!r}") from None
    return instances


def iter_rules() -> Iterator[Type[Rule]]:
    """All registered rule classes in id order."""
    _ensure_builtin_loaded()
    for rule_id in sorted(_REGISTRY):
        yield _REGISTRY[rule_id]


def _ensure_builtin_loaded() -> None:
    # Deferred so that `rules` and `builtin` may import each other's
    # neighbours without a cycle at module import time.
    import repro.analysis.builtin  # noqa: F401  (registers on import)
    import repro.analysis.program_rules  # noqa: F401  (REP101-REP104)
    import repro.analysis.effect_rules  # noqa: F401  (REP201-REP204)
    import repro.analysis.concurrency_rules  # noqa: F401  (REP301-REP305)


#: Section headers every rule docstring must carry for ``--explain``.
EXPLAIN_SECTIONS = ("Invariant", "Why", "Good", "Bad")

_SECTION_HEADER_RE = re.compile(
    r"^(?P<name>Invariant|Why|Good|Bad)::?\s*(?P<inline>.*)$"
)


def explain_sections(rule_cls: Type[Rule]) -> Dict[str, str]:
    """Parse the ``Invariant/Why/Good/Bad`` sections of a rule docstring.

    Rule docstrings are the single source of truth for ``--explain``:
    a one-line summary, then an ``Invariant:`` statement, a ``Why:``
    rationale, and ``Good::`` / ``Bad::`` code examples.  Missing
    sections raise :class:`ConfigError` so an undocumented rule cannot
    ship silently.
    """
    doc = inspect.getdoc(rule_cls) or ""
    sections: Dict[str, List[str]] = {"Summary": []}
    current = "Summary"
    for line in doc.splitlines():
        # Headers sit at the left margin of the dedented docstring;
        # indented occurrences (inside an example) are body text.
        header = (
            _SECTION_HEADER_RE.match(line) if not line.startswith(" ") else None
        )
        if header is not None:
            current = header.group("name")
            sections[current] = (
                [header.group("inline")] if header.group("inline") else []
            )
            continue
        sections.setdefault(current, []).append(line)
    missing = [name for name in EXPLAIN_SECTIONS if name not in sections]
    if missing:
        raise ConfigError(
            f"rule {rule_cls.rule_id} docstring is missing explain "
            f"section(s): {', '.join(missing)}"
        )
    out: Dict[str, str] = {}
    for name, lines in sections.items():
        text = "\n".join(lines).strip("\n")
        out[name] = text.rstrip()
    return out


def explain(rule_id: str) -> str:
    """Human-readable explanation of one rule, from its docstring."""
    _ensure_builtin_loaded()
    normalized = rule_id.strip().upper()
    try:
        rule_cls = _REGISTRY[normalized]
    except KeyError:
        raise ConfigError(
            f"unknown rule id {rule_id!r} (see --list-rules)"
        ) from None
    sections = explain_sections(rule_cls)
    kind = "whole-program" if rule_cls.is_project_rule else "per-file"
    parts = [
        f"{rule_cls.rule_id} ({rule_cls.severity.value}, {kind}) — "
        f"{rule_cls.description}",
        "",
        "Invariant:",
        _indent(sections["Invariant"]),
        "",
        "Why:",
        _indent(sections["Why"]),
        "",
        "Good:",
        _indent(sections["Good"]),
        "",
        "Bad:",
        _indent(sections["Bad"]),
    ]
    return "\n".join(parts)


def _indent(text: str, prefix: str = "  ") -> str:
    return textwrap.indent(textwrap.dedent(text), prefix)
