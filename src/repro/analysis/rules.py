"""The rule plugin API and registry.

A rule subclasses :class:`Rule`, declares the AST node types it wants
to see, and yields :class:`Finding` objects from :meth:`Rule.visit`.
Registering is one decorator::

    @register
    class NoWallClock(Rule):
        rule_id = "REP001"
        ...

The engine walks each module's tree exactly once and dispatches every
node to the rules that declared interest in its type, so adding rules
does not add passes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Tuple, Type

from repro.analysis.findings import Finding, Severity
from repro.errors import ConfigError


class Rule:
    """Base class for all lint rules."""

    #: Stable identifier, e.g. ``REP001``.  Used in output, ``noqa``
    #: comments, baselines, and configuration.
    rule_id: str = ""
    #: Default severity; configuration may override per rule.
    severity: Severity = Severity.ERROR
    #: One-line description shown by ``lint --list-rules``.
    description: str = ""
    #: AST node classes this rule wants dispatched to :meth:`visit`.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, ctx: "repro.analysis.engine.ModuleContext") -> bool:  # noqa: F821
        """Whether this rule runs at all for the given module."""
        return True

    def visit(self, node: ast.AST, ctx) -> Iterable[Finding]:
        """Yield findings for one dispatched node."""
        raise NotImplementedError

    def finding(self, ctx, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node`` in ``ctx``'s module."""
        return Finding(
            rule_id=self.rule_id,
            severity=ctx.severity_for(self),
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ConfigError(f"rule {rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ConfigError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rule_ids() -> List[str]:
    """Sorted ids of every registered rule."""
    _ensure_builtin_loaded()
    return sorted(_REGISTRY)


def instantiate(rule_ids: Iterable[str]) -> List[Rule]:
    """Instances for the given ids, in sorted id order."""
    _ensure_builtin_loaded()
    instances = []
    for rule_id in sorted(set(rule_ids)):
        try:
            instances.append(_REGISTRY[rule_id]())
        except KeyError:
            raise ConfigError(f"unknown rule id {rule_id!r}") from None
    return instances


def iter_rules() -> Iterator[Type[Rule]]:
    """All registered rule classes in id order."""
    _ensure_builtin_loaded()
    for rule_id in sorted(_REGISTRY):
        yield _REGISTRY[rule_id]


def _ensure_builtin_loaded() -> None:
    # Deferred so that `rules` and `builtin` may import each other's
    # neighbours without a cycle at module import time.
    import repro.analysis.builtin  # noqa: F401  (registers on import)
