"""``python -m repro.analysis`` — run the linter standalone."""

import sys

from repro.analysis.main import main

sys.exit(main())
