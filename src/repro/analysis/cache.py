"""The incremental results cache.

Parsing and walking ~200 files dominates a lint run, so the engine
persists per-file results in ``.repro-analysis-cache.json`` next to
the baseline:

- per file: the source content hash, the per-file findings, and the
  :class:`~repro.analysis.project.ModuleSummary` (the whole-program
  facts), so a warm run re-parses only files whose bytes changed;
- per run: the whole-program findings grouped by module, so an
  unchanged tree skips the project pass entirely and a dirty tree
  recomputes only the dirty modules' dependency cone.

The whole cache is keyed by a signature over the analyzer version,
the resolved rule set, and the behavior-relevant configuration; any
drift discards it wholesale.  A corrupt or unreadable cache is never
fatal — it degrades to a cold run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import ANALYZER_VERSION, Finding

#: Bumped to 2 when module summaries grew per-function effect facts,
#: to 3 when they grew the concurrency facts (with-held locks, lock
#: definitions, resources, lazy inits); older caches carry summaries
#: without them and must never be replayed.
CACHE_FORMAT_VERSION = 3


def content_hash(source: str) -> str:
    """Stable content key for one file's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def ruleset_signature(
    config: AnalysisConfig, rule_ids: Sequence[str]
) -> str:
    """Cache key covering everything that can change the finding set.

    Any difference — analyzer version, enabled rules, severity
    overrides, report/reference scopes — must produce a different
    signature so stale results can never be replayed.
    """
    payload = {
        "analyzer": ANALYZER_VERSION,
        "format": CACHE_FORMAT_VERSION,
        "rules": sorted(rule_ids),
        "severity": {
            rule: severity.value
            for rule, severity in sorted(config.severity_overrides.items())
        },
        "report_paths": sorted(config.report_paths),
        "reference_paths": sorted(config.reference_paths),
        "exclude": sorted(config.exclude),
        "atomic_io_modules": sorted(config.atomic_io_modules),
        "resilient_roots": sorted(config.resilient_roots),
        "lock_attributes": sorted(config.lock_attributes),
        "concurrency_roots": sorted(config.concurrency_roots),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


@dataclass
class FileEntry:
    """Cached results for one analyzed file."""

    hash: str
    findings: List[Finding] = field(default_factory=list)
    summary: Optional[Dict[str, object]] = None
    #: Whether the entry was produced with per-file rules enabled.
    #: Reference-only scans (tests, benchmarks) carry summaries but no
    #: findings; they must not satisfy a lookup that needs lint results.
    lint: bool = True


@dataclass
class AnalysisCache:
    """In-memory view of the on-disk cache, saved back after a run."""

    signature: str
    files: Dict[str, FileEntry] = field(default_factory=dict)
    program_findings: Dict[str, List[Finding]] = field(default_factory=dict)
    #: Whether ``program_findings`` reflects a completed project pass
    #: (an empty dict is a legitimate "zero findings" result).
    program_valid: bool = False
    #: Statistics for benchmarks and cache-behavior tests.
    hits: int = 0
    misses: int = 0

    def lookup(
        self, relpath: str, source_hash: str, lint: bool = True
    ) -> Optional[FileEntry]:
        """The cached entry for a file, if its content is unchanged."""
        entry = self.files.get(relpath)
        if (
            entry is not None
            and entry.hash == source_hash
            and (entry.lint or not lint)
        ):
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(
        self,
        relpath: str,
        source_hash: str,
        findings: Sequence[Finding],
        summary: Optional[Dict[str, object]],
        lint: bool = True,
    ) -> None:
        """Record fresh results for a file."""
        self.files[relpath] = FileEntry(
            hash=source_hash,
            findings=list(findings),
            summary=summary,
            lint=lint,
        )

    def prune(self, live_relpaths: Sequence[str]) -> None:
        """Drop entries for files that no longer exist in the scan."""
        live = set(live_relpaths)
        for relpath in list(self.files):
            if relpath not in live:
                del self.files[relpath]


def load_cache(path: Path, signature: str) -> AnalysisCache:
    """Read the cache, discarding it wholesale on any mismatch.

    Returns an empty cache (cold run) when the file is missing,
    unreadable, malformed, or carries a different signature.
    """
    cache = AnalysisCache(signature=signature)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        return cache
    if not isinstance(data, dict) or data.get("signature") != signature:
        return cache
    try:
        for relpath, entry in data.get("files", {}).items():
            cache.files[str(relpath)] = FileEntry(
                hash=str(entry["hash"]),
                findings=[
                    Finding.from_json(f) for f in entry.get("findings", [])
                ],
                summary=entry.get("summary"),
                lint=bool(entry.get("lint", True)),
            )
        for module, findings in data.get("program", {}).items():
            cache.program_findings[str(module)] = [
                Finding.from_json(f) for f in findings
            ]
        cache.program_valid = bool(data.get("program_valid", False))
    except (KeyError, TypeError, ValueError, AttributeError):
        # A damaged cache degrades to a cold run, never to a crash.
        return AnalysisCache(signature=signature)
    return cache


def save_cache(path: Path, cache: AnalysisCache) -> None:
    """Persist the cache; IO failures are silently non-fatal.

    The write is rename-atomic (unique temp file + ``os.replace``) so
    concurrent lint runs sharing one cache file can never tear each
    other's payloads — a reader sees either the old complete document
    or the new one.  It deliberately skips the fsync half of the full
    durability dance: the cache is disposable state, and a power-loss
    torn rename fails the signature/JSON check and degrades to a cold
    run.
    """
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "tool": "repro.analysis",
        "signature": cache.signature,
        "files": {
            relpath: {
                "hash": entry.hash,
                "findings": [f.to_json() for f in entry.findings],
                "summary": entry.summary,
                "lint": entry.lint,
            }
            for relpath, entry in sorted(cache.files.items())
        },
        "program": {
            module: [f.to_json() for f in findings]
            for module, findings in sorted(cache.program_findings.items())
        },
        "program_valid": cache.program_valid,
    }
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(  # repro: noqa[REP201]  # rename-atomic, fsync waived
            json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
