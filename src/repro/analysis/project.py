"""The whole-program project model.

Per-file AST rules cannot see a wall-clock read or an unseeded RNG
laundered through a helper two modules away.  This module builds the
facts that make such flows visible:

- a :class:`ModuleSummary` per file — bindings (what each local name
  resolves to), definitions, call sites, exports, references,
  dynamic-import sites, and per-function **effect summaries**
  (filesystem writes, fsync/replace, exception handlers, shared-state
  mutations, process/thread spawns, with-held lock contexts, lock
  definitions, OS-resource acquisitions, lazy-init fills) — produced
  by **one** AST walk and cheap enough to serialize into the results
  cache;
- a :class:`ProjectModel` over all summaries — resolved qualified
  names, the intra-project call graph, the module import graph, taint
  propagation (which functions transitively reach a given sink),
  forward reachability (which functions a set of entry points can
  reach), exception-class ancestry, and the dependency cone used for
  incremental re-analysis.

Summaries are pure data (JSON round-trippable), so a warm run rebuilds
the whole model without re-parsing a single unchanged file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Marker used as the caller of module-level (top-level) call sites.
MODULE_SCOPE = "<module>"


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    name: str
    lineno: int
    col: int
    public: bool
    decorated: bool = False
    nested: bool = False
    is_method: bool = False
    #: Positional parameters in true declaration order (positional-only
    #: first, then regular); keyword-only parameters live in ``kwonly``.
    params: List[str] = field(default_factory=list)
    kwonly: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        """Serializable form for the results cache."""
        return {
            "qualname": self.qualname,
            "name": self.name,
            "lineno": self.lineno,
            "col": self.col,
            "public": self.public,
            "decorated": self.decorated,
            "nested": self.nested,
            "is_method": self.is_method,
            "params": list(self.params),
            "kwonly": list(self.kwonly),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FunctionInfo":
        """Rebuild from :meth:`to_json` output."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class CallSite:
    """One call expression inside a function (or at module level)."""

    caller: str
    callee_expr: str
    lineno: int
    col: int
    #: Shape of the first positional (or ``seed=``) argument:
    #: ``"none"`` (no args), ``"const:<value>"`` for literals,
    #: ``"param:<name>"`` when it names a parameter of the caller,
    #: ``"name:<id>"`` for any other bare name, ``"other"`` otherwise.
    arg0: str = "other"
    #: Dotted ``with``-context expressions held when the call executes
    #: (lock candidates for the blocking-call-under-lock rule).
    guards: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        """Serializable form for the results cache."""
        data: Dict[str, object] = {
            "caller": self.caller,
            "callee_expr": self.callee_expr,
            "lineno": self.lineno,
            "col": self.col,
            "arg0": self.arg0,
        }
        if self.guards:
            data["guards"] = list(self.guards)
        return data

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "CallSite":
        """Rebuild from :meth:`to_json` output."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class ImportEdge:
    """One import statement (static or ``TYPE_CHECKING``-guarded)."""

    target: str
    lineno: int
    col: int
    type_checking: bool = False
    function_scope: bool = False

    def to_json(self) -> Dict[str, object]:
        """Serializable form for the results cache."""
        return {
            "target": self.target,
            "lineno": self.lineno,
            "col": self.col,
            "type_checking": self.type_checking,
            "function_scope": self.function_scope,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ImportEdge":
        """Rebuild from :meth:`to_json` output."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class WriteSite:
    """One filesystem-write expression inside a function.

    ``kind`` is ``"open"`` for ``open(..., "w")``-style calls (``mode``
    carries the literal mode string), ``"method"`` for
    ``path.write_text``/``path.write_bytes``, and ``"call"`` for
    write-sink calls such as ``np.save(path, ...)`` whose callee is
    resolved against the project model at rule time.
    """

    kind: str
    callee: str
    mode: str
    lineno: int
    col: int

    def to_json(self) -> Dict[str, object]:
        """Serializable form for the results cache."""
        return {
            "kind": self.kind,
            "callee": self.callee,
            "mode": self.mode,
            "lineno": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "WriteSite":
        """Rebuild from :meth:`to_json` output."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class ExceptSite:
    """One ``except`` handler inside a function.

    ``types`` holds the dotted handler-type expressions (empty for a
    bare ``except:``); ``reraises`` is True when any ``raise`` appears
    in the handler body, so the handler propagates rather than
    swallows.
    """

    lineno: int
    col: int
    types: List[str] = field(default_factory=list)
    bare: bool = False
    reraises: bool = False

    def to_json(self) -> Dict[str, object]:
        """Serializable form for the results cache."""
        return {
            "lineno": self.lineno,
            "col": self.col,
            "types": list(self.types),
            "bare": self.bare,
            "reraises": self.reraises,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ExceptSite":
        """Rebuild from :meth:`to_json` output."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class MutationSite:
    """One mutation of named state inside a function.

    For name mutations ``target`` is the bare name (checked against
    module globals at rule time); for attribute mutations it is the
    first attribute after ``self``/``cls``.  ``kind`` is ``"assign"``
    (rebinding, including augmented), ``"subscript"`` (item write), a
    ``"call:<method>"`` mutator-method call, ``"nonlocal"`` for a
    captured-variable rebinding, or ``"lazy"`` for a
    ``if self._x is None: self._x = ...`` lazy initialization.
    ``guards`` lists the dotted ``with``-context expressions held at
    the mutation site (lock candidates, checked at rule time).
    """

    target: str
    kind: str
    lineno: int
    col: int
    guards: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        """Serializable form for the results cache."""
        data: Dict[str, object] = {
            "target": self.target,
            "kind": self.kind,
            "lineno": self.lineno,
            "col": self.col,
        }
        if self.guards:
            data["guards"] = list(self.guards)
        return data

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "MutationSite":
        """Rebuild from :meth:`to_json` output."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class WithInfo:
    """One ``with`` context entry on a dotted expression.

    ``expr`` is the dotted context expression (``self._lock``,
    ``_REGISTRY_LOCK``); ``held`` lists the dotted expressions of the
    enclosing ``with`` contexts already entered at this point, in
    acquisition order — the raw material for the lock-ordering graph.
    Call-valued contexts (``with open(...)``) are resource facts, not
    with facts, and are recorded as :class:`ResourceSite` instead.
    """

    expr: str
    lineno: int
    col: int
    held: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        """Serializable form for the results cache."""
        return {
            "expr": self.expr,
            "lineno": self.lineno,
            "col": self.col,
            "held": list(self.held),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "WithInfo":
        """Rebuild from :meth:`to_json` output."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class LockSite:
    """One lock-object definition (``self._lock = threading.Lock()``).

    ``scope`` is ``"attr"`` for instance/class attributes (``target``
    is the first attribute after ``self``/``cls``) and ``"global"``
    for module-level names.  ``factory`` is the dotted constructor
    expression (``threading.Lock``, ``RLock``, ...), resolved against
    the project model at rule time.
    """

    target: str
    factory: str
    scope: str
    lineno: int
    col: int

    def to_json(self) -> Dict[str, object]:
        """Serializable form for the results cache."""
        return {
            "target": self.target,
            "factory": self.factory,
            "scope": self.scope,
            "lineno": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "LockSite":
        """Rebuild from :meth:`to_json` output."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class ResourceSite:
    """One OS-resource acquisition (``open``/``mmap``/mmap'd ``np.load``).

    ``name`` is the local the handle was bound to (empty when the
    handle is used inline).  ``managed`` is True when the acquisition
    already has a lifecycle owner: a ``with`` context, an immediate
    ``return`` (the caller owns it), a direct argument position (the
    callee owns it), or an instance-attribute binding (the object owns
    it).  Unmanaged sites must be closed in a ``finally`` or they leak
    on the first exception.
    """

    kind: str
    callee: str
    name: str
    managed: bool
    lineno: int
    col: int

    def to_json(self) -> Dict[str, object]:
        """Serializable form for the results cache."""
        return {
            "kind": self.kind,
            "callee": self.callee,
            "name": self.name,
            "managed": self.managed,
            "lineno": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ResourceSite":
        """Rebuild from :meth:`to_json` output."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class SpawnSite:
    """One process/thread-spawn expression with a worker callable.

    ``target`` is the dotted expression naming the callable handed to
    ``pool.map``/``pool.submit`` (``kind="pool"``) or to
    ``Thread(target=...)``/``Process(target=...)`` (``kind="thread"``);
    it is resolved against the project model at rule time.
    """

    target: str
    kind: str
    lineno: int
    col: int

    def to_json(self) -> Dict[str, object]:
        """Serializable form for the results cache."""
        return {
            "target": self.target,
            "kind": self.kind,
            "lineno": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "SpawnSite":
        """Rebuild from :meth:`to_json` output."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class FunctionEffects:
    """Effect summary for one function (or the module top level).

    ``fsyncs``/``replaces`` record whether the function itself calls
    ``os.fsync`` and ``os.replace``/``os.rename`` — together they mark
    the sanctioned atomic-write dance, exempting the function's raw
    writes from REP201.

    The concurrency pass adds: ``withs`` (dotted ``with`` contexts and
    what was held when each was entered), ``locks`` (lock-object
    definitions), ``resources`` (OS-handle acquisitions),
    ``lazy_inits`` (``if self._x is None: self._x = ...`` fills), and
    ``closed``/``finally_closed`` (locals explicitly ``.close()``d,
    the latter from inside a ``finally`` block or via ``closing()``).
    """

    writes: List[WriteSite] = field(default_factory=list)
    excepts: List[ExceptSite] = field(default_factory=list)
    name_mutations: List[MutationSite] = field(default_factory=list)
    attr_mutations: List[MutationSite] = field(default_factory=list)
    spawns: List[SpawnSite] = field(default_factory=list)
    fsyncs: bool = False
    replaces: bool = False
    withs: List[WithInfo] = field(default_factory=list)
    locks: List[LockSite] = field(default_factory=list)
    resources: List[ResourceSite] = field(default_factory=list)
    lazy_inits: List[MutationSite] = field(default_factory=list)
    closed: List[str] = field(default_factory=list)
    finally_closed: List[str] = field(default_factory=list)

    def is_empty(self) -> bool:
        """Whether nothing was recorded (entry can be omitted)."""
        return not (
            self.writes
            or self.excepts
            or self.name_mutations
            or self.attr_mutations
            or self.spawns
            or self.fsyncs
            or self.replaces
            or self.withs
            or self.locks
            or self.resources
            or self.lazy_inits
            or self.closed
            or self.finally_closed
        )

    def to_json(self) -> Dict[str, object]:
        """Serializable form for the results cache."""
        return {
            "writes": [w.to_json() for w in self.writes],
            "excepts": [e.to_json() for e in self.excepts],
            "name_mutations": [m.to_json() for m in self.name_mutations],
            "attr_mutations": [m.to_json() for m in self.attr_mutations],
            "spawns": [s.to_json() for s in self.spawns],
            "fsyncs": self.fsyncs,
            "replaces": self.replaces,
            "withs": [w.to_json() for w in self.withs],
            "locks": [k.to_json() for k in self.locks],
            "resources": [r.to_json() for r in self.resources],
            "lazy_inits": [m.to_json() for m in self.lazy_inits],
            "closed": list(self.closed),
            "finally_closed": list(self.finally_closed),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FunctionEffects":
        """Rebuild from :meth:`to_json` output (tolerant of old caches)."""
        return cls(
            writes=[WriteSite.from_json(w) for w in data.get("writes", [])],  # type: ignore[union-attr]
            excepts=[ExceptSite.from_json(e) for e in data.get("excepts", [])],  # type: ignore[union-attr]
            name_mutations=[
                MutationSite.from_json(m)
                for m in data.get("name_mutations", [])  # type: ignore[union-attr]
            ],
            attr_mutations=[
                MutationSite.from_json(m)
                for m in data.get("attr_mutations", [])  # type: ignore[union-attr]
            ],
            spawns=[SpawnSite.from_json(s) for s in data.get("spawns", [])],  # type: ignore[union-attr]
            fsyncs=bool(data.get("fsyncs", False)),
            replaces=bool(data.get("replaces", False)),
            withs=[WithInfo.from_json(w) for w in data.get("withs", [])],  # type: ignore[union-attr]
            locks=[LockSite.from_json(k) for k in data.get("locks", [])],  # type: ignore[union-attr]
            resources=[
                ResourceSite.from_json(r)
                for r in data.get("resources", [])  # type: ignore[union-attr]
            ],
            lazy_inits=[
                MutationSite.from_json(m)
                for m in data.get("lazy_inits", [])  # type: ignore[union-attr]
            ],
            closed=list(data.get("closed", [])),  # type: ignore[arg-type]
            finally_closed=list(data.get("finally_closed", [])),  # type: ignore[arg-type]
        )


@dataclass
class ModuleSummary:
    """Whole-program facts extracted from one module in one AST walk."""

    module: str
    relpath: str
    bindings: Dict[str, str] = field(default_factory=dict)
    star_imports: List[str] = field(default_factory=list)
    imports: List[ImportEdge] = field(default_factory=list)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    calls: List[CallSite] = field(default_factory=list)
    module_assigns: List[CallSite] = field(default_factory=list)
    const_globals: Dict[str, int] = field(default_factory=dict)
    exports: List[str] = field(default_factory=list)
    exports_lineno: int = 0
    refs: List[str] = field(default_factory=list)
    noqa: Dict[int, List[str]] = field(default_factory=dict)
    #: Effect summaries keyed by function qualname (module-level
    #: effects live under :data:`MODULE_SCOPE`); empty entries are
    #: omitted to keep the cache small.
    effects: Dict[str, FunctionEffects] = field(default_factory=dict)
    #: Class qualname -> dotted base-class expressions, for
    #: exception-hierarchy resolution and cache-field grouping.
    classes: Dict[str, List[str]] = field(default_factory=dict)
    #: Module-level names bound to mutable literals (dict/list/set
    #: displays, comprehensions, or container constructors) -> lineno.
    mutable_globals: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        """Serializable form for the results cache."""
        return {
            "module": self.module,
            "relpath": self.relpath,
            "bindings": dict(self.bindings),
            "star_imports": list(self.star_imports),
            "imports": [edge.to_json() for edge in self.imports],
            "functions": {
                name: info.to_json() for name, info in self.functions.items()
            },
            "calls": [call.to_json() for call in self.calls],
            "module_assigns": [call.to_json() for call in self.module_assigns],
            "const_globals": dict(self.const_globals),
            "exports": list(self.exports),
            "exports_lineno": self.exports_lineno,
            "refs": list(self.refs),
            "noqa": {str(line): ids for line, ids in self.noqa.items()},
            "effects": {
                name: fx.to_json()
                for name, fx in self.effects.items()
                if not fx.is_empty()
            },
            "classes": {name: list(b) for name, b in self.classes.items()},
            "mutable_globals": dict(self.mutable_globals),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ModuleSummary":
        """Rebuild from :meth:`to_json` output."""
        return cls(
            module=str(data["module"]),
            relpath=str(data["relpath"]),
            bindings=dict(data.get("bindings", {})),  # type: ignore[arg-type]
            star_imports=list(data.get("star_imports", [])),  # type: ignore[arg-type]
            imports=[
                ImportEdge.from_json(e) for e in data.get("imports", [])  # type: ignore[union-attr]
            ],
            functions={
                name: FunctionInfo.from_json(info)
                for name, info in data.get("functions", {}).items()  # type: ignore[union-attr]
            },
            calls=[CallSite.from_json(c) for c in data.get("calls", [])],  # type: ignore[union-attr]
            module_assigns=[
                CallSite.from_json(c) for c in data.get("module_assigns", [])  # type: ignore[union-attr]
            ],
            const_globals=dict(data.get("const_globals", {})),  # type: ignore[arg-type]
            exports=list(data.get("exports", [])),  # type: ignore[arg-type]
            exports_lineno=int(data.get("exports_lineno", 0)),  # type: ignore[arg-type]
            refs=list(data.get("refs", [])),  # type: ignore[arg-type]
            noqa={
                int(line): list(ids)
                for line, ids in data.get("noqa", {}).items()  # type: ignore[union-attr]
            },
            effects={
                name: FunctionEffects.from_json(fx)
                for name, fx in data.get("effects", {}).items()  # type: ignore[union-attr]
            },
            classes={
                name: list(bases)
                for name, bases in data.get("classes", {}).items()  # type: ignore[union-attr]
            },
            mutable_globals=dict(data.get("mutable_globals", {})),  # type: ignore[arg-type]
        )


def _dotted_expr(node: ast.AST) -> Optional[str]:
    """Dotted source text of a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "reverse",
    "setdefault", "sort", "update",
})
#: Call tails treated as write sinks when the callee resolves to a
#: known serializer (``np.save`` and friends); the file operand is the
#: first positional argument.
_WRITE_SINK_TAILS = frozenset({"save", "savez", "savez_compressed"})
#: Constructors of in-memory buffers; writes into such locals are not
#: filesystem writes.
_MEMORY_BUFFER_FACTORIES = frozenset({"BytesIO", "StringIO"})
#: Constructor tails that spawn a worker with a ``target=`` callable.
_THREAD_SPAWNERS = frozenset({"Thread", "Process", "Timer"})
#: Executor methods whose first positional argument is the worker.
_POOL_DISPATCH_ANY = frozenset({"submit", "apply_async", "starmap"})
#: Executor methods so generic (``.map``) that the receiver name must
#: look like a pool/executor before the call counts as a spawn.
_POOL_DISPATCH_GUARDED = frozenset({"map", "imap", "imap_unordered"})
#: Constructor tails that create a lock object; assignments of such
#: calls to attributes or module globals become :class:`LockSite`s.
_LOCK_FACTORY_TAILS = frozenset({
    "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition",
})
#: Exact callees that acquire an OS resource handle.
_RESOURCE_OPENERS = frozenset({
    "open", "io.open", "gzip.open", "bz2.open", "lzma.open",
    "tarfile.open", "mmap.mmap",
})


def _is_type_checking_test(test: ast.AST) -> bool:
    """Whether an ``if`` test is the ``typing.TYPE_CHECKING`` guard."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class _Summarizer(ast.NodeVisitor):
    """Single-pass visitor building a :class:`ModuleSummary`."""

    def __init__(self, module: str, relpath: str) -> None:
        self.summary = ModuleSummary(module=module, relpath=relpath)
        self._scope: List[str] = []
        self._class_depth = 0
        self._func_depth = 0
        self._params: List[Set[str]] = []
        self._type_checking_depth = 0
        # Per-function-scope stacks (index 0 is module scope): names of
        # in-memory buffer locals, `global` declarations, and
        # `nonlocal` declarations.
        self._memio: List[Set[str]] = [set()]
        self._global_decls: List[Set[str]] = [set()]
        self._nonlocal_decls: List[Set[str]] = [set()]
        # Dotted `with`-context expressions currently entered, in
        # acquisition order — a nested function body does not run under
        # its definer's locks, so this is also a per-function stack.
        self._held: List[List[str]] = [[]]
        # Depth of enclosing `finally` blocks in the current function.
        self._in_finally: List[int] = [0]
        # Pre-marked lifecycle context for Call nodes about to be
        # visited: id(call node) -> (bound local name, managed).
        self._resource_ctx: Dict[int, Tuple[str, bool]] = {}

    # -- scope bookkeeping -------------------------------------------------

    def _qualname(self, name: str) -> str:
        return ".".join([self.summary.module] + self._scope + [name])

    def _caller(self) -> str:
        if not self._scope or self._func_depth == 0:
            return MODULE_SCOPE
        return ".".join([self.summary.module] + self._scope)

    def _fx(self) -> FunctionEffects:
        """The effect accumulator for the enclosing function scope."""
        key = self._caller()
        fx = self.summary.effects.get(key)
        if fx is None:
            fx = FunctionEffects()
            self.summary.effects[key] = fx
        return fx

    # -- definitions -------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def _handle_function(self, node: ast.AST) -> None:
        name = node.name
        qualname = self._qualname(name)
        public = not any(
            part.startswith("_")
            for part in qualname[len(self.summary.module) + 1:].split(".")
        )
        params = [arg.arg for arg in node.args.posonlyargs]
        params += [arg.arg for arg in node.args.args]
        kwonly = [arg.arg for arg in node.args.kwonlyargs]
        info = FunctionInfo(
            qualname=qualname,
            name=name,
            lineno=node.lineno,
            col=node.col_offset + 1,
            public=public,
            decorated=bool(node.decorator_list),
            nested=self._func_depth > 0,
            is_method=self._class_depth > 0 and self._func_depth == 0,
            params=params,
            kwonly=kwonly,
        )
        self.summary.functions[qualname] = info
        if not self._scope:
            self.summary.bindings.setdefault(
                name, f"{self.summary.module}.{name}"
            )
        self.summary.refs.append(name)
        self._scope.append(name)
        self._func_depth += 1
        self._params.append(set(params) | set(kwonly))
        self._memio.append(set())
        self._global_decls.append(set())
        self._nonlocal_decls.append(set())
        self._held.append([])
        self._in_finally.append(0)
        self.generic_visit(node)
        self._in_finally.pop()
        self._held.pop()
        self._nonlocal_decls.pop()
        self._global_decls.pop()
        self._memio.pop()
        self._params.pop()
        self._func_depth -= 1
        self._scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._scope:
            self.summary.bindings.setdefault(
                node.name, f"{self.summary.module}.{node.name}"
            )
        self.summary.refs.append(node.name)
        bases = [
            dotted
            for dotted in (_dotted_expr(base) for base in node.bases)
            if dotted is not None
        ]
        self.summary.classes[self._qualname(node.name)] = bases
        self._scope.append(node.name)
        self._class_depth += 1
        self.generic_visit(node)
        self._class_depth -= 1
        self._scope.pop()

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            target = alias.name
            self.summary.refs.append(target.split(".")[-1])
            if alias.asname:
                self.summary.bindings[alias.asname] = target
            else:
                # `import a.b` binds `a`; attribute walks resolve the rest.
                head = target.split(".")[0]
                self.summary.bindings.setdefault(head, head)
            self.summary.imports.append(
                ImportEdge(
                    target=target,
                    lineno=node.lineno,
                    col=node.col_offset + 1,
                    type_checking=self._type_checking_depth > 0,
                    function_scope=self._func_depth > 0,
                )
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._resolve_relative(node)
        for alias in node.names:
            if alias.name == "*":
                self.summary.star_imports.append(base)
                continue
            self.summary.refs.append(alias.name)
            local = alias.asname or alias.name
            self.summary.bindings[local] = f"{base}.{alias.name}" if base else alias.name
        self.summary.imports.append(
            ImportEdge(
                target=base,
                lineno=node.lineno,
                col=node.col_offset + 1,
                type_checking=self._type_checking_depth > 0,
                function_scope=self._func_depth > 0,
            )
        )
        self.generic_visit(node)

    def _resolve_relative(self, node: ast.ImportFrom) -> str:
        module = node.module or ""
        if not node.level:
            return module
        base = self.summary.module.split(".")
        base = base[: len(base) - node.level] or base[:1]
        return ".".join(base + ([module] if module else []))

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._type_checking_depth += 1
            for stmt in node.body:
                self.visit(stmt)
            self._type_checking_depth -= 1
            for stmt in node.orelse:
                self.visit(stmt)
            if isinstance(node.test, (ast.Name, ast.Attribute)):
                self._record_ref_expr(node.test)
            return
        self._record_lazy_init(node)
        self.generic_visit(node)

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        """The attribute name of a plain ``self.<x>``/``cls.<x>`` expr."""
        dotted = _dotted_expr(node)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] in ("self", "cls") and len(parts) == 2:
            return parts[1]
        return None

    def _record_lazy_init(self, node: ast.If) -> None:
        """Detect ``if self._x is None: self._x = ...`` fill patterns.

        The check-then-fill is atomic only under a lock; recorded with
        the held guards so the rule can tell synchronized fills apart.
        """
        if self._func_depth == 0:
            return
        test = node.test
        attr: Optional[str] = None
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            attr = self._self_attr(test.left)
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            attr = self._self_attr(test.operand)
        if attr is None:
            return
        for stmt in node.body:
            for child in ast.walk(stmt):
                if isinstance(child, ast.Assign):
                    targets: Sequence[ast.AST] = child.targets
                elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                    targets = [child.target]
                else:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and self._self_attr(target) == attr
                    ):
                        self._fx().lazy_inits.append(
                            MutationSite(attr, "lazy", node.lineno,
                                         node.col_offset + 1,
                                         list(self._held[-1]))
                        )
                        return

    # -- calls and assignments --------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        callee = _dotted_expr(node.func)
        if callee is not None:
            self.summary.calls.append(
                CallSite(
                    caller=self._caller(),
                    callee_expr=callee,
                    lineno=node.lineno,
                    col=node.col_offset + 1,
                    arg0=self._arg0_kind(node),
                    guards=list(self._held[-1]),
                )
            )
            self._record_write_effects(node, callee)
            self._record_spawn_effects(node, callee)
            self._record_mutator_call(node, callee)
            self._record_resource(node, callee)
            self._record_close(node, callee)
        elif isinstance(node.func, ast.Attribute):
            # Computed receivers — `(root / "x").write_text(...)`,
            # `tmp_path.with_suffix(".json").open("w")` — have no dotted
            # form, but the write effect is just as real.  Record it
            # under a placeholder receiver so REP201 still sees it.
            self._record_computed_write(node, node.func.attr)
        # A handle passed straight into another call is owned by the
        # callee (`closing(open(p))`, `stack.enter_context(open(p))`).
        for child in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(child, ast.Call):
                self._resource_ctx[id(child)] = ("", True)
        self.generic_visit(node)
        self._resource_ctx.pop(id(node), None)

    def _record_computed_write(self, node: ast.Call, tail: str) -> None:
        if tail in ("write_text", "write_bytes"):
            self._add_write(
                WriteSite("method", f"<expr>.{tail}", "",
                          node.lineno, node.col_offset + 1)
            )
        elif tail == "open":
            mode = self._literal_mode(node, position=0)
            if mode is not None and set(mode) & set("wax+"):
                self._add_write(WriteSite("open", f"<expr>.{tail}", mode,
                                          node.lineno, node.col_offset + 1))

    # -- effect extraction -------------------------------------------------

    def _record_write_effects(self, node: ast.Call, callee: str) -> None:
        tail = callee.rsplit(".", 1)[-1]
        if callee in ("os.fsync",):
            self._fx().fsyncs = True
            return
        if callee in ("os.replace", "os.rename"):
            self._fx().replaces = True
            return
        if callee in ("open", "io.open"):
            mode = self._literal_mode(node, position=1)
            if mode is not None and set(mode) & set("wax+"):
                self._add_write(WriteSite("open", callee, mode,
                                          node.lineno, node.col_offset + 1))
            return
        if "." not in callee:
            return
        if tail == "open":
            # Path.open(mode=...): mode is the first positional.
            mode = self._literal_mode(node, position=0)
            if mode is not None and set(mode) & set("wax+"):
                self._add_write(WriteSite("open", callee, mode,
                                          node.lineno, node.col_offset + 1))
        elif tail in ("write_text", "write_bytes"):
            receiver = callee[: -(len(tail) + 1)]
            if receiver not in self._memio[-1]:
                self._add_write(WriteSite("method", callee, "",
                                          node.lineno, node.col_offset + 1))
        elif tail in _WRITE_SINK_TAILS:
            arg0 = node.args[0] if node.args else None
            if isinstance(arg0, ast.Name) and arg0.id in self._memio[-1]:
                return
            self._add_write(WriteSite("call", callee, "",
                                      node.lineno, node.col_offset + 1))

    def _add_write(self, site: WriteSite) -> None:
        self._fx().writes.append(site)

    def _literal_mode(self, node: ast.Call, position: int) -> Optional[str]:
        arg: Optional[ast.AST] = (
            node.args[position] if len(node.args) > position else None
        )
        if arg is None:
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    arg = keyword.value
                    break
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None

    def _record_spawn_effects(self, node: ast.Call, callee: str) -> None:
        tail = callee.rsplit(".", 1)[-1]
        if tail in _THREAD_SPAWNERS:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target = _dotted_expr(keyword.value)
                    if target is not None:
                        self._fx().spawns.append(
                            SpawnSite(target, "thread",
                                      node.lineno, node.col_offset + 1)
                        )
                    break
            return
        if "." not in callee:
            return
        if tail in _POOL_DISPATCH_GUARDED:
            receiver_tail = callee.rsplit(".", 2)[-2].lower()
            if "pool" not in receiver_tail and "executor" not in receiver_tail:
                return
        elif tail not in _POOL_DISPATCH_ANY:
            return
        arg0 = node.args[0] if node.args else None
        target = _dotted_expr(arg0) if arg0 is not None else None
        if target is not None:
            self._fx().spawns.append(
                SpawnSite(target, "pool", node.lineno, node.col_offset + 1)
            )

    def _record_mutator_call(self, node: ast.Call, callee: str) -> None:
        if self._func_depth == 0 or "." not in callee:
            return
        tail = callee.rsplit(".", 1)[-1]
        if tail not in _MUTATOR_METHODS:
            return
        receiver = callee[: -(len(tail) + 1)]
        parts = receiver.split(".")
        site_args = (f"call:{tail}", node.lineno, node.col_offset + 1,
                     list(self._held[-1]))
        if parts[0] in ("self", "cls") and len(parts) >= 2:
            self._fx().attr_mutations.append(MutationSite(parts[1], *site_args))
        elif len(parts) == 1 and receiver not in self._params[-1]:
            self._fx().name_mutations.append(MutationSite(receiver, *site_args))

    def _record_resource(self, node: ast.Call, callee: str) -> None:
        tail = callee.rsplit(".", 1)[-1]
        kind: Optional[str] = None
        if callee in _RESOURCE_OPENERS:
            kind = "mmap" if callee == "mmap.mmap" else "open"
        elif "." in callee and tail == "open":
            # `path.open(...)` — only counted with a literal mode so
            # arbitrary factory classmethods named `open` (which return
            # owning objects, not raw handles) don't match.
            if self._literal_mode(node, position=0) is not None:
                kind = "open"
        elif "." in callee and tail == "load":
            for keyword in node.keywords:
                if keyword.arg == "mmap_mode" and not (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is None
                ):
                    kind = "np.load"
                    break
        if kind is None:
            return
        name, managed = self._resource_ctx.get(id(node), ("", False))
        self._fx().resources.append(
            ResourceSite(kind, callee, name, managed,
                         node.lineno, node.col_offset + 1)
        )

    def _record_close(self, node: ast.Call, callee: str) -> None:
        tail = callee.rsplit(".", 1)[-1]
        if tail == "close" and "." in callee:
            receiver = callee[: -(len(tail) + 1)]
            if "." not in receiver:
                self._fx().closed.append(receiver)
                if self._in_finally[-1] > 0:
                    self._fx().finally_closed.append(receiver)
        elif tail == "closing":
            arg0 = node.args[0] if node.args else None
            if isinstance(arg0, ast.Name):
                # `with closing(x):` guarantees the close on every path.
                self._fx().closed.append(arg0.id)
                self._fx().finally_closed.append(arg0.id)

    def _record_lock_def(
        self, targets: Sequence[ast.AST], value: ast.AST
    ) -> None:
        if not isinstance(value, ast.Call):
            return
        callee = _dotted_expr(value.func)
        if callee is None or callee.rsplit(".", 1)[-1] not in _LOCK_FACTORY_TAILS:
            return
        site = (callee, value.lineno, value.col_offset + 1)
        for target in targets:
            if isinstance(target, ast.Name):
                if self._func_depth == 0 and self._class_depth == 0:
                    self._fx().locks.append(
                        LockSite(target.id, site[0], "global", *site[1:])
                    )
                elif self._class_depth > 0 and self._func_depth == 0:
                    # Class-level `_lock = Lock()` shared by instances.
                    self._fx().locks.append(
                        LockSite(target.id, site[0], "attr", *site[1:])
                    )
            elif isinstance(target, ast.Attribute):
                dotted = _dotted_expr(target)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[0] in ("self", "cls") and len(parts) == 2:
                    self._fx().locks.append(
                        LockSite(parts[1], site[0], "attr", *site[1:])
                    )

    def _arg0_kind(self, node: ast.Call) -> str:
        arg: Optional[ast.AST] = node.args[0] if node.args else None
        if arg is None:
            for keyword in node.keywords:
                if keyword.arg in ("seed", "name"):
                    arg = keyword.value
                    break
        if arg is None:
            return "none" if not node.keywords else "other"
        if isinstance(arg, ast.Constant) and isinstance(
            arg.value, (int, str, float)
        ):
            return f"const:{arg.value}"
        if isinstance(arg, ast.Name):
            if self._params and arg.id in self._params[-1]:
                return f"param:{arg.id}"
            return f"name:{arg.id}"
        return "other"

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._scope:
            self._record_module_assign(node.targets, node.value, node)
            self._record_mutable_global(node.targets, node.value, node)
        self._track_memio(node.targets, node.value)
        self._record_lock_def(node.targets, node.value)
        self._mark_assigned_resource(node.targets, node.value)
        if self._func_depth > 0:
            for target in node.targets:
                self._record_mutation_target(target, "assign", node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._scope and node.value is not None:
            self._record_module_assign([node.target], node.value, node)
            self._record_mutable_global([node.target], node.value, node)
        if node.value is not None:
            self._track_memio([node.target], node.value)
            self._record_lock_def([node.target], node.value)
            self._mark_assigned_resource([node.target], node.value)
        if self._func_depth > 0 and node.value is not None:
            self._record_mutation_target(node.target, "assign", node)
        self.generic_visit(node)

    def _mark_assigned_resource(
        self, targets: Sequence[ast.AST], value: ast.AST
    ) -> None:
        """Pre-mark a Call value with its binding before visiting it.

        ``f = open(p)`` binds an unmanaged local the close-tracker can
        match; ``self._fh = open(p)`` hands ownership to the object
        (cross-method lifecycle, out of scope for REP303).
        """
        if not isinstance(value, ast.Call) or len(targets) != 1:
            return
        target = targets[0]
        if isinstance(target, ast.Name):
            self._resource_ctx[id(value)] = (target.id, False)
        elif isinstance(target, ast.Attribute):
            self._resource_ctx[id(value)] = ("", True)

    def visit_Return(self, node: ast.Return) -> None:
        if isinstance(node.value, ast.Call):
            # A returned handle is owned by the caller.
            self._resource_ctx[id(node.value)] = ("", True)
        elif isinstance(node.value, ast.Name):
            # Returning a bound handle transfers ownership too.
            for site in self._fx().resources:
                if site.name == node.value.id:
                    site.managed = True
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._func_depth > 0:
            self._record_mutation_target(node.target, "assign", node)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._global_decls[-1].update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._nonlocal_decls[-1].update(node.names)

    def visit_With(self, node: ast.With) -> None:
        self._handle_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._handle_with(node)

    def _handle_with(self, node: ast.AST) -> None:
        """Record with-contexts, tracking held locks around the body.

        Dotted contexts (``with self._lock:``) become :class:`WithInfo`
        facts and are pushed onto the held stack for the body; call
        contexts (``with open(p) as f:``) are managed resources.
        """
        pushed = 0
        for item in node.items:
            if item.optional_vars is not None:
                self._track_memio([item.optional_vars], item.context_expr)
            ctx = item.context_expr
            if isinstance(ctx, ast.Call):
                self._resource_ctx[id(ctx)] = ("", True)
            else:
                dotted = _dotted_expr(ctx)
                if dotted is not None:
                    self._fx().withs.append(
                        WithInfo(dotted, ctx.lineno, ctx.col_offset + 1,
                                 held=list(self._held[-1]))
                    )
                    self._held[-1].append(dotted)
                    pushed += 1
            self.visit(ctx)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for stmt in node.body:
            self.visit(stmt)
        if pushed:
            del self._held[-1][-pushed:]

    def visit_Try(self, node: ast.Try) -> None:
        self._handle_try(node)

    def visit_TryStar(self, node: ast.AST) -> None:
        self._handle_try(node)

    def _handle_try(self, node: ast.AST) -> None:
        """Visit a try statement, flagging the ``finally`` region."""
        for stmt in node.body:
            self.visit(stmt)
        for handler in node.handlers:
            self.visit(handler)
        for stmt in node.orelse:
            self.visit(stmt)
        self._in_finally[-1] += 1
        for stmt in node.finalbody:
            self.visit(stmt)
        self._in_finally[-1] -= 1

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        types: List[str] = []
        if node.type is not None:
            exprs = (
                list(node.type.elts)
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for expr in exprs:
                dotted = _dotted_expr(expr)
                if dotted is not None:
                    types.append(dotted)
        reraises = any(
            isinstance(inner, ast.Raise)
            for stmt in node.body
            for inner in ast.walk(stmt)
        )
        self._fx().excepts.append(
            ExceptSite(
                lineno=node.lineno,
                col=node.col_offset + 1,
                types=types,
                bare=node.type is None,
                reraises=reraises,
            )
        )
        self.generic_visit(node)

    def _track_memio(self, targets: Sequence[ast.AST], value: ast.AST) -> None:
        if not isinstance(value, ast.Call):
            return
        callee = _dotted_expr(value.func)
        if callee is None:
            return
        if callee.rsplit(".", 1)[-1] not in _MEMORY_BUFFER_FACTORIES:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self._memio[-1].add(target.id)

    def _record_mutable_global(
        self, targets: Sequence[ast.AST], value: ast.AST, node: ast.AST
    ) -> None:
        mutable = isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        )
        if not mutable and isinstance(value, ast.Call):
            callee = _dotted_expr(value.func)
            mutable = callee is not None and callee.rsplit(".", 1)[-1] in (
                "Counter", "OrderedDict", "defaultdict", "deque", "dict",
                "list", "set",
            )
        if not mutable:
            return
        for target in targets:
            if isinstance(target, ast.Name) and target.id != "__all__":
                self.summary.mutable_globals[target.id] = node.lineno

    def _record_mutation_target(
        self, target: ast.AST, kind: str, node: ast.AST
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_mutation_target(elt, kind, node)
            return
        lineno, col = node.lineno, node.col_offset + 1
        guards = list(self._held[-1])
        if isinstance(target, ast.Name):
            if target.id in self._global_decls[-1]:
                self._fx().name_mutations.append(
                    MutationSite(target.id, kind, lineno, col, guards)
                )
            elif target.id in self._nonlocal_decls[-1]:
                self._fx().name_mutations.append(
                    MutationSite(target.id, "nonlocal", lineno, col, guards)
                )
            return
        if isinstance(target, ast.Subscript):
            base = _dotted_expr(target.value)
            if base is None:
                return
            parts = base.split(".")
            if parts[0] in ("self", "cls") and len(parts) >= 2:
                self._fx().attr_mutations.append(
                    MutationSite(parts[1], "subscript", lineno, col, guards)
                )
            elif len(parts) == 1 and base not in self._params[-1]:
                self._fx().name_mutations.append(
                    MutationSite(base, "subscript", lineno, col, guards)
                )
            return
        if isinstance(target, ast.Attribute):
            dotted = _dotted_expr(target)
            if dotted is None:
                return
            parts = dotted.split(".")
            if parts[0] in ("self", "cls") and len(parts) >= 2:
                self._fx().attr_mutations.append(
                    MutationSite(parts[1], kind, lineno, col, guards)
                )

    def _record_module_assign(
        self, targets: Sequence[ast.AST], value: ast.AST, node: ast.AST
    ) -> None:
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        if names == ["__all__"] and isinstance(value, (ast.List, ast.Tuple)):
            self.summary.exports = [
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
            self.summary.exports_lineno = node.lineno
            return
        if isinstance(value, ast.Constant) and isinstance(
            value.value, (int, float, str)
        ):
            for name in names:
                self.summary.const_globals[name] = node.lineno
            return
        if isinstance(value, ast.Call):
            callee = _dotted_expr(value.func)
            if callee is not None:
                for name in names:
                    self.summary.module_assigns.append(
                        CallSite(
                            caller=name,
                            callee_expr=callee,
                            lineno=node.lineno,
                            col=node.col_offset + 1,
                            arg0="other",
                        )
                    )

    # -- references --------------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        self.summary.refs.append(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.summary.refs.append(node.attr)
        self.generic_visit(node)

    def _record_ref_expr(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                self.summary.refs.append(child.id)
            elif isinstance(child, ast.Attribute):
                self.summary.refs.append(child.attr)


def summarize_module(
    tree: ast.Module,
    module: str,
    relpath: str,
    noqa: Optional[Dict[int, Iterable[str]]] = None,
) -> ModuleSummary:
    """Build a :class:`ModuleSummary` from a parsed module."""
    visitor = _Summarizer(module, relpath)
    visitor.visit(tree)
    summary = visitor.summary
    summary.refs = sorted(set(summary.refs))
    if noqa:
        summary.noqa = {
            int(line): sorted(ids) for line, ids in noqa.items()
        }
    return summary


class ProjectModel:
    """Resolved whole-program view over a set of module summaries."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        self._resolution_cache: Dict[Tuple[str, str], Optional[str]] = {}
        self._call_graph: Optional[Dict[str, Set[str]]] = None
        self._reverse_calls: Optional[Dict[str, Set[str]]] = None
        self._import_graph: Optional[Dict[str, Set[str]]] = None
        #: Modules analyzed with per-file rules enabled (set by the
        #: engine).  ``None`` means unknown — project rules then fall
        #: back to the ``repro``-rooted heuristic scope.
        self.lint_modules: Optional[Set[str]] = None

    # -- name resolution ---------------------------------------------------

    def module_of(self, qualname: str) -> Optional[str]:
        """The defining module of a qualified name (longest prefix)."""
        parts = qualname.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    def resolve(self, module: str, dotted: str) -> Optional[str]:
        """Resolve a dotted expression in ``module`` to a qualified name.

        Follows import bindings (including aliases and re-exports
        through package ``__init__`` modules) and ``from x import *``.
        Returns ``None`` when the head name is unknown (builtins,
        locals, call results).
        """
        key = (module, dotted)
        if key in self._resolution_cache:
            return self._resolution_cache[key]
        result = self._resolve_uncached(module, dotted, seen=set())
        self._resolution_cache[key] = result
        return result

    def _resolve_uncached(
        self, module: str, dotted: str, seen: Set[Tuple[str, str]]
    ) -> Optional[str]:
        if (module, dotted) in seen:
            return None
        seen.add((module, dotted))
        summary = self.modules.get(module)
        if summary is None:
            return dotted
        head, _, rest = dotted.partition(".")
        target: Optional[str] = None
        if head in summary.bindings:
            target = summary.bindings[head]
        else:
            for star_target in summary.star_imports:
                star_summary = self.modules.get(star_target)
                if star_summary is None:
                    continue
                visible = (
                    set(star_summary.exports)
                    if star_summary.exports
                    else {
                        name
                        for name in star_summary.bindings
                        if not name.startswith("_")
                    }
                )
                if head in visible:
                    target = f"{star_target}.{head}"
                    break
        if target is None:
            return None
        full = f"{target}.{rest}" if rest else target
        return self._canonicalize(full, seen)

    def _canonicalize(
        self, qualname: str, seen: Set[Tuple[str, str]]
    ) -> str:
        """Follow re-export chains: ``pkg.Name`` -> ``pkg.impl.Name``."""
        owner = self.module_of(qualname)
        if owner is None or owner == qualname:
            return qualname
        remainder = qualname[len(owner) + 1:]
        summary = self.modules[owner]
        head = remainder.split(".")[0]
        if f"{owner}.{head}" in summary.functions:
            return qualname
        if head in summary.bindings:
            followed = self._resolve_uncached(owner, remainder, seen)
            if followed is not None:
                return followed
        return qualname

    # -- call graph --------------------------------------------------------

    def resolve_call(self, summary: ModuleSummary, call: CallSite) -> Optional[str]:
        """Resolve one call site to a qualified callee name."""
        expr = call.callee_expr
        head, _, rest = expr.partition(".")
        if call.caller != MODULE_SCOPE:
            # Lexical scoping: a bare call inside a function may name a
            # sibling or enclosing-scope definition before module scope.
            caller_parts = call.caller.split(".")
            for end in range(len(caller_parts), 0, -1):
                candidate = ".".join(caller_parts[:end] + [expr])
                if candidate in summary.functions:
                    return candidate
        if head in ("self", "cls") and rest and call.caller != MODULE_SCOPE:
            # `self.helper()` inside module.Class.method -> module.Class.helper
            caller_parts = call.caller.split(".")
            if len(caller_parts) >= 2:
                class_qualname = ".".join(caller_parts[:-1])
                candidate = f"{class_qualname}.{rest}"
                if candidate in summary.functions:
                    return candidate
            return None
        return self.resolve(summary.module, expr)

    def call_graph(self) -> Dict[str, Set[str]]:
        """Resolved edges: caller qualname -> set of callee qualnames.

        Callees include intra-project functions and external dotted
        names (e.g. ``time.time``); unresolvable calls are dropped.
        Module-level call sites appear under ``<module name>`` itself
        so taint can flow through import-time execution too.
        """
        if self._call_graph is not None:
            return self._call_graph
        graph: Dict[str, Set[str]] = {}
        for module in sorted(self.modules):
            summary = self.modules[module]
            for call in summary.calls:
                callee = self.resolve_call(summary, call)
                if callee is None:
                    continue
                caller = (
                    module if call.caller == MODULE_SCOPE else call.caller
                )
                graph.setdefault(caller, set()).add(callee)
        self._call_graph = graph
        return graph

    def reverse_call_graph(self) -> Dict[str, Set[str]]:
        """Resolved edges: callee qualname -> set of caller qualnames."""
        if self._reverse_calls is not None:
            return self._reverse_calls
        reverse: Dict[str, Set[str]] = {}
        for caller, callees in self.call_graph().items():
            for callee in callees:
                reverse.setdefault(callee, set()).add(caller)
        self._reverse_calls = reverse
        return reverse

    def tainted_from(
        self, sinks: Iterable[str]
    ) -> Dict[str, List[str]]:
        """Functions transitively reaching any sink, with witness chains.

        Returns ``{qualname: [qualname, ..., sink]}`` — for every
        function that can reach a sink through the call graph, one
        deterministic (lexicographically first) witness path.
        """
        reverse = self.reverse_call_graph()
        chains: Dict[str, List[str]] = {}
        frontier: List[str] = []
        for sink in sorted(set(sinks)):
            if sink in reverse:
                chains[sink] = [sink]
                frontier.append(sink)
        while frontier:
            frontier.sort()
            next_frontier: List[str] = []
            for node in frontier:
                for caller in sorted(reverse.get(node, ())):
                    if caller in chains:
                        continue
                    chains[caller] = [caller] + chains[node]
                    next_frontier.append(caller)
            frontier = next_frontier
        return chains

    def reachable_from(
        self, roots: Iterable[str]
    ) -> Dict[str, List[str]]:
        """Functions reachable from any root, with witness chains.

        The forward complement of :meth:`tainted_from`: returns
        ``{qualname: [root, ..., qualname]}`` for every function an
        entry point can reach through the call graph, including the
        roots themselves.  Chains are deterministic (breadth-first,
        lexicographically first witness).
        """
        graph = self.call_graph()
        chains: Dict[str, List[str]] = {}
        frontier: List[str] = []
        for root in sorted(set(roots)):
            if root not in chains:
                chains[root] = [root]
                frontier.append(root)
        while frontier:
            frontier.sort()
            next_frontier: List[str] = []
            for node in frontier:
                for callee in sorted(graph.get(node, ())):
                    if callee in chains:
                        continue
                    chains[callee] = chains[node] + [callee]
                    next_frontier.append(callee)
            frontier = next_frontier
        return chains

    # -- exception hierarchy -----------------------------------------------

    def exception_ancestors(self, qualname: str) -> Set[str]:
        """Resolved base classes of an exception type, transitively.

        Walks the recorded class-definition facts, resolving each base
        expression in its defining module.  Bases defined outside the
        project (builtins such as ``Exception``) terminate a chain;
        ``BaseException`` is implied whenever ``Exception`` or another
        standard root is reached.
        """
        out: Set[str] = set()
        stack = [qualname]
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current != qualname:
                out.add(current)
            owner = self.module_of(current)
            if owner is None:
                if current.split(".")[-1] != "BaseException":
                    out.add("BaseException")
                continue
            for base in self.modules[owner].classes.get(current, []):
                resolved = self.resolve(owner, base) or base
                stack.append(resolved)
        return out

    # -- import graph and incremental cone ---------------------------------

    def import_graph(self) -> Dict[str, Set[str]]:
        """Module-level edges: importer -> imported project modules.

        ``TYPE_CHECKING``-guarded imports are included (a type-only
        edge still propagates dirtiness safely; over-invalidation is
        harmless, under-invalidation is not).
        """
        if self._import_graph is not None:
            return self._import_graph
        graph: Dict[str, Set[str]] = {}
        for module in sorted(self.modules):
            targets: Set[str] = set()
            summary = self.modules[module]
            for edge in summary.imports:
                owner = self.module_of(edge.target) if edge.target else None
                if owner is not None and owner != module:
                    targets.add(owner)
            for star_target in summary.star_imports:
                if star_target in self.modules:
                    targets.add(star_target)
            graph[module] = targets
        self._import_graph = graph
        return graph

    def dependency_cone(self, dirty: Iterable[str]) -> Set[str]:
        """Modules whose whole-program findings may change when ``dirty``
        modules changed: the dirty set plus every transitive importer.

        A module's flow-sensitive findings depend on its own summary
        and on the summaries of everything it (transitively) imports,
        so editing D invalidates exactly D and the modules that can
        reach D through imports.

        A dirty name absent from the model is a deleted (or renamed)
        module.  The import graph no longer carries edges to it — its
        importers' edges now resolve elsewhere or nowhere — so the
        cone is seeded from the raw import statements and bindings
        that still mention the vanished name.
        """
        graph = self.import_graph()
        reverse: Dict[str, Set[str]] = {}
        for importer, targets in graph.items():
            for target in targets:
                reverse.setdefault(target, set()).add(importer)
        dirty = set(dirty)
        cone: Set[str] = set()
        frontier = [m for m in dirty if m in self.modules]
        for missing in sorted(dirty - set(self.modules)):
            frontier.extend(sorted(self._importers_of_missing(missing)))
        while frontier:
            node = frontier.pop()
            if node in cone:
                continue
            cone.add(node)
            frontier.extend(sorted(reverse.get(node, ())))
        return cone

    def _importers_of_missing(self, missing: str) -> Set[str]:
        """Modules whose raw imports still reference a vanished module.

        Matches import targets, star imports, and import-binding
        values against ``missing`` and ``missing.*`` — ``from pkg
        import mod`` records target ``pkg`` but binds ``mod`` to
        ``pkg.mod``, so bindings must be checked too.
        """
        prefix = missing + "."

        def _hits(name: str) -> bool:
            return name == missing or name.startswith(prefix)

        importers: Set[str] = set()
        for module, summary in self.modules.items():
            if (
                any(_hits(edge.target) for edge in summary.imports)
                or any(_hits(t) for t in summary.star_imports)
                or any(_hits(v) for v in summary.bindings.values())
            ):
                importers.add(module)
        return importers

    # -- reference index ---------------------------------------------------

    def reference_index(self) -> Dict[str, Set[str]]:
        """Identifier -> set of modules whose source mentions it."""
        index: Dict[str, Set[str]] = {}
        for module in sorted(self.modules):
            for name in self.modules[module].refs:
                index.setdefault(name, set()).add(module)
        return index

    def is_suppressed(self, module: str, line: int, rule_id: str) -> bool:
        """Whether a ``# repro: noqa`` comment covers a program finding."""
        summary = self.modules.get(module)
        if summary is None:
            return False
        ids = summary.noqa.get(line)
        if ids is None:
            return False
        return "*" in ids or rule_id in ids


def model_from_sources(sources: Dict[str, str]) -> ProjectModel:
    """Build a model straight from ``{relpath: source}`` (test helper)."""
    from repro.analysis.engine import module_name_for, parse_noqa
    from pathlib import Path

    summaries = []
    for relpath in sorted(sources):
        source = sources[relpath]
        tree = ast.parse(source)
        noqa_map, _ = parse_noqa(source)
        summaries.append(
            summarize_module(
                tree,
                module_name_for(Path(relpath)),
                relpath,
                noqa={line: ids for line, ids in noqa_map.items()},
            )
        )
    return ProjectModel(summaries)
