"""Driver shared by ``repro-nxd lint`` and ``python -m repro.analysis``.

Exit codes: 0 — clean (only warnings and/or baselined findings);
1 — at least one new error-severity finding; 2 — bad invocation or
configuration.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis import cache as cache_mod
from repro.analysis import report as report_mod
from repro.analysis import rules as rules_mod
from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.engine import Analyzer
from repro.analysis.findings import Finding, Severity
from repro.errors import ReproError


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint flags on a parser (reused by the repro-nxd CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: configured paths)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root holding pyproject.toml and the baseline",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (e.g. REP001,REP002)",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file (default from [tool.repro.analysis])",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline; report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print a rule's invariant, rationale, and examples, then exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan the per-file pass out over N worker processes",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the incremental results cache",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print per-rule counts and per-pass wall time after the run",
    )


def build_parser() -> argparse.ArgumentParser:
    """Standalone parser for ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based determinism & layering linter for repro",
    )
    add_lint_arguments(parser)
    return parser


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    try:
        return _run_lint(args)
    except ReproError as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return 2


def _run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_cls in rules_mod.iter_rules():
            print(
                f"{rule_cls.rule_id}  {rule_cls.severity.value:7s}  "
                f"{rule_cls.description}"
            )
        return 0
    if args.explain:
        print(rules_mod.explain(args.explain.strip().upper()))
        return 0
    if args.jobs < 1:
        print(
            "repro.analysis: error: --jobs must be at least 1",
            file=sys.stderr,
        )
        return 2

    root = Path(args.root)
    config = load_config(root)
    if args.select:
        config.select = _parse_rule_ids(args.select)
    if args.disable:
        config.disable |= _parse_rule_ids(args.disable)
    if args.baseline:
        config.baseline_path = args.baseline

    rule_ids = config.enabled_rule_ids(rules_mod.all_rule_ids())
    analyzer = Analyzer(config, rules_mod.instantiate(rule_ids))
    paths = [
        Path(p) if Path(p).is_absolute() else root / p
        for p in (args.paths or config.paths)
    ]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(
            f"repro.analysis: error: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    # The cache models the *configured* scan scope; an explicit-path
    # run would prune it down to the named files and poison the next
    # full run, so caching only applies to default-scope invocations.
    cache: Optional[cache_mod.AnalysisCache] = None
    cache_file = root / config.cache_path
    if not args.no_cache and not args.paths:
        signature = cache_mod.ruleset_signature(config, rule_ids)
        cache = cache_mod.load_cache(cache_file, signature)
    findings = analyzer.run(
        root,
        paths,
        honor_excludes=not args.paths,
        jobs=args.jobs,
        cache=cache,
    )
    if cache is not None:
        cache_mod.save_cache(cache_file, cache)

    baseline_file = root / config.baseline_path
    if args.update_baseline:
        pruned = baseline_mod.update_baseline(
            baseline_file, findings, rule_ids
        )
        print(
            f"baseline updated: {len(findings)} finding(s) -> {baseline_file}"
            f" ({pruned} stale entr{'y' if pruned == 1 else 'ies'} for"
            f" retired rules pruned)"
        )
        return 0

    reported: List[Finding]
    if args.no_baseline:
        reported = list(findings)
    else:
        new, known = baseline_mod.apply_baseline(
            findings, baseline_mod.load_baseline(baseline_file)
        )
        reported = new + known

    stats = analyzer.last_stats
    if args.format == "json":
        print(
            report_mod.render_json(
                reported,
                rules=rule_ids,
                statistics=stats.to_json() if args.statistics else None,
            )
        )
    elif args.format == "sarif":
        from repro.analysis.sarif import render_sarif

        print(render_sarif(reported, rules=rule_ids))
    else:
        print(report_mod.render_text(reported))
        if args.statistics:
            print(stats.render())
    failing = [
        f
        for f in reported
        if not f.baselined and f.severity is Severity.ERROR
    ]
    return 1 if failing else 0


def _parse_rule_ids(text: str) -> set:
    """Parse a comma-separated rule-id list, rejecting unknown ids.

    A typo'd ``--select REP01`` must be a usage error, not a lint run
    that silently checks nothing.
    """
    from repro.errors import ConfigError

    ids = {rule.strip().upper() for rule in text.split(",") if rule.strip()}
    unknown = ids - set(rules_mod.all_rule_ids())
    if unknown:
        raise ConfigError(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(see --list-rules)"
        )
    return ids


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    return run_lint(build_parser().parse_args(argv))
