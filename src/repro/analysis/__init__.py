"""``repro.analysis`` — an AST-based determinism & layering linter.

The reproduction's headline guarantee — the same seed reproduces every
table bit-for-bit — rests on invariants the interpreter never checks:
all randomness must flow through the seeded :mod:`repro.rand` streams,
all time through :mod:`repro.clock`, and the import DAG must keep
substrates independent of the study layer.  This package enforces
those invariants statically, with zero third-party dependencies, using
only :mod:`ast` and :mod:`tokenize`.

The engine runs four passes.  The per-file pass walks each module's
AST once, dispatching nodes to the REP001–REP008 rules.  The
whole-program pass assembles every module's extracted facts into a
:class:`~repro.analysis.project.ProjectModel` — resolved names, call
graph, import graph — and hands it to the flow-sensitive REP101–REP104
rules, which catch wall-clock reads and unseeded RNGs laundered
through helpers, dynamic-import layering evasions, and dead exports.
The effect pass runs the REP201–REP204 rules over per-function effect
summaries (filesystem writes, caught exception types, shared-state
mutations, thread/pool spawns) collected in the same single AST walk,
enforcing atomic-write discipline, crash-signal propagation, worker
isolation, and cache-generation hygiene.  The concurrency pass runs
the REP301–REP305 rules over the lock and resource facts from that
same walk (locks held at each call and mutation, lock definitions,
resource acquisitions, lazy initializations), catching inconsistent
lock discipline on spawn-reachable shared state, lock-ordering cycles,
leaked resource handles, blocking calls made under a lock, and
unsynchronized lazy init.  Per-file results (including effect and
concurrency facts) are cached by content hash (warm runs re-analyze
only changed files plus their dependency cone) and the per-file pass
can fan out over worker processes.

Pieces:

- :mod:`repro.analysis.rules` — the :class:`~repro.analysis.rules.Rule`
  plugin API, registry, and ``--explain`` rendering;
- :mod:`repro.analysis.builtin` — the eight per-file REP001–REP008
  rules;
- :mod:`repro.analysis.project` — module summaries, name resolution,
  the call/import graphs, and taint propagation;
- :mod:`repro.analysis.program_rules` — the whole-program
  REP101–REP104 rules;
- :mod:`repro.analysis.effect_rules` — the effect-flow REP201–REP204
  rules (durability, crash-exception, shared-state, cache-generation);
- :mod:`repro.analysis.concurrency_rules` — the concurrency-safety
  REP301–REP305 rules (lock discipline, lock ordering, resource
  lifecycle, blocking-under-lock, lazy-init races);
- :mod:`repro.analysis.engine` — the two-pass engine, the process-pool
  fan-out, and ``# repro: noqa[RULE]`` suppression handling;
- :mod:`repro.analysis.cache` — the content-hash incremental results
  cache;
- :mod:`repro.analysis.baseline` — accepted-debt bookkeeping;
- :mod:`repro.analysis.report` — text and versioned-JSON output;
- :mod:`repro.analysis.sarif` — SARIF 2.1.0 export for code-scanning
  CI upload;
- :mod:`repro.analysis.main` — the driver behind ``repro-nxd lint``
  and ``python -m repro.analysis``.

Programmatic use::

    from repro.analysis import Analyzer, AnalysisConfig, default_rules

    analyzer = Analyzer(AnalysisConfig(), default_rules())
    findings = analyzer.check_source(code, "snippet.py")
"""

from repro.analysis.cache import AnalysisCache, load_cache, save_cache
from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.engine import Analyzer, ModuleContext
from repro.analysis.findings import ANALYZER_VERSION, META_RULE_ID, Finding, Severity
from repro.analysis.main import main, run_lint
from repro.analysis.project import ModuleSummary, ProjectModel
from repro.analysis.rules import (
    ProjectRule,
    Rule,
    all_rule_ids,
    explain,
    instantiate,
    register,
)

__all__ = [  # repro: noqa[REP104] rule-author API: ctx argument type of Rule.visit
    "ANALYZER_VERSION",
    "AnalysisCache",
    "AnalysisConfig",
    "Analyzer",
    "Finding",
    "META_RULE_ID",
    "ModuleContext",
    "ModuleSummary",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "Severity",
    "all_rule_ids",
    "default_rules",
    "explain",
    "instantiate",
    "load_cache",
    "load_config",
    "main",
    "register",
    "run_lint",
    "save_cache",
]


def default_rules():
    """Fresh instances of every registered rule, in id order."""
    return instantiate(all_rule_ids())
