"""``repro.analysis`` — an AST-based determinism & layering linter.

The reproduction's headline guarantee — the same seed reproduces every
table bit-for-bit — rests on invariants the interpreter never checks:
all randomness must flow through the seeded :mod:`repro.rand` streams,
all time through :mod:`repro.clock`, and the import DAG must keep
substrates independent of the study layer.  This package enforces
those invariants statically, with zero third-party dependencies, using
only :mod:`ast` and :mod:`tokenize`.

Pieces:

- :mod:`repro.analysis.rules` — the :class:`~repro.analysis.rules.Rule`
  plugin API and registry;
- :mod:`repro.analysis.builtin` — the eight REP001–REP008 rules;
- :mod:`repro.analysis.engine` — the single-pass visitor engine and
  ``# repro: noqa[RULE]`` suppression handling;
- :mod:`repro.analysis.baseline` — accepted-debt bookkeeping;
- :mod:`repro.analysis.report` — text and versioned-JSON output;
- :mod:`repro.analysis.main` — the driver behind ``repro-nxd lint``
  and ``python -m repro.analysis``.

Programmatic use::

    from repro.analysis import Analyzer, AnalysisConfig, default_rules

    analyzer = Analyzer(AnalysisConfig(), default_rules())
    findings = analyzer.check_source(code, "snippet.py")
"""

from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.engine import Analyzer, ModuleContext
from repro.analysis.findings import META_RULE_ID, Finding, Severity
from repro.analysis.main import main, run_lint
from repro.analysis.rules import Rule, all_rule_ids, instantiate, register

__all__ = [
    "AnalysisConfig",
    "Analyzer",
    "Finding",
    "META_RULE_ID",
    "ModuleContext",
    "Rule",
    "Severity",
    "all_rule_ids",
    "default_rules",
    "instantiate",
    "load_config",
    "main",
    "register",
    "run_lint",
]


def default_rules():
    """Fresh instances of every registered rule, in id order."""
    return instantiate(all_rule_ids())
