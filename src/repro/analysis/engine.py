"""The single-pass analysis engine.

For every Python file under the configured paths the engine parses the
source once, walks the tree once, and dispatches each node to the rules
that registered interest in its type.  Suppressions are ordinary
comments::

    value = fetch()  # repro: noqa[REP007] insertion order is the axis order

``# repro: noqa`` with no bracket suppresses every rule on that line.
An unknown rule id inside the brackets is itself reported as
``REP000`` so typos cannot silently disable a check.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import META_RULE_ID, Finding, Severity
from repro.analysis.rules import Rule

#: Sentinel stored in the noqa map when a bare ``# repro: noqa``
#: suppresses every rule on the line.
ALL_RULES = "*"

_NOQA_RE = re.compile(r"repro:\s*noqa(?:\[(?P<ids>[^\]]*)\])?", re.IGNORECASE)


@dataclass
class ModuleContext:
    """Everything a rule may need to know about the module under analysis."""

    path: Path
    relpath: str
    module: str
    tree: ast.Module
    source: str
    config: AnalysisConfig
    noqa: Dict[int, Set[str]] = field(default_factory=dict)
    _parents: Dict[int, ast.AST] = field(default_factory=dict)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Parents of ``node`` from innermost to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def severity_for(self, rule: Rule) -> Severity:
        """Configured severity for a rule (default: the rule's own)."""
        override = self.config.severity_overrides.get(rule.rule_id)
        return override if override is not None else rule.severity

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether an inline ``noqa`` comment covers this finding."""
        ids = self.noqa.get(finding.line)
        if ids is None:
            return False
        return ALL_RULES in ids or finding.rule_id in ids


def module_name_for(path: Path, root_hint: str = "repro") -> str:
    """Dotted module name for a file path, rooted at ``root_hint``.

    Files outside any ``repro`` package (fixtures, examples) get a
    name derived from their stem so rules keyed on module names treat
    them as external code.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if root_hint in parts:
        index = len(parts) - 1 - parts[::-1].index(root_hint)
        return ".".join(parts[index:]) or root_hint
    return parts[-1] if parts else ""


def parse_noqa(source: str) -> Tuple[Dict[int, Set[str]], List[Tuple[int, str]]]:
    """Extract suppression comments from source text.

    Returns ``(noqa_map, unknown)`` where ``noqa_map`` maps line
    numbers to suppressed rule-id sets (or :data:`ALL_RULES`) and
    ``unknown`` lists ``(line, rule_id)`` pairs for ids that match no
    registered rule.  Comment detection uses :mod:`tokenize`, so
    ``repro: noqa`` inside a string literal is never a suppression.
    """
    from repro.analysis.rules import all_rule_ids

    known = set(all_rule_ids())
    noqa_map: Dict[int, Set[str]] = {}
    unknown: List[Tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        comments = []
    for line, text in comments:
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        ids_text = match.group("ids")
        if ids_text is None:
            noqa_map.setdefault(line, set()).add(ALL_RULES)
            continue
        for raw in ids_text.split(","):
            rule_id = raw.strip().upper()
            if not rule_id:
                continue
            if rule_id not in known:
                unknown.append((line, rule_id))
            noqa_map.setdefault(line, set()).add(rule_id)
    return noqa_map, unknown


def _build_parents(tree: ast.Module) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
            stack.append(child)
    return parents


class Analyzer:
    """Walks a file set once and dispatches nodes to rules."""

    def __init__(self, config: AnalysisConfig, rules: Sequence[Rule]) -> None:
        self.config = config
        self.rules = list(rules)
        self._dispatch: Dict[type, List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    def run(
        self,
        root: Path,
        paths: Sequence[Path],
        honor_excludes: bool = True,
    ) -> List[Finding]:
        """Analyze every file and return findings sorted by location.

        ``honor_excludes=False`` disables the configured exclude
        patterns — used when the caller named the paths explicitly, so
        an ``examples/*`` exclude cannot silently turn an explicit
        ``lint examples`` into a no-op.
        """
        findings: List[Finding] = []
        for path in self._iter_files(root, paths, honor_excludes):
            findings.extend(self.check_file(root, path))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def check_file(self, root: Path, path: Path) -> List[Finding]:
        """Analyze one file."""
        relpath = self._relpath(root, path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [self._meta(relpath, 1, f"unreadable file: {exc}")]
        return self.check_source(source, relpath)

    def check_source(self, source: str, relpath: str) -> List[Finding]:
        """Analyze source text as though read from ``relpath``."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [self._meta(relpath, exc.lineno or 1, f"syntax error: {exc.msg}")]
        noqa_map, unknown = parse_noqa(source)
        ctx = ModuleContext(
            path=Path(relpath),
            relpath=relpath,
            module=module_name_for(Path(relpath)),
            tree=tree,
            source=source,
            config=self.config,
            noqa=noqa_map,
        )
        ctx._parents = _build_parents(tree)
        active = [rule for rule in self.rules if rule.applies_to(ctx)]
        active_ids = {rule.rule_id for rule in active}
        findings: List[Finding] = []
        for line, rule_id in unknown:
            findings.append(
                self._meta(
                    relpath,
                    line,
                    f"unknown rule id {rule_id!r} in suppression comment",
                )
            )
        for node in ast.walk(tree):
            for rule in self._dispatch.get(type(node), ()):
                if rule.rule_id not in active_ids:
                    continue
                for finding in rule.visit(node, ctx):
                    if not ctx.is_suppressed(finding):
                        findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def _iter_files(
        self, root: Path, paths: Sequence[Path], honor_excludes: bool
    ) -> Iterable[Path]:
        seen: Set[Path] = set()
        for path in paths:
            candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for candidate in candidates:
                resolved = candidate.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                if honor_excludes and self.config.is_excluded(
                    self._relpath(root, candidate)
                ):
                    continue
                yield candidate

    @staticmethod
    def _relpath(root: Path, path: Path) -> str:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    @staticmethod
    def _meta(relpath: str, line: int, message: str) -> Finding:
        return Finding(
            rule_id=META_RULE_ID,
            severity=Severity.ERROR,
            path=relpath,
            line=line,
            col=1,
            message=message,
        )
