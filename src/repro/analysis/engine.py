"""The two-pass analysis engine.

Pass one (per file): for every Python file under the configured paths
the engine parses the source once, walks the tree once, and dispatches
each node to the rules that registered interest in its type, while
simultaneously extracting the module's whole-program facts (a
:class:`~repro.analysis.project.ModuleSummary`).  Pass two (whole
program): the summaries are assembled into a
:class:`~repro.analysis.project.ProjectModel` and handed to the
flow-sensitive REP10x rules.

The per-file pass is embarrassingly parallel (``jobs > 1`` fans it out
over a process pool) and cacheable (an :class:`AnalysisCache` keyed by
content hash skips unchanged files; the whole-program pass is then
recomputed only for the dirty modules' dependency cone).

Suppressions are ordinary comments::

    value = fetch()  # repro: noqa[REP007] insertion order is the axis order

``# repro: noqa`` with no bracket suppresses every rule on that line.
An unknown rule id inside the brackets is itself reported as
``REP000`` so typos cannot silently disable a check.
"""

from __future__ import annotations

import ast
import concurrent.futures
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis import cache as cache_mod
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import META_RULE_ID, Finding, Severity
from repro.analysis.project import ModuleSummary, ProjectModel, summarize_module
from repro.analysis.rules import Rule

#: Sentinel stored in the noqa map when a bare ``# repro: noqa``
#: suppresses every rule on the line.
ALL_RULES = "*"

#: Optional whitespace before the bracket is accepted (``noqa [REP301]``)
#: — without it the bracket is unparsed and a targeted suppression
#: silently degrades to suppress-everything.  Text *after* the closing
#: bracket (a trailing prose comment) never affects the id list.
_NOQA_RE = re.compile(
    r"repro:\s*noqa(?:\s*\[(?P<ids>[^\]]*)\])?", re.IGNORECASE
)


@dataclass
class ModuleContext:
    """Everything a rule may need to know about the module under analysis."""

    path: Path
    relpath: str
    module: str
    tree: ast.Module
    source: str
    config: AnalysisConfig
    noqa: Dict[int, Set[str]] = field(default_factory=dict)
    _parents: Dict[int, ast.AST] = field(default_factory=dict)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Parents of ``node`` from innermost to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def severity_for(self, rule: Rule) -> Severity:
        """Configured severity for a rule (default: the rule's own)."""
        override = self.config.severity_overrides.get(rule.rule_id)
        return override if override is not None else rule.severity

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether an inline ``noqa`` comment covers this finding."""
        ids = self.noqa.get(finding.line)
        if ids is None:
            return False
        return ALL_RULES in ids or finding.rule_id in ids


def module_name_for(path: Path, root_hint: str = "repro") -> str:
    """Dotted module name for a file path, rooted at ``root_hint``.

    Files outside any ``repro`` package (fixtures, examples) get a
    name derived from their stem so rules keyed on module names treat
    them as external code.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if root_hint in parts:
        index = len(parts) - 1 - parts[::-1].index(root_hint)
        return ".".join(parts[index:]) or root_hint
    return parts[-1] if parts else ""


def parse_noqa(source: str) -> Tuple[Dict[int, Set[str]], List[Tuple[int, str]]]:
    """Extract suppression comments from source text.

    Returns ``(noqa_map, unknown)`` where ``noqa_map`` maps line
    numbers to suppressed rule-id sets (or :data:`ALL_RULES`) and
    ``unknown`` lists ``(line, rule_id)`` pairs for ids that match no
    registered rule.  Comment detection uses :mod:`tokenize`, so
    ``repro: noqa`` inside a string literal is never a suppression.
    """
    from repro.analysis.rules import all_rule_ids

    known = set(all_rule_ids())
    noqa_map: Dict[int, Set[str]] = {}
    unknown: List[Tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        comments = []
    for line, text in comments:
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        ids_text = match.group("ids")
        if ids_text is None:
            noqa_map.setdefault(line, set()).add(ALL_RULES)
            continue
        for raw in ids_text.split(","):
            rule_id = raw.strip().upper()
            if not rule_id:
                continue
            if rule_id not in known:
                unknown.append((line, rule_id))
            noqa_map.setdefault(line, set()).add(rule_id)
    return noqa_map, unknown


def _build_parents(tree: ast.Module) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
            stack.append(child)
    return parents


def reference_module_name(relpath: str) -> str:
    """Unique dotted name for a reference-scope file.

    Reference trees (tests, benchmarks, examples) contain many files
    with colliding stems (``conftest.py``, ``__init__.py``), so their
    module names derive from the full repo-relative path — two
    distinct files can never shadow each other's facts in the model.
    """
    parts = list(Path(relpath).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


@dataclass
class RunStats:
    """Profile of one :meth:`Analyzer.run` for ``--statistics``.

    Wall times come from ``time.perf_counter`` (a monotonic interval
    clock, not wall-clock state) and describe only where lint time
    went; they are never part of the finding set or the cache key.
    """

    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Seconds per engine pass: ``"per-file"`` and ``"whole-program"``.
    pass_seconds: Dict[str, float] = field(default_factory=dict)
    #: Seconds per project rule actually recomputed this run (empty on
    #: a fully-cached replay).
    rule_seconds: Dict[str, float] = field(default_factory=dict)
    #: Findings per rule id, before baseline filtering.
    rule_counts: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        """Serializable form for the JSON report header."""
        return {
            "files": self.files,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "pass_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.pass_seconds.items())
            },
            "rule_seconds": {
                rule: round(seconds, 6)
                for rule, seconds in sorted(self.rule_seconds.items())
            },
            "rule_counts": dict(sorted(self.rule_counts.items())),
        }

    def render(self) -> str:
        """Human-oriented multi-line profile for the text output."""
        lines = [
            "-- statistics --",
            f"files analyzed: {self.files} "
            f"(cache hits {self.cache_hits}, misses {self.cache_misses})",
        ]
        for name, seconds in sorted(self.pass_seconds.items()):
            lines.append(f"pass {name}: {seconds * 1000.0:.1f} ms")
        for rule, seconds in sorted(self.rule_seconds.items()):
            lines.append(f"rule {rule}: {seconds * 1000.0:.1f} ms")
        counted = {r: c for r, c in sorted(self.rule_counts.items()) if c}
        if counted:
            lines.append(
                "findings by rule: "
                + ", ".join(f"{r}={c}" for r, c in counted.items())
            )
        else:
            lines.append("findings by rule: none")
        return "\n".join(lines)


@dataclass
class _FileResult:
    """Per-file outcome: lint findings plus whole-program facts."""

    findings: List[Finding] = field(default_factory=list)
    summary: Optional[Dict[str, object]] = None
    #: Whether per-file rules ran — the program pass scopes its
    #: findings to linted modules (reference scans contribute facts
    #: but never receive findings).
    lint: bool = True


#: Per-process analyzer reused across items of a parallel run.
_WORKER_ANALYZER: Dict[str, object] = {}


def _analyze_in_worker(item: Tuple) -> Tuple:
    """Process-pool entry point for one file of the per-file pass."""
    relpath, source, lint, config, rule_ids, want_summary = item
    from repro.analysis.rules import instantiate

    key = tuple(rule_ids)
    analyzer = _WORKER_ANALYZER.get("analyzer")
    if analyzer is None or _WORKER_ANALYZER.get("key") != key:
        analyzer = Analyzer(config, instantiate(rule_ids))
        # Per-process memo: ProcessPoolExecutor gives each worker its
        # own module copy, so this never races or leaks across workers.
        _WORKER_ANALYZER["analyzer"] = analyzer  # repro: noqa[REP203]
        _WORKER_ANALYZER["key"] = key  # repro: noqa[REP203]
    findings, summary = analyzer.check_source_and_summary(
        source, relpath, lint=lint, want_summary=want_summary
    )
    return relpath, [f.to_json() for f in findings], summary


class Analyzer:
    """Runs the per-file pass and the whole-program pass over a tree."""

    def __init__(self, config: AnalysisConfig, rules: Sequence[Rule]) -> None:
        self.config = config
        self.rules = list(rules)
        self.file_rules = [
            rule for rule in self.rules if not rule.is_project_rule
        ]
        self.project_rules = [
            rule for rule in self.rules if rule.is_project_rule
        ]
        self._dispatch: Dict[type, List[Rule]] = {}
        for rule in self.file_rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)
        #: Profile of the most recent :meth:`run` (``--statistics``).
        self.last_stats = RunStats()

    def run(
        self,
        root: Path,
        paths: Sequence[Path],
        honor_excludes: bool = True,
        jobs: int = 1,
        cache: Optional[cache_mod.AnalysisCache] = None,
    ) -> List[Finding]:
        """Analyze every file and return findings sorted by location.

        ``honor_excludes=False`` disables the configured exclude
        patterns — used when the caller named the paths explicitly, so
        an ``examples/*`` exclude cannot silently turn an explicit
        ``lint examples`` into a no-op.  ``jobs > 1`` fans the
        per-file pass out over a process pool; ``cache`` (an
        :class:`~repro.analysis.cache.AnalysisCache`) skips files
        whose content hash is unchanged and limits the whole-program
        recomputation to the dirty modules' dependency cone.
        """
        self.last_stats = stats = RunStats()
        per_file_started = time.perf_counter()
        lint_files = list(self._iter_files(root, paths, honor_excludes))
        reference_files = self._iter_reference_files(root, lint_files)
        want_summary = bool(self.project_rules)

        results: Dict[str, _FileResult] = {}
        dirty_modules: Set[str] = set()
        pending: List[Tuple[str, str, bool, str]] = []
        for path, lint in [(p, True) for p in lint_files] + [
            (p, False) for p in reference_files
        ]:
            relpath = self._relpath(root, path)
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                if lint:
                    results[relpath] = _FileResult(
                        [self._meta(relpath, 1, f"unreadable file: {exc}")]
                    )
                continue
            digest = cache_mod.content_hash(source)
            entry = cache.lookup(relpath, digest, lint=lint) if cache else None
            if entry is not None:
                results[relpath] = _FileResult(
                    list(entry.findings) if lint else [], entry.summary, lint
                )
            else:
                pending.append((relpath, source, lint, digest))

        for relpath, findings, summary, digest, lint in self._analyze_pending(
            pending, jobs, want_summary
        ):
            results[relpath] = _FileResult(
                findings if lint else [], summary, lint
            )
            if cache is not None:
                cache.store(relpath, digest, findings, summary, lint=lint)
            if summary is not None:
                dirty_modules.add(str(summary["module"]))
            else:
                # Unparseable files poison incremental reuse safely:
                # treat them as dirtying everything they might define.
                dirty_modules.add(module_name_for(Path(relpath)))

        if cache is not None:
            # A cached file absent from this scan was deleted or
            # renamed.  Its module must be marked dirty even though no
            # file was (re)analyzed, or the program pass replays stale
            # findings for its unchanged importers and skips global
            # rules (e.g. REP104 after deleting the only referencer).
            for relpath in set(cache.files) - set(results):
                entry = cache.files[relpath]
                module = (entry.summary or {}).get("module")
                dirty_modules.add(
                    str(module) if module else module_name_for(Path(relpath))
                )

        stats.pass_seconds["per-file"] = (
            time.perf_counter() - per_file_started
        )
        findings: List[Finding] = []
        for result in results.values():
            findings.extend(result.findings)
        if self.project_rules:
            program_started = time.perf_counter()
            findings.extend(
                self._program_pass(results, dirty_modules, cache)
            )
            stats.pass_seconds["whole-program"] = (
                time.perf_counter() - program_started
            )
        if cache is not None:
            cache.prune(sorted(results))
            stats.cache_hits = cache.hits
            stats.cache_misses = cache.misses
        stats.files = len(results)
        for finding in findings:
            stats.rule_counts[finding.rule_id] = (
                stats.rule_counts.get(finding.rule_id, 0) + 1
            )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def _iter_reference_files(
        self, root: Path, lint_files: Sequence[Path]
    ) -> List[Path]:
        """Files scanned for references only (no per-file findings)."""
        if not self.project_rules:
            return []
        seen = {path.resolve() for path in lint_files}
        out: List[Path] = []
        for ref in self.config.reference_paths:
            ref_root = root / ref
            if not ref_root.is_dir():
                continue
            for candidate in sorted(ref_root.rglob("*.py")):
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    out.append(candidate)
        return out

    def _analyze_pending(
        self,
        pending: Sequence[Tuple[str, str, bool, str]],
        jobs: int,
        want_summary: bool,
    ) -> Iterable[Tuple[str, List[Finding], Optional[Dict], str, bool]]:
        """Run the per-file pass over cache misses, serially or fanned out."""
        if jobs <= 1 or len(pending) < 2:
            for relpath, source, lint, digest in pending:
                findings, summary = self.check_source_and_summary(
                    source, relpath, lint=lint, want_summary=want_summary
                )
                yield relpath, findings, summary, digest, lint
            return
        rule_ids = sorted(rule.rule_id for rule in self.file_rules)
        items = [
            (relpath, source, lint, self.config, rule_ids, want_summary)
            for relpath, source, lint, digest in pending
        ]
        meta = {
            relpath: (digest, lint)
            for relpath, source, lint, digest in pending
        }
        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            chunk = max(1, len(items) // (jobs * 4))
            for relpath, raw_findings, summary in pool.map(
                _analyze_in_worker, items, chunksize=chunk
            ):
                digest, lint = meta[relpath]
                findings = [Finding.from_json(f) for f in raw_findings]
                yield relpath, findings, summary, digest, lint

    def _program_pass(
        self,
        results: Dict[str, _FileResult],
        dirty_modules: Set[str],
        cache: Optional[cache_mod.AnalysisCache],
    ) -> List[Finding]:
        """Run the whole-program rules over the assembled model.

        When a cache with a valid prior project pass is present, only
        the dirty modules' dependency cone is recomputed for
        cone-scoped rules; global-scope rules (reference scans) are
        recomputed whenever anything changed at all.
        """
        summaries: List[ModuleSummary] = []
        lint_modules: Set[str] = set()
        for result in results.values():
            if result.summary is None:
                continue
            summary = ModuleSummary.from_json(result.summary)
            summaries.append(summary)
            if result.lint:
                lint_modules.add(summary.module)
        model = ProjectModel(summaries)
        model.lint_modules = lint_modules
        cached_valid = cache is not None and cache.program_valid
        if not dirty_modules and cached_valid:
            by_module = {
                module: list(findings)
                for module, findings in cache.program_findings.items()
                if module in model.modules
            }
        else:
            by_module = {}
            affected = model.dependency_cone(dirty_modules)
            if cached_valid:
                global_ids = {
                    rule.rule_id
                    for rule in self.project_rules
                    if rule.global_scope
                }
                for module, findings in cache.program_findings.items():
                    if module in model.modules and module not in affected:
                        kept = [
                            f for f in findings if f.rule_id not in global_ids
                        ]
                        if kept:
                            by_module[module] = kept
            else:
                affected = set(model.modules)
            path_to_module = {
                summary.relpath: summary.module for summary in summaries
            }
            for rule in self.project_rules:
                scope = None if rule.global_scope else sorted(affected)
                rule_started = time.perf_counter()
                for finding in rule.check(model, self.config, modules=scope):
                    module = path_to_module.get(finding.path, finding.path)
                    if model.is_suppressed(module, finding.line, rule.rule_id):
                        continue
                    by_module.setdefault(module, []).append(finding)
                self.last_stats.rule_seconds[rule.rule_id] = (
                    time.perf_counter() - rule_started
                )
        if cache is not None:
            cache.program_findings = {
                module: list(findings)
                for module, findings in by_module.items()
            }
            cache.program_valid = True
        out: List[Finding] = []
        for module in sorted(by_module):
            out.extend(by_module[module])
        return out

    def check_file(self, root: Path, path: Path) -> List[Finding]:
        """Analyze one file (per-file rules only)."""
        relpath = self._relpath(root, path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [self._meta(relpath, 1, f"unreadable file: {exc}")]
        return self.check_source(source, relpath)

    def check_source(self, source: str, relpath: str) -> List[Finding]:
        """Analyze source text as though read from ``relpath``.

        Runs the per-file rules only; whole-program rules need the
        project context and run in :meth:`run` (or
        :meth:`check_project_sources`).
        """
        findings, _ = self.check_source_and_summary(
            source, relpath, lint=True, want_summary=False
        )
        return findings

    def check_source_and_summary(
        self,
        source: str,
        relpath: str,
        lint: bool = True,
        want_summary: bool = False,
    ) -> Tuple[List[Finding], Optional[Dict[str, object]]]:
        """Per-file findings plus (optionally) the module summary.

        ``lint=False`` skips rule dispatch entirely — used for
        reference-scope files that only contribute whole-program
        facts.  The summary is returned in its JSON form so it can go
        straight into the results cache.
        """
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            if not lint:
                return [], None
            return (
                [self._meta(relpath, exc.lineno or 1, f"syntax error: {exc.msg}")],
                None,
            )
        noqa_map, unknown = parse_noqa(source)
        module = (
            module_name_for(Path(relpath))
            if lint
            else reference_module_name(relpath)
        )
        summary: Optional[Dict[str, object]] = None
        if want_summary:
            summary = summarize_module(
                tree, module, relpath, noqa=noqa_map
            ).to_json()
        if not lint:
            return [], summary
        ctx = ModuleContext(
            path=Path(relpath),
            relpath=relpath,
            module=module,
            tree=tree,
            source=source,
            config=self.config,
            noqa=noqa_map,
        )
        ctx._parents = _build_parents(tree)
        active = [rule for rule in self.file_rules if rule.applies_to(ctx)]
        active_ids = {rule.rule_id for rule in active}
        findings: List[Finding] = []
        for line, rule_id in unknown:
            findings.append(
                self._meta(
                    relpath,
                    line,
                    f"unknown rule id {rule_id!r} in suppression comment",
                )
            )
        for node in ast.walk(tree):
            for rule in self._dispatch.get(type(node), ()):
                if rule.rule_id not in active_ids:
                    continue
                for finding in rule.visit(node, ctx):
                    if not ctx.is_suppressed(finding):
                        findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings, summary

    def check_project_sources(
        self, sources: Dict[str, str]
    ) -> List[Finding]:
        """Analyze an in-memory ``{relpath: source}`` project (tests).

        Runs both passes — per-file rules on every file, then the
        whole-program rules over the assembled model — without
        touching the filesystem.
        """
        results: Dict[str, _FileResult] = {}
        for relpath in sorted(sources):
            lint = not self.config.is_excluded(relpath)
            findings, summary = self.check_source_and_summary(
                sources[relpath],
                relpath,
                lint=lint,
                want_summary=True,
            )
            results[relpath] = _FileResult(findings, summary, lint)
        findings = [f for r in results.values() for f in r.findings]
        if self.project_rules:
            findings.extend(
                self._program_pass(results, set(), cache=None)
            )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def _iter_files(
        self, root: Path, paths: Sequence[Path], honor_excludes: bool
    ) -> Iterable[Path]:
        seen: Set[Path] = set()
        for path in paths:
            candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for candidate in candidates:
                resolved = candidate.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                if honor_excludes and self.config.is_excluded(
                    self._relpath(root, candidate)
                ):
                    continue
                yield candidate

    @staticmethod
    def _relpath(root: Path, path: Path) -> str:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    @staticmethod
    def _meta(relpath: str, line: int, message: str) -> Finding:
        return Finding(
            rule_id=META_RULE_ID,
            severity=Severity.ERROR,
            path=relpath,
            line=line,
            col=1,
            message=message,
        )
