"""Configuration for the analyzer.

Defaults live here; projects override them in ``pyproject.toml``::

    [tool.repro.analysis]
    paths = ["src/repro"]
    exclude = ["examples/*", "benchmarks/*"]
    disable = []
    baseline = "analysis-baseline.json"
    report-paths = ["src/repro/core/reports.py"]
    atomic-io-modules = ["repro.passivedns.spill", "repro.passivedns.io"]
    resilient-roots = ["repro.resilience", "repro.passivedns.pipeline"]
    lock-attributes = ["_lock"]
    concurrency-roots = ["repro.passivedns.database"]

    [tool.repro.analysis.severity]
    REP008 = "warning"

The loader prefers the stdlib :mod:`tomllib` (Python 3.11+) and falls
back to a minimal parser covering exactly the subset above, so the
analyzer stays zero-dependency on older interpreters.
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.findings import Severity
from repro.errors import ConfigError

DEFAULT_PATHS = ("src/repro",)
DEFAULT_EXCLUDE = ("examples/*", "benchmarks/*", "tests/*", "*.egg-info/*")
DEFAULT_BASELINE = "analysis-baseline.json"
#: Modules whose output ordering REP007 audits by default.
DEFAULT_REPORT_PATHS = ("src/repro/core/reports.py",)
#: Trees scanned (but not linted) so whole-program rules such as
#: REP104 can see references from outside ``src/repro``.
DEFAULT_REFERENCE_PATHS = ("tests", "benchmarks", "examples")
#: Per-file results cache written next to pyproject.toml.
DEFAULT_CACHE = ".repro-analysis-cache.json"
#: Modules whose raw filesystem writes are sanctioned: they implement
#: the atomic tmp+fsync+replace discipline everything else must call.
DEFAULT_ATOMIC_IO_MODULES = ("repro.passivedns.spill", "repro.passivedns.io")
#: Module prefixes whose functions are retry/pipeline entry points:
#: REP202 audits except-clauses reachable from them for swallowed
#: crash-signal exceptions.
DEFAULT_RESILIENT_ROOTS = ("repro.resilience", "repro.passivedns.pipeline")
#: Attribute names recognized as lock guards (``with self._lock:``)
#: even when the module never shows the lock's construction.
DEFAULT_LOCK_ATTRIBUTES = ("_lock",)
#: Module prefixes whose public surface will be hit concurrently (the
#: query tier's shared hot paths); the REP30x pass treats all of their
#: functions as spawn-reachable entry points.
DEFAULT_CONCURRENCY_ROOTS = ()


@dataclass
class AnalysisConfig:
    """Resolved analyzer settings."""

    paths: List[str] = field(default_factory=lambda: list(DEFAULT_PATHS))
    exclude: List[str] = field(default_factory=lambda: list(DEFAULT_EXCLUDE))
    disable: Set[str] = field(default_factory=set)
    select: Optional[Set[str]] = None
    baseline_path: str = DEFAULT_BASELINE
    report_paths: List[str] = field(
        default_factory=lambda: list(DEFAULT_REPORT_PATHS)
    )
    reference_paths: List[str] = field(
        default_factory=lambda: list(DEFAULT_REFERENCE_PATHS)
    )
    cache_path: str = DEFAULT_CACHE
    atomic_io_modules: List[str] = field(
        default_factory=lambda: list(DEFAULT_ATOMIC_IO_MODULES)
    )
    resilient_roots: List[str] = field(
        default_factory=lambda: list(DEFAULT_RESILIENT_ROOTS)
    )
    lock_attributes: List[str] = field(
        default_factory=lambda: list(DEFAULT_LOCK_ATTRIBUTES)
    )
    concurrency_roots: List[str] = field(
        default_factory=lambda: list(DEFAULT_CONCURRENCY_ROOTS)
    )
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)

    def enabled_rule_ids(self, registered: Sequence[str]) -> List[str]:
        """Rule ids to run, after applying ``select`` and ``disable``."""
        ids = [r for r in registered if self.select is None or r in self.select]
        return [r for r in ids if r not in self.disable]

    def is_excluded(self, relpath: str) -> bool:
        """Whether a repo-relative path matches an exclude pattern."""
        return any(
            fnmatch.fnmatch(relpath, pattern) for pattern in self.exclude
        )

    def is_report_code(self, relpath: str) -> bool:
        """Whether REP007's ordered-output audit applies to this file."""
        return any(
            fnmatch.fnmatch(relpath, pattern) for pattern in self.report_paths
        )


def load_config(root: Path) -> AnalysisConfig:
    """Read ``[tool.repro.analysis]`` from ``root``'s pyproject.toml.

    Missing file or missing table yields the defaults.
    """
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return AnalysisConfig()
    data = _load_toml(pyproject)
    table = data.get("tool", {}).get("repro", {}).get("analysis", {})
    if not isinstance(table, dict):
        raise ConfigError("[tool.repro.analysis] must be a table")
    config = AnalysisConfig()
    if "paths" in table:
        config.paths = _str_list(table, "paths")
    if "exclude" in table:
        config.exclude = _str_list(table, "exclude")
    if "disable" in table:
        config.disable = set(_str_list(table, "disable"))
    if "baseline" in table:
        config.baseline_path = str(table["baseline"])
    if "report-paths" in table:
        config.report_paths = _str_list(table, "report-paths")
    if "reference-paths" in table:
        config.reference_paths = _str_list(table, "reference-paths")
    if "cache" in table:
        config.cache_path = str(table["cache"])
    if "atomic-io-modules" in table:
        config.atomic_io_modules = _str_list(table, "atomic-io-modules")
    if "resilient-roots" in table:
        config.resilient_roots = _str_list(table, "resilient-roots")
    if "lock-attributes" in table:
        config.lock_attributes = _str_list(table, "lock-attributes")
    if "concurrency-roots" in table:
        config.concurrency_roots = _str_list(table, "concurrency-roots")
    severity = table.get("severity", {})
    if not isinstance(severity, dict):
        raise ConfigError("[tool.repro.analysis.severity] must be a table")
    for rule_id, name in severity.items():
        config.severity_overrides[str(rule_id).upper()] = Severity.parse(
            str(name)
        )
    return config


def _str_list(table: Dict[str, object], key: str) -> List[str]:
    value = table[key]
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ConfigError(
            f"[tool.repro.analysis] {key!r} must be a list of strings"
        )
    return list(value)


def _load_toml(path: Path) -> Dict[str, object]:
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        return _parse_minimal_toml(path.read_text(encoding="utf-8"))
    with path.open("rb") as handle:
        return tomllib.load(handle)


_SECTION_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KEY_RE = re.compile(r"^(?P<key>[A-Za-z0-9_.\"'-]+)\s*=\s*(?P<value>.+)$")


def _parse_minimal_toml(text: str) -> Dict[str, object]:
    """Parse the tiny TOML subset the analyzer's own table uses.

    Supports ``[dotted.section]`` headers, string/bool scalars, and
    single-line arrays of strings — enough for ``[tool.repro.analysis]``
    on interpreters without :mod:`tomllib`.  Unparseable values are
    skipped rather than fatal, because this fallback must never make
    an unrelated pyproject.toml unreadable.
    """
    root: Dict[str, object] = {}
    current = root
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        section = _SECTION_RE.match(line)
        if section:
            current = root
            for part in section.group("name").split("."):
                part = part.strip().strip('"').strip("'")
                current = current.setdefault(part, {})  # type: ignore[assignment]
                if not isinstance(current, dict):
                    return root
            continue
        pair = _KEY_RE.match(line)
        if not pair:
            continue
        key = pair.group("key").strip().strip('"').strip("'")
        value = _parse_minimal_value(pair.group("value").strip())
        if value is not None:
            current[key] = value
    return root


def _parse_minimal_value(text: str) -> Optional[object]:
    if text in ("true", "false"):
        return text == "true"
    if len(text) >= 2 and text[0] in "\"'" and text[-1] == text[0]:
        return text[1:-1]
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        items = []
        for piece in inner.split(","):
            piece = piece.strip()
            if not piece:
                continue
            if len(piece) >= 2 and piece[0] in "\"'" and piece[-1] == piece[0]:
                items.append(piece[1:-1])
            else:
                return None
        return items
    return None
