"""Finding and severity models for the static analyzer.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.fingerprint` deliberately excludes the line number so
that baselined findings survive unrelated edits that shift code up or
down a file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

#: Version of the analyzer proper (engine + rule semantics).  Bumped on
#: any change that can alter the finding set for unchanged source, it
#: keys both the on-disk results cache and the JSON payload header so
#: baselines can detect rule-set drift.
ANALYZER_VERSION = "4.0.0"


class Severity(enum.Enum):
    """How a finding affects the lint exit code.

    ``ERROR`` findings fail the run unless baselined; ``WARNING``
    findings are reported but never fail it.
    """

    WARNING = "warning"
    ERROR = "error"

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse a severity name case-insensitively."""
        for member in cls:
            if member.value == text.strip().lower():
                return member
        from repro.errors import ConfigError

        raise ConfigError(f"unknown severity {text!r}")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    baselined: bool = field(default=False, compare=False)

    def fingerprint(self) -> str:
        """Stable identity used for baseline matching (no line/col)."""
        return f"{self.rule_id}::{self.path}::{self.message}"

    def with_baselined(self) -> "Finding":
        """A copy of this finding marked as present in the baseline."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=self.path,
            line=self.line,
            col=self.col,
            message=self.message,
            baselined=True,
        )

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable representation (schema-stable key order)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "baselined": self.baselined,
        }

    @classmethod
    def from_json(cls, entry: Dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_json` output (cache reads)."""
        return cls(
            rule_id=str(entry["rule"]),
            severity=Severity.parse(str(entry["severity"])),
            path=str(entry["path"]),
            line=int(entry["line"]),  # type: ignore[arg-type]
            col=int(entry["col"]),  # type: ignore[arg-type]
            message=str(entry["message"]),
            baselined=bool(entry.get("baselined", False)),
        )

    def render(self) -> str:
        """One-line ``path:line:col`` text rendering."""
        suffix = " [baselined]" if self.baselined else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity.value}: {self.message}{suffix}"
        )


#: Rule id reserved for problems with the analysis run itself
#: (syntax errors in analyzed files, unknown rule ids in suppression
#: comments).  Never suppressible and never baselined away silently.
META_RULE_ID = "REP000"
