"""Text and JSON renderers for lint results.

The JSON schema is versioned and key-stable so CI consumers can parse
it without tracking analyzer internals::

    {
      "version": 4,
      "tool": "repro.analysis",
      "analyzer_version": "4.0.0",
      "rules": ["REP001", ...],
      "rule_info": [{"id", "severity", "kind", "description"}, ...],
      "findings": [{"rule", "severity", "path", "line", "col",
                    "message", "baselined"}, ...],
      "summary": {"total", "new", "baselined", "errors", "warnings"},
      "statistics": {"files", "cache_hits", "cache_misses",
                     "pass_seconds": {...}, "rule_seconds": {...},
                     "rule_counts": {...}}          # --statistics only
    }

Schema v2 added the ``analyzer_version`` and ``rules`` header keys so
a CI artifact records exactly which analyzer and which resolved rule
set produced it (v1 carried only the findings and summary).  Schema
v3 adds ``rule_info`` — per-rule metadata (default severity, per-file
vs whole-program kind, one-line description) — so downstream renderers
such as the SARIF converter need no access to the rule registry.
Schema v4 adds the optional ``statistics`` header (per-rule finding
counts and per-pass wall time, present only under ``--statistics``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.findings import ANALYZER_VERSION, Finding, Severity

JSON_SCHEMA_VERSION = 4


def summarize(findings: Sequence[Finding]) -> dict:
    """Aggregate counts used by both output formats and the exit code."""
    new = [f for f in findings if not f.baselined]
    return {
        "total": len(findings),
        "new": len(new),
        "baselined": len(findings) - len(new),
        "errors": sum(1 for f in new if f.severity is Severity.ERROR),
        "warnings": sum(1 for f in new if f.severity is Severity.WARNING),
    }


def rule_info(rules: Sequence[str]) -> List[Dict[str, str]]:
    """Registry metadata for the resolved rule ids, in id order.

    Ids without a registered rule class (possible only for synthetic
    test rulesets) are skipped rather than invented.
    """
    from repro.analysis.rules import iter_rules

    wanted = set(rules)
    info = []
    for rule_cls in iter_rules():
        if rule_cls.rule_id not in wanted:
            continue
        info.append(
            {
                "id": rule_cls.rule_id,
                "severity": rule_cls.severity.value,
                "kind": (
                    "whole-program" if rule_cls.is_project_rule else "per-file"
                ),
                "description": rule_cls.description,
            }
        )
    return info


def render_text(findings: Sequence[Finding]) -> str:
    """Human-oriented ``path:line:col`` listing with a summary line."""
    ordered = sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
    )
    lines: List[str] = [finding.render() for finding in ordered]
    counts = summarize(findings)
    lines.append(
        f"{counts['new']} new finding(s) "
        f"({counts['errors']} error(s), {counts['warnings']} warning(s)), "
        f"{counts['baselined']} baselined"
    )
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    rules: Optional[Sequence[str]] = None,
    statistics: Optional[Dict[str, object]] = None,
) -> str:
    """Machine-oriented stable-schema JSON document.

    ``rules`` is the resolved rule-id set that ran (after --select /
    --disable / config filtering); it lands in the header so an
    artifact is self-describing.  ``statistics`` (from ``--statistics``)
    adds the run-profile header key; omitted entirely when ``None`` so
    default artifacts stay byte-comparable across runs.
    """
    ordered = sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
    )
    resolved = sorted(rules) if rules is not None else []
    payload: Dict[str, object] = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro.analysis",
        "analyzer_version": ANALYZER_VERSION,
        "rules": resolved,
        "rule_info": rule_info(resolved),
    }
    if statistics is not None:
        payload["statistics"] = statistics
    payload["findings"] = [finding.to_json() for finding in ordered]
    payload["summary"] = summarize(findings)
    return json.dumps(payload, indent=2, sort_keys=False)
