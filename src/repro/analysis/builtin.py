"""The built-in REP rules.

Each rule enforces one invariant the reproduction's determinism or
architecture depends on:

========  ==============================================================
REP001    all wall-clock time flows through ``repro.clock``
REP002    all randomness flows through the seeded ``repro.rand`` streams
REP003    raised exceptions derive from ``ReproError``
REP004    no bare/broad ``except`` that can swallow ``ReproError``
REP005    import layering (substrates never import core; nobody imports cli)
REP006    no mutable default arguments
REP007    no unordered set/dict iteration feeding report output
REP008    public functions carry a docstring or a return annotation
========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Rule, register


def _dotted(node: ast.AST) -> Tuple[str, ...]:
    """The attribute chain of an expression, e.g. ``np.random.seed``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def _inside_sorted_call(node: ast.AST, ctx) -> bool:
    for ancestor in ctx.ancestors(node):
        if (
            isinstance(ancestor, ast.Call)
            and isinstance(ancestor.func, ast.Name)
            and ancestor.func.id in ("sorted", "min", "max")
        ):
            return True
    return False


def _inside_type_checking_block(node: ast.AST, ctx) -> bool:
    """Whether ``node`` sits under an ``if TYPE_CHECKING:`` guard.

    Such imports never execute at runtime, so they are type-only edges
    and must not count as layering violations.
    """
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.If):
            test = ancestor.test
            if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
                return True
            if isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING":
                return True
    return False


#: Substrate packages (layer 1): independent simulated systems.
SUBSTRATES = (
    "dns", "whois", "passivedns", "honeypot", "blocklist",
    "dga", "squatting",
)
#: Foundation packages (layer 0): importable from anywhere.
FOUNDATION = (
    "errors", "clock", "rand", "version", "analysis",
    # The fault harness and resilience primitives are deliberately
    # content-agnostic (they never import a substrate), so any
    # layer may depend on them.
    "faults", "resilience",
)

#: Fully-qualified wall-clock reads banned outside ``repro.clock``.
#: Shared between the per-file REP001 ban and the REP101 call-graph
#: taint propagation.
WALL_CLOCK_QUALNAMES = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


def layer_of(module: str) -> Optional[int]:
    """The architectural layer of a dotted module name (None: external)."""
    if module == "repro" or module in ("repro.cli", "repro.__main__"):
        return 4
    if not module.startswith("repro."):
        return None
    head = module.split(".")[1]
    if head == "core":
        return 3
    if head == "workloads":
        return 2
    if head in SUBSTRATES:
        return 1
    if head in FOUNDATION:
        return 0
    return None


def layer_name(layer: int) -> str:
    """Human name for a layer index."""
    return ("foundation", "substrate", "workloads", "core", "cli")[layer]


@register
class NoWallClock(Rule):
    """REP001 — simulated time only; no wall-clock reads outside clock.py.

    Invariant:
        Every timestamp in the pipeline comes from a
        ``repro.clock.SimClock`` advanced by the workload, never from
        the host's wall clock.

    Why:
        The paper's NXDomain measurements are time-bucketed; a run
        whose timestamps depend on when the code executed can never
        be reproduced bit-for-bit.

    Good::

        def ingest(records, clock):
            stamp = clock.now()

    Bad::

        import time

        def ingest(records):
            stamp = time.time()
    """

    rule_id = "REP001"
    severity = Severity.ERROR
    description = (
        "wall-clock reads (datetime.now/today, time.time) are banned "
        "outside repro.clock; use SimClock"
    )
    node_types = (ast.Call, ast.ImportFrom)

    _BANNED_CALLS = {
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
        ("time", "time"),
        ("time", "time_ns"),
    }
    _BANNED_FROM_TIME = {"time", "time_ns"}
    _EXEMPT_MODULES = ("repro.clock",)

    def applies_to(self, ctx) -> bool:
        return ctx.module not in self._EXEMPT_MODULES

    def visit(self, node: ast.AST, ctx) -> Iterable[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in self._BANNED_FROM_TIME:
                        yield self.finding(
                            ctx,
                            node,
                            f"wall-clock import 'from time import "
                            f"{alias.name}'; simulated time must come "
                            "from repro.clock.SimClock",
                        )
            return
        dotted = _dotted(node.func)
        if len(dotted) >= 2 and dotted[-2:] in self._BANNED_CALLS:
            yield self.finding(
                ctx,
                node,
                f"wall-clock call {'.'.join(dotted)}(); simulated time "
                "must come from repro.clock.SimClock",
            )


@register
class NoUnseededRandomness(Rule):
    """REP002 — every stream derives from the seeded repro.rand factory.

    Invariant:
        All randomness flows through ``repro.rand`` — either
        ``make_rng(seed)`` or a ``SeedSequenceFactory`` child — never
        the stdlib ``random`` module or numpy's global state.

    Why:
        Global RNG state is shared mutable state: any import-order or
        call-order change silently reshuffles every downstream draw,
        which makes the synthetic query traces unreproducible.

    Good::

        from repro import rand

        def sample(records, rng):
            return rng.choice(len(records))

    Bad::

        import random

        def sample(records):
            return random.randrange(len(records))
    """

    rule_id = "REP002"
    severity = Severity.ERROR
    description = (
        "stdlib random / numpy global randomness / unseeded default_rng "
        "are banned outside repro.rand; use rand.make_rng or "
        "SeedSequenceFactory"
    )
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    _LEGACY_GLOBAL = {
        "seed", "rand", "randn", "randint", "random", "choice",
        "shuffle", "permutation", "normal", "uniform", "bytes",
    }
    _EXEMPT_MODULES = ("repro.rand",)

    def applies_to(self, ctx) -> bool:
        return ctx.module not in self._EXEMPT_MODULES

    def visit(self, node: ast.AST, ctx) -> Iterable[Finding]:
        advice = "; use repro.rand.make_rng or a SeedSequenceFactory child"
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield self.finding(
                        ctx, node, "stdlib 'random' module imported" + advice
                    )
            return
        if isinstance(node, ast.ImportFrom):
            if node.module == "random" or (
                node.module or ""
            ).startswith("random."):
                yield self.finding(
                    ctx, node, "stdlib 'random' module imported" + advice
                )
            elif node.module in ("numpy.random", "np.random"):
                yield self.finding(
                    ctx, node, "direct numpy.random import" + advice
                )
            return
        dotted = _dotted(node.func)
        if len(dotted) >= 2 and dotted[-2] == "random":
            attr = dotted[-1]
            if attr == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    ctx, node, "unseeded default_rng() call" + advice
                )
            elif attr in self._LEGACY_GLOBAL:
                yield self.finding(
                    ctx,
                    node,
                    f"global numpy.random.{attr}() draws from shared "
                    "state" + advice,
                )
            elif attr in ("RandomState", "Generator", "PCG64"):
                yield self.finding(
                    ctx,
                    node,
                    f"direct numpy.random.{attr}(...) construction" + advice,
                )
        elif dotted and dotted[-1] == "default_rng" and not node.args and not node.keywords:
            yield self.finding(
                ctx, node, "unseeded default_rng() call" + advice
            )


@register
class RaisesDeriveFromReproError(Rule):
    """REP003 — library raises use the ReproError hierarchy.

    Invariant:
        Every exception raised by library code derives from
        ``repro.errors.ReproError``; builtin classes like
        ``ValueError`` are reserved for Python itself.

    Why:
        Callers distinguish "the pipeline rejected this input" from
        "the interpreter broke" by catching ``ReproError``; a builtin
        raise punches a hole in that contract.

    Good::

        from repro.errors import ConfigError

        def parse(text):
            raise ConfigError(f"bad zone file: {text!r}")

    Bad::

        def parse(text):
            raise ValueError(f"bad zone file: {text!r}")
    """

    rule_id = "REP003"
    severity = Severity.ERROR
    description = (
        "raised exceptions must derive from repro.errors.ReproError "
        "(builtin classes like ValueError are banned)"
    )
    node_types = (ast.Raise,)

    _BANNED = frozenset({
        "ValueError", "TypeError", "KeyError", "IndexError",
        "RuntimeError", "Exception", "BaseException", "OSError",
        "IOError", "ArithmeticError", "ZeroDivisionError",
        "AttributeError", "LookupError", "StopIteration",
        "StopAsyncIteration", "EOFError", "BufferError", "MemoryError",
        "SystemError", "OverflowError", "RecursionError",
        "FileNotFoundError", "PermissionError", "FileExistsError",
        "NotADirectoryError", "IsADirectoryError", "UnicodeError",
        "UnicodeDecodeError", "UnicodeEncodeError",
    })

    def visit(self, node: ast.Raise, ctx) -> Iterable[Finding]:
        exc = node.exc
        if exc is None:
            return
        target = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(target, ast.Name) and target.id in self._BANNED:
            yield self.finding(
                ctx,
                node,
                f"raise of builtin {target.id}; raise a "
                "repro.errors.ReproError subclass (e.g. ConfigError) "
                "instead",
            )


@register
class NoBroadExcept(Rule):
    """REP004 — no handler broad enough to swallow ReproError silently.

    Invariant:
        No ``except:`` or ``except Exception:`` block that does not
        re-raise; handlers name the specific error classes they can
        actually recover from.

    Why:
        A broad handler swallows ``ReproError`` — including the
        determinism violations the rest of this linter exists to
        surface — and converts a loud failure into silent bad data.

    Good::

        try:
            record = parse(line)
        except ParseError:
            skipped += 1

    Bad::

        try:
            record = parse(line)
        except Exception:
            pass
    """

    rule_id = "REP004"
    severity = Severity.ERROR
    description = (
        "bare 'except:' and 'except Exception:' without re-raise swallow "
        "ReproError; catch specific classes"
    )
    node_types = (ast.ExceptHandler,)

    _BROAD = ("Exception", "BaseException")

    def visit(self, node: ast.ExceptHandler, ctx) -> Iterable[Finding]:
        broad = self._broad_name(node.type)
        if broad is None:
            return
        if any(isinstance(inner, ast.Raise) for stmt in node.body
               for inner in ast.walk(stmt)):
            return
        yield self.finding(
            ctx,
            node,
            f"{broad} swallows ReproError; catch the specific error "
            "classes or re-raise",
        )

    def _broad_name(self, expr: Optional[ast.AST]) -> Optional[str]:
        if expr is None:
            return "bare 'except:'"
        candidates = expr.elts if isinstance(expr, ast.Tuple) else [expr]
        for candidate in candidates:
            dotted = _dotted(candidate)
            if dotted and dotted[-1] in self._BROAD:
                return f"'except {dotted[-1]}:' without re-raise"
        return None


@register
class ImportLayering(Rule):
    """REP005 — the dependency DAG flows one way.

    Invariant:
        Imports point toward the foundation: foundation < substrates
        < workloads < core < cli, and nothing imports ``repro.cli``.
        ``if TYPE_CHECKING:`` imports are type-only edges and are
        exempt.

    Why:
        Substrates (dns, whois, honeypot, ...) stay independently
        testable only while they cannot reach upward; one upward
        import couples every layer above it into the import cycle.

    Good::

        # in repro/core/pipeline.py
        from repro.dns import cache

    Bad::

        # in repro/dns/cache.py
        from repro.core import pipeline
    """

    rule_id = "REP005"
    severity = Severity.ERROR
    description = (
        "layering: foundation < substrates < workloads < core < cli; "
        "imports may only point downward and nothing imports repro.cli"
    )
    node_types = (ast.Import, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx) -> Iterable[Finding]:
        source_layer = self._layer(ctx.module)
        if source_layer is None:
            return
        if _inside_type_checking_block(node, ctx):
            # Type-only imports never execute; they are not layering
            # edges (satellite fix: REP005 used to flag these).
            return
        for target in self._targets(node, ctx.module):
            if target in ("repro.cli", "repro.__main__"):
                if ctx.module not in ("repro.__main__",):
                    yield self.finding(
                        ctx,
                        node,
                        f"{ctx.module} imports {target}; the CLI is the "
                        "top of the stack and nothing may depend on it",
                    )
                continue
            target_layer = self._layer(target)
            if target_layer is None:
                continue
            if target_layer > source_layer:
                yield self.finding(
                    ctx,
                    node,
                    f"{ctx.module} (layer {self._layer_name(source_layer)}) "
                    f"imports {target} (layer "
                    f"{self._layer_name(target_layer)}); imports must "
                    "point toward the foundation",
                )

    def _targets(self, node: ast.AST, source: str) -> Iterable[str]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
            return
        module = node.module or ""
        if node.level:
            base = source.split(".")
            # level 1 from repro.dns.cache -> repro.dns
            base = base[: len(base) - node.level] or base[:1]
            module = ".".join(base + ([module] if module else []))
        yield module

    @staticmethod
    def _layer(module: str) -> Optional[int]:
        return layer_of(module)

    @staticmethod
    def _layer_name(layer: int) -> str:
        return layer_name(layer)


@register
class NoMutableDefaults(Rule):
    """REP006 — default argument values must be immutable.

    Invariant:
        No function parameter defaults to ``[]``, ``{}``, ``set()``,
        or any other mutable constructed once at definition time.

    Why:
        A mutable default is evaluated once and shared across calls;
        state leaks between invocations and results depend on call
        history — the opposite of a reproducible pipeline stage.

    Good::

        def collect(records, sink=None):
            sink = [] if sink is None else sink

    Bad::

        def collect(records, sink=[]):
            sink.extend(records)
    """

    rule_id = "REP006"
    severity = Severity.ERROR
    description = "mutable default arguments ([], {}, set()) are banned"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = frozenset({
        "list", "dict", "set", "defaultdict", "OrderedDict", "Counter",
        "deque", "bytearray",
    })

    def visit(self, node: ast.AST, ctx) -> Iterable[Finding]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                name = getattr(node, "name", "<lambda>")
                yield self.finding(
                    ctx,
                    default,
                    f"mutable default argument in {name}(); use None "
                    "and construct inside the body",
                )

    def _is_mutable(self, expr: ast.AST) -> bool:
        if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            dotted = _dotted(expr.func)
            return bool(dotted) and dotted[-1] in self._MUTABLE_CALLS
        return False


@register
class OrderedReportIteration(Rule):
    """REP007 — report code orders its iteration explicitly.

    Invariant:
        In report/figure code, every set or dict-view iteration that
        can feed output passes through ``sorted(...)``.

    Why:
        Set and dict iteration order is hash- and insertion-dependent;
        two identical runs would emit tables and figures with rows in
        different orders, breaking diff-based verification.

    Good::

        for domain in sorted(counts.keys()):
            emit(domain, counts[domain])

    Bad::

        for domain in counts.keys():
            emit(domain, counts[domain])
    """

    rule_id = "REP007"
    severity = Severity.ERROR
    description = (
        "set/dict iteration feeding report output must pass through "
        "sorted(...) in report/figure code"
    )
    node_types = (ast.Call, ast.Set, ast.SetComp)

    def applies_to(self, ctx) -> bool:
        return ctx.config.is_report_code(ctx.relpath)

    def visit(self, node: ast.AST, ctx) -> Iterable[Finding]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            if not _inside_sorted_call(node, ctx):
                yield self.finding(
                    ctx,
                    node,
                    "set construction in report code; iteration order is "
                    "hash-dependent — sort before emitting output",
                )
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "values", "items")
            and not node.args
            and not node.keywords
        ):
            if not _inside_sorted_call(node, ctx):
                yield self.finding(
                    ctx,
                    node,
                    f".{node.func.attr}() iteration feeding report output "
                    "without an explicit sorted(...)",
                )
        elif isinstance(node.func, ast.Name) and node.func.id == "set":
            if not _inside_sorted_call(node, ctx):
                yield self.finding(
                    ctx,
                    node,
                    "set(...) in report code; iteration order is "
                    "hash-dependent — sort before emitting output",
                )


@register
class PublicApiDocumented(Rule):
    """REP008 — public functions are documented or typed.

    Invariant:
        Every module-level public function (and public method of a
        public top-level class) carries a docstring or a return
        annotation.

    Why:
        The reproduction is grown across many sessions by different
        authors; an undocumented public surface forces each one to
        reverse-engineer intent from call sites.

    Good::

        def bucket(stamp) -> int:
            return int(stamp) // 3600

    Bad::

        def bucket(stamp):
            return int(stamp) // 3600
    """

    rule_id = "REP008"
    severity = Severity.WARNING
    description = (
        "public functions need a docstring or a return annotation"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx) -> Iterable[Finding]:
        if node.name.startswith("_"):
            return
        parent = ctx.parent(node)
        while isinstance(parent, (ast.If, ast.Try)):
            parent = ctx.parent(parent)
        if isinstance(parent, ast.ClassDef):
            if parent.name.startswith("_"):
                return
            grandparent = ctx.parent(parent)
            if not isinstance(grandparent, ast.Module):
                return
        elif not isinstance(parent, ast.Module):
            return  # nested helper; its enclosing function is the API
        if ast.get_docstring(node) is None and node.returns is None:
            yield self.finding(
                ctx,
                node,
                f"public function {node.name}() has neither a docstring "
                "nor a return annotation",
            )
